// Package repro is a from-scratch Go reproduction of "Runahead Threads to
// Improve SMT Performance" (Ramírez, Pajuelo, Santana, Valero; HPCA 2008).
//
// The repository contains a cycle-level SMT out-of-order processor
// simulator (internal/pipeline) configured per the paper's Table 1, the
// Runahead Threads mechanism that is the paper's contribution
// (internal/runahead plus the pipeline's dispatch/issue/commit hooks),
// every baseline policy it compares against (internal/policy: STALL,
// FLUSH; internal/rescontrol: DCRA, Hill Climbing), synthetic calibrated
// stand-ins for the SPEC CPU2000 workloads (internal/trace,
// internal/workload), the paper's metrics and FAME measurement methodology
// (internal/metrics, internal/core), and a harness that regenerates every
// figure of the evaluation (internal/experiments, cmd/experiments).
//
// The experiment harness is parallel: the paper's evaluation grid is a set
// of independent workload×policy simulations, and experiments.Session
// dispatches them onto a bounded worker pool (experiments.Options.Workers;
// 0 selects GOMAXPROCS) with singleflight deduplication, so figures that
// share runs still simulate each point exactly once. Both binaries expose
// the pool via a -j flag: `experiments -j 8` bounds concurrent
// simulations while regenerating figures, and `smtsim -fairness -j 4`
// parallelizes the single-thread reference runs. Results are bit-identical
// for any worker count — each simulation is deterministic and reductions
// collect in a fixed order — so -j trades nothing but wall-clock time.
// The simulator's per-cycle loop is allocation-free in steady state
// (instructions recycle through a per-core free list; see
// internal/pipeline/pool.go and BenchmarkStepAllocs).
//
// On top of the session sits a declarative scenario engine
// (internal/scenario): a Spec — loaded from JSON or built in code — names
// a workload selection (Table 2 groups and/or ad-hoc combinations like
// "art+mcf+swim+twolf"), a base delta, a set of crossed axes of typed
// configuration deltas reaching any core.Config knob (ROB size, cache
// geometry and latencies, machine width, issue queues, runahead tuning —
// not just the paper's policy and register-file axes), the metrics to
// reduce, and an output format. `experiments -scenario file.json -format
// json|csv|table` runs it end to end; examples/scenarios/ documents the
// schema and ships runnable sweeps. The session's simulation cache keys
// by the full canonical configuration (core.Config.Canonical), so
// scenario points, figure runs and repeated sweeps that describe the same
// machine share one simulation. The Fig1–Fig6 reproductions are
// themselves Spec instances plus their paper-specific reductions, with
// golden tests (internal/experiments/testdata) locking their text output.
//
// The engine is also served as a long-running daemon, cmd/smtsimd: POST a
// Spec to /v1/scenario and reduced rows stream back as NDJSON in a fixed
// workload-major order as each grid cell's simulation completes (or
// buffered as table/json/csv via ?format=); /v1/metrics reports cache
// hit/miss/eviction/in-flight counters and /healthz answers liveness
// probes. What makes the process safe to run indefinitely is
// internal/simcache, the session's simulation cache: an LRU keyed by
// (workload, core.Config.Canonical()) and bounded by entry count and
// approximate result bytes (experiments.Options.CacheEntries/CacheBytes;
// smtsimd's -cache-entries/-cache-bytes; 0 = unbounded, the CLI default),
// with the singleflight contract preserved — duplicate requests join one
// computation, in-flight simulations are never evicted, and eviction only
// ever costs recomputation because every simulation is deterministic.
// cmd/smtload is the proof harness: it fires N concurrent seeded sweep
// requests at a live daemon and asserts each response is bit-identical to
// a sequential in-process run of the same spec.
//
// # Persistent results
//
// Beneath the in-memory cache sits an optional on-disk tier,
// internal/resultstore (experiments.Options.StoreDir/StoreBytes;
// -store-dir/-store-bytes on smtsimd and cmd/experiments). Every
// simulation is a deterministic pure function of (workload,
// core.Config.Canonical()), so its result can be persisted and replayed:
// a memory-cache miss probes the store before simulating, and every
// completed simulation is written behind its result (atomic
// temp-file-then-rename, so a killed process never leaves a torn entry).
// Entries are content-addressed files carrying a versioned,
// self-describing header — schema version, config fingerprint, workload
// name, and the full canonical configuration — plus a checksum trailer;
// anything unexpected on read (truncation, corruption, a stale schema
// version, an identity mismatch) is a clean miss that deletes the entry
// and recomputes, never a wrong answer. The store is byte-bounded:
// least-recently-accessed entries are deleted past StoreBytes, with
// recency persisted in file modification times. A killed-and-restarted
// smtsimd over the same -store-dir therefore serves previously-run
// sweeps byte-identically with zero new simulations (visible as
// diskHits with diskMisses == 0 in /v1/metrics, alongside diskBytes and
// diskEvictions), and several daemons may share one directory —
// `smtload -restart-check` proves the contract against a live daemon,
// and the restart-smoke CI job replays it on every push.
//
// # Trace tier and batched execution
//
// Instruction traces are the other deduplicated artifact. Every trace
// has a pure identity — (benchmark, length, per-context derived seed,
// address-space placement; workload.ContextOptions) — and
// internal/tracestore serves all of them from a concurrency-safe,
// singleflight, byte-bounded LRU (experiments.Options.TraceCacheBytes),
// so N grid cells that differ only in machine configuration decode one
// shared trace instead of regenerating it N times, and a workload's
// single-thread fairness references reuse the context-0 traces the SMT
// runs already produced. Like results, traces can persist: -trace-dir /
// -trace-bytes (experiments.Options.TraceDir/TraceBytes) add an on-disk
// tier with the same discipline as the result store — versioned
// checksummed entries (trace.CodecVersion), atomic writes, corrupt or
// stale files read as misses, byte-bounded LRU eviction.
//
// Batched execution turns that sharing into locality: cells of one
// workload that agree on trace identity are grouped
// (experiments.Options.BatchConfigs per group, default 8; -batch on the
// CLIs) and executed by core.RunBatch, which advances K independent
// pipeline.Core instances round-robin over the one shared trace — one
// trace materialization feeds N pipelines in a single pass. Each core
// owns all its mutable state and traces are immutable after generation,
// so batched results are bit-identical to scalar runs — guaranteed by
// TestRunBatchMatchesRun (deep equality per config) and
// TestBatchedMatchesScalar (byte equality of every output format on
// every shipped example sweep), with batches/batchedCells and the trace
// tier's counters visible in /v1/metrics.
//
// # Scheduling and fairness
//
// The session's work queue is itself policy-pluggable (internal/sched;
// experiments.Options.Scheduler, smtsimd -scheduler fifo|fair). The
// original dispatch was a single FIFO, so one max-size sweep ahead of a
// one-cell request starved it for the whole sweep — head-of-line
// blocking in a daemon that simulates SMT fetch policies invented to
// prevent exactly that. The default fair policy applies the paper's
// ICOUNT idea to the serving layer: each queued job carries a requester
// identity and a cell count, and workers pop the next job from the
// requester with the fewest cells currently in service, ties rotating
// round-robin toward the least recently served. Identity reaches the
// queue as a context value (sched.WithRequester / sched.Requester):
// smtsimd stamps each request with its X-Client header or remote host,
// and the identity threads unchanged through scenario execution into
// every job the sweep queues — batches and fairness references included.
// Scheduling only reorders execution, never results (simulations are
// deterministic and reductions collect in fixed order), so the
// bit-identity guarantees above are policy-independent; the starvation
// regression test in internal/experiments locks both the fix and the
// FIFO baseline behavior. The daemon adds per-client admission control
// on top (-max-inflight-per-client, 429 + Retry-After on breach) and
// reports the queue in /v1/metrics: "queued" (cells accepted but not yet
// started — the complement of the cache's inFlight), "rejected", and a
// "scheduler" object with the policy name and per-client queued and
// in-service cells. cmd/smtload prints per-request latency percentiles
// (min/p50/p99/max) and takes -client to name itself, so policies can be
// compared under identical load.
//
// # Cancellation and shutdown
//
// Execution is cancellation-correct at every layer. The session's worker
// pool is a scheduler-ordered queue drained by at most Workers goroutines
// (spawned on demand, exiting when idle), and each layer has a
// context-taking form —
// experiments.Session.StartRunCtx / RunConfigCtx / ReferenceCtx /
// RunScenarioCtx, scenario.ExecuteCtx / ExecuteStreamCtx,
// simcache.Cache.BeginCtx / Call.WaitCtx — threading the requester's
// context down to the queue. When every requester interested in a queued
// cell has canceled before a worker picks it up, the cell is abandoned:
// never simulated, its key freed for recomputation, its waiters failed
// with the cancellation error (simcache.Cache.Abandon; the abandoned
// count surfaces as cache "canceled" in metrics). A cell already running
// always finishes and populates the cache — results are deterministic
// and shared, so completing them is never waste. For smtsimd this means
// a client that disconnects mid-sweep stops consuming the pool: queued
// cells die, the request counts under the "canceled" /v1/metrics counter
// (client behavior, distinct from "failures", which is simulator
// trouble), and live requests are unaffected. SIGINT/SIGTERM shut the
// daemon down gracefully — the listener closes, in-flight responses
// drain up to -drain, then the process exits 0 — while cmd/experiments,
// cmd/smtsim and cmd/smtload treat Ctrl-C as cancellation of the same
// session context (queued simulations never start; exit status 130).
//
// # Static analysis and invariants
//
// The contracts above — byte-identical output, replayable simulations,
// context threading, panic-free libraries — used to live only in tests
// that catch violations after the fact. internal/analysis turns them
// into lint-time invariants: a suite of analyzers in the style of
// golang.org/x/tools/go/analysis (built on an in-house stdlib-only
// driver, internal/analysis/lint, so the tree stays dependency-free),
// run by cmd/smtlint alongside go vet. detrange flags range-over-map in
// the result-producing and serializing packages; nowallclock forbids
// wall-clock reads and global math/rand in simulation packages; ctxflow
// flags calls that drop a context when a ...Ctx sibling exists, and
// orphan context.Background() outside main; floatfmt flags %v/%g and
// fmt.Sprint on float operands in output paths, where exact
// strconv.FormatFloat rendering is the rule; panicfree forbids panic
// and Must* calls in library packages outside the documented wrapper
// shapes. A site that is correct for a reason the analyzer cannot see
// carries a justified //lint:<analyzer> directive — the justification
// is mandatory, suppressions are themselves test-locked, and
// TestLintClean keeps `go run ./cmd/smtlint ./...` at zero findings on
// every commit. See internal/analysis/README.md.
//
// # Concurrency invariants
//
// The serving layers are lock-heavy and goroutine-spawning by design —
// a singleflight cache, a fair scheduler, a worker pool, two disk
// tiers — so their correctness contracts are enforced twice, once
// statically and once dynamically. Statically, the lint suite grew a
// control-flow-graph and forward-dataflow layer
// (internal/analysis/lint, mirroring the shapes of x/tools/go/cfg on
// the stdlib only) and three flow-sensitive analyzers over it:
// lockbalance proves every acquired mutex is released on every path
// out of the function (early returns, panics, and conditional arms
// included, with defer recognized as all-exits coverage); lockorder
// builds the whole-program lock-acquisition graph across the
// concurrent packages — which lock classes are held when each class is
// acquired, followed through calls — and flags any cycle, the
// canonical AB/BA deadlock; gorolife requires every go statement to be
// provably reaped, meaning some completion signal (WaitGroup.Done, a
// send on or close of an external channel, or a Done-pattern receive
// such as <-ctx.Done()) fires on all paths out of the goroutine body.
// Dynamically, internal/leakcheck — a stdlib-only reduction of
// go.uber.org/goleak — gates the concurrent packages' test suites:
// TestMain diffs live goroutines against the pre-suite baseline, and
// the heavy concurrency tests defer a per-test check, so a goroutine
// that signals but is never actually waited on (which passes gorolife)
// fails the run. The daemon exposes a "goroutines" gauge in
// /v1/metrics, and CI's leak-smoke step asserts the count returns to
// its post-startup baseline after a full smtload run.
//
// Start with README.md for a tour, DESIGN.md for the architecture and the
// substitutions made for unavailable artifacts, and EXPERIMENTS.md for the
// measured-versus-published comparison of every table and figure.
package repro
