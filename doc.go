// Package repro is a from-scratch Go reproduction of "Runahead Threads to
// Improve SMT Performance" (Ramírez, Pajuelo, Santana, Valero; HPCA 2008).
//
// The repository contains a cycle-level SMT out-of-order processor
// simulator (internal/pipeline) configured per the paper's Table 1, the
// Runahead Threads mechanism that is the paper's contribution
// (internal/runahead plus the pipeline's dispatch/issue/commit hooks),
// every baseline policy it compares against (internal/policy: STALL,
// FLUSH; internal/rescontrol: DCRA, Hill Climbing), synthetic calibrated
// stand-ins for the SPEC CPU2000 workloads (internal/trace,
// internal/workload), the paper's metrics and FAME measurement methodology
// (internal/metrics, internal/core), and a harness that regenerates every
// figure of the evaluation (internal/experiments, cmd/experiments).
//
// Start with README.md for a tour, DESIGN.md for the architecture and the
// substitutions made for unavailable artifacts, and EXPERIMENTS.md for the
// measured-versus-published comparison of every table and figure.
package repro
