package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// TestReferenceHonorsContext locks the ctxflow fix: the in-process
// reference run threads its context into the session, so a canceled
// smtload (Ctrl-C) stops simulating reference grids instead of running
// every remaining spec to completion. Before the fix, reference() called
// RunScenario — the non-Ctx variant — and cancellation could not reach
// the sweep at all.
func TestReferenceHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := newGen(1, 0, 1500)
	start := time.Now()
	_, err := reference(ctx, g)
	if err == nil {
		t.Fatal("reference() with a canceled context succeeded; want context.Canceled")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("reference() error = %v; want context.Canceled", err)
	}
	// The full 6-cell grid takes seconds; a canceled run must not
	// simulate anything. The generous bound only catches "ran anyway".
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("canceled reference() took %v; cancellation did not thread through", elapsed)
	}
}

// TestNewGenPure locks the generator contract reference-checking relies
// on: newGen must be a pure function of (seed, index, traceLen), because
// it is invoked once on the request path and once on the verification
// path and both must describe the same sweep.
func TestNewGenPure(t *testing.T) {
	for i := 0; i < 8; i++ {
		a, b := newGen(7, i, 900), newGen(7, i, 900)
		if a.format != b.format {
			t.Fatalf("spec %d: formats diverge: %q vs %q", i, a.format, b.format)
		}
		ja, err := json.Marshal(a.spec)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := json.Marshal(b.spec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ja, jb) {
			t.Fatalf("spec %d: two generations differ:\n%s\n%s", i, ja, jb)
		}
	}
}
