// Command smtload is the load generator and determinism checker for the
// smtsimd daemon: it fires N concurrent randomized-but-seeded sweep
// requests and asserts that every response is bit-identical to running
// the same spec sequentially in process — the daemon's scale proof and
// its correctness proof in one binary.
//
//	smtsimd -addr :8091 -cache-entries 64 &
//	smtload -addr http://127.0.0.1:8091 -n 32
//
// Spec generation is a pure function of (-seed, request index), so a run
// is exactly reproducible. Distinct specs use distinct simulation seeds
// and knob values (register file, ROB, L2 latency, policy), which makes
// every grid cell a distinct cache entry — against a small -cache-entries
// daemon this churns the LRU and drives evictions while the byte-equality
// assertion proves eviction never changes an answer. Each generated spec
// is requested -repeat times (concurrently with everything else), so the
// daemon also serves hits for entries that survived.
//
// Exit status 0 means every response matched its in-process reference;
// any mismatch or transport failure exits 1 after printing a diff
// summary. Ctrl-C (or SIGTERM) cancels the run's context — in-flight
// HTTP requests abort and the in-process reference sweeps stop at the
// next queued cell — and the process exits 130. On success the daemon's /v1/metrics document prints to stdout
// (ready for jq in CI), and per-request wall-clock latency percentiles
// (min/p50/p99/max) print to stderr so scheduler policies can be
// compared under the same load. -client names this process in the
// daemon's X-Client header, keying its fair-scheduler and admission
// accounting; unset, the daemon falls back to the remote address.
//
// -restart-check is the warm-restart proof for a daemon running with
// -store-dir: run smtload once against a fresh daemon (populating the
// persistent store), kill and restart the daemon on the same directory,
// then run smtload again with the same -seed plus -restart-check. The
// replay must be byte-identical as usual, AND the daemon must have
// simulated nothing: every cell served from disk (diskHits > 0,
// diskMisses == 0 in /v1/metrics), or smtload exits 1.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "smtsimd base URL")
	n := flag.Int("n", 16, "total concurrent requests")
	repeat := flag.Int("repeat", 2, "requests per distinct spec (>=2 exercises cache hits)")
	seed := flag.Uint64("seed", 1, "spec generation seed")
	traceLen := flag.Int("tracelen", 1500, "per-thread trace length pinned into every spec")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-request timeout")
	restartCheck := flag.Bool("restart-check", false,
		"assert the daemon served every cell from its persistent store (diskHits > 0, diskMisses == 0)")
	clientName := flag.String("client", "", "client identity sent as the X-Client header (empty = none)")
	flag.Parse()
	if *n <= 0 || *repeat <= 0 {
		fmt.Fprintln(os.Stderr, "smtload: -n and -repeat must be positive")
		os.Exit(2)
	}

	// Ctrl-C cancels everything smtload has in flight — the HTTP requests
	// (so the daemon sees the disconnect and abandons un-started cells)
	// and the in-process reference runs — and exits 130, matching the
	// other CLIs.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	client := &http.Client{Timeout: *timeout}
	specs := (*n + *repeat - 1) / *repeat
	fmt.Fprintf(os.Stderr, "smtload: %d requests over %d distinct specs against %s\n", *n, specs, *addr)

	// Fire all requests concurrently first: the daemon must dedup the
	// in-flight duplicates (singleflight) and survive the churn.
	type reply struct {
		spec   int
		format string
		body   []byte
		err    error
		dur    time.Duration // request wall clock, success or not
	}
	replies := make([]reply, *n)
	var wg sync.WaitGroup
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			si := i % specs
			g := newGen(*seed, si, *traceLen)
			r := &replies[i]
			r.spec, r.format = si, g.format
			start := time.Now()
			r.body, r.err = request(ctx, client, *addr, *clientName, g)
			r.dur = time.Since(start)
		}(i)
	}
	wg.Wait()

	// Latency summary before the verification pass: wall clock per request
	// as the client saw it, the number a scheduler policy actually moves.
	durs := make([]time.Duration, *n)
	for i := range replies {
		durs[i] = replies[i].dur
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(p int) time.Duration { return durs[(len(durs)-1)*p/100] }
	fmt.Fprintf(os.Stderr, "smtload: latency min=%v p50=%v p99=%v max=%v\n",
		durs[0].Round(time.Millisecond), pct(50).Round(time.Millisecond),
		pct(99).Round(time.Millisecond), durs[len(durs)-1].Round(time.Millisecond))

	// Reference run: each distinct spec once, sequentially, in process,
	// on a fresh one-worker session per spec (no cross-spec cache, no
	// concurrency — the most boring execution possible).
	failures := 0
	for si := 0; si < specs; si++ {
		g := newGen(*seed, si, *traceLen)
		want, err := reference(ctx, g)
		if err != nil {
			if errors.Is(err, context.Canceled) && ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "smtload: interrupted")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "smtload: spec %d reference run: %v\n", si, err)
			os.Exit(1)
		}
		for i := 0; i < *n; i++ {
			r := &replies[i]
			if r.spec != si {
				continue
			}
			if r.err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "smtload: request %d (spec %d): %v\n", i, si, r.err)
				continue
			}
			if !bytes.Equal(r.body, want) {
				failures++
				fmt.Fprintf(os.Stderr,
					"smtload: request %d (spec %d, %s) DIVERGES from sequential in-process run\n got: %s\nwant: %s\n",
					i, si, r.format, excerpt(r.body), excerpt(want))
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "smtload: %d/%d requests failed or diverged\n", failures, *n)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "smtload: %d/%d responses bit-identical to sequential in-process runs\n", *n, *n)

	resp, err := client.Get(strings.TrimRight(*addr, "/") + "/v1/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "smtload: metrics: %v\n", err)
		os.Exit(1)
	}
	metricsBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "smtload: metrics: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(metricsBody)

	if *restartCheck {
		// The byte-equality pass above proved the restarted daemon's
		// answers; this proves their provenance — all disk, zero fresh
		// simulations.
		var doc struct {
			DiskHits   uint64 `json:"diskHits"`
			DiskMisses uint64 `json:"diskMisses"`
		}
		if err := json.Unmarshal(metricsBody, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "smtload: restart-check: decoding metrics: %v\n", err)
			os.Exit(1)
		}
		if doc.DiskHits == 0 || doc.DiskMisses != 0 {
			fmt.Fprintf(os.Stderr,
				"smtload: restart-check FAILED: diskHits=%d diskMisses=%d, want every cell served from the store (diskHits > 0, diskMisses == 0)\n",
				doc.DiskHits, doc.DiskMisses)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "smtload: restart-check OK: %d cells served from disk, 0 simulated\n", doc.DiskHits)
	}
}

// gen is one deterministic generated request: a spec plus its format.
type gen struct {
	spec   *scenario.Spec
	format string
}

// menus for the generator. Small trace lengths and 2-thread workloads
// keep a 32-request run in CI territory; distinct seeds per spec keep
// every cell a distinct cache key.
var (
	benches = []string{"art", "mcf", "swim", "twolf", "gzip", "bzip2", "gcc", "equake", "vpr", "crafty"}
	formats = []string{"ndjson", "json", "csv", "table"}
)

// newGen derives the spec for one index from the run seed. It must stay
// a pure function of its arguments: smtload calls it once on the request
// path and once on the verification path.
func newGen(seed uint64, index, traceLen int) gen {
	r := rand.New(rand.NewSource(int64(seed)*1_000_003 + int64(index)))
	pick := func(s []string) string { return s[r.Intn(len(s))] }

	// Two 2-thread workloads x one 3-point axis = 6 grid cells per spec;
	// with per-spec simulation seeds every cell is a distinct cache
	// entry, so a few dozen requests overflow a small daemon cache.
	pair := func() string { return pick(benches) + "+" + pick(benches) }
	simSeed := uint64(r.Intn(1_000_000) + 1)
	tl := traceLen
	mc := uint64(2_000_000)
	sp := &scenario.Spec{
		Name:      fmt.Sprintf("load-%d", index),
		Workloads: scenario.WorkloadSpec{Adhoc: []string{"A/" + pair(), "B/" + pair()}},
		Base:      scenario.Delta{TraceLen: &tl, Seed: &simSeed, MaxCycles: &mc},
		Metrics:   []string{"throughput", "l2mpki"},
	}
	axis := scenario.Axis{Name: "x"}
	addPoint := func(label string, d scenario.Delta) {
		axis.Points = append(axis.Points, scenario.Point{Label: label, Delta: d})
	}
	switch r.Intn(4) {
	case 0:
		for _, regs := range []int{96 + 32*r.Intn(3), 224, 320} {
			regs := regs
			addPoint(fmt.Sprintf("regs%d", regs), scenario.Delta{Regs: &regs})
		}
	case 1:
		for _, rob := range []int{64 + 32*r.Intn(3), 160, 256} {
			rob := rob
			addPoint(fmt.Sprintf("rob%d", rob), scenario.Delta{ROBSize: &rob})
		}
	case 2:
		for _, lat := range []uint64{uint64(10 + r.Intn(8)), 24, 30} {
			lat := lat
			addPoint(fmt.Sprintf("l2lat%d", lat), scenario.Delta{L2Lat: &lat})
		}
	case 3:
		for _, pol := range []string{"ICOUNT", "RaT", pick([]string{"STALL", "DCRA", "FLUSH"})} {
			pol := pol
			addPoint(pol, scenario.Delta{Policy: &pol})
		}
	}
	sp.Axes = []scenario.Axis{axis}
	return gen{spec: sp, format: formats[r.Intn(len(formats))]}
}

// request POSTs the generated spec and returns the response body. A
// non-empty clientName rides the X-Client header so the daemon
// attributes the request to this load generator by name. The context
// cancels the request mid-stream — exactly the disconnect the daemon's
// cancellation path exists to absorb.
func request(ctx context.Context, client *http.Client, addr, clientName string, g gen) ([]byte, error) {
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(g.spec); err != nil {
		return nil, err
	}
	url := strings.TrimRight(addr, "/") + "/v1/scenario?format=" + g.format
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if clientName != "" {
		req.Header.Set("X-Client", clientName)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, excerpt(out))
	}
	return out, nil
}

// reference renders the generated spec's expected bytes: a sequential
// (Workers=1) in-process execution on a fresh session, bounded by ctx —
// an interrupted smtload must not keep simulating reference grids.
func reference(ctx context.Context, g gen) ([]byte, error) {
	opt := experiments.Default()
	opt.Workers = 1
	s, err := experiments.NewSession(opt)
	if err != nil {
		return nil, err
	}
	rs, err := s.RunScenarioCtx(ctx, g.spec)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := rs.Emit(&buf, g.format); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// excerpt truncates a body for diagnostics.
func excerpt(b []byte) string {
	const max = 300
	if len(b) <= max {
		return string(b)
	}
	return string(b[:max]) + fmt.Sprintf("... (%d bytes)", len(b))
}
