// Command smtlint runs the repo's invariant-checker suite — the custom
// analyzers of internal/analysis that mechanically enforce the
// determinism, cancellation and output-stability contracts — over a set
// of package patterns, alongside the standard go vet passes.
//
//	go run ./cmd/smtlint ./...          # the CI lint gate
//	go run ./cmd/smtlint -vet=false ./internal/sched
//	go run ./cmd/smtlint -list
//	go run ./cmd/smtlint -json ./...    # one JSON object per finding, per line
//
// With -json each finding (and, with -suppressed, each silenced
// finding) prints as a single-line JSON object on stdout —
// {"file":...,"line":...,"analyzer":...,"message":...,"suppressed":...}
// — for editors and CI annotators; the human summary still goes to
// stderr and the exit codes are unchanged.
//
// Findings print in the usual file:line:col form and make the process
// exit 1; a clean tree exits 0. A finding is silenced — never casually:
// a justification is mandatory — with a directive comment on or above
// the flagged line:
//
//	//lint:<analyzer> <why this site cannot violate the invariant>
//
// Exit status: 0 clean, 1 findings (smtlint or vet), 2 usage or load
// failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/lint"
)

// jsonFinding is the -json wire form of one diagnostic: one object per
// line, stable field set, so CI annotators and editors can consume
// findings without parsing the human file:line:col rendering.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	vet := flag.Bool("vet", true, "also run the standard go vet passes over the same patterns")
	list := flag.Bool("list", false, "list the suite's analyzers and exit")
	showSuppressed := flag.Bool("suppressed", false, "also print findings silenced by justified //lint: directives")
	jsonOut := flag.Bool("json", false, "print findings as one JSON object per line instead of file:line:col text")
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintf(os.Stderr, "smtlint: go vet: %v\n", err)
				os.Exit(2)
			}
			failed = true
		}
	}

	start := time.Now()
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	emit := func(d lint.Diagnostic, suppressed bool) {
		if *jsonOut {
			line, _ := json.Marshal(jsonFinding{
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: suppressed,
			})
			fmt.Println(string(line))
		} else if suppressed {
			fmt.Printf("%s (suppressed)\n", d)
		} else {
			fmt.Println(d)
		}
	}
	for _, d := range res.Diagnostics {
		emit(d, false)
	}
	if *showSuppressed {
		for _, d := range res.Suppressed {
			emit(d, true)
		}
	}
	if n := len(res.Diagnostics); n > 0 {
		fmt.Fprintf(os.Stderr, "smtlint: %d finding(s) across %d package(s) (%d suppressed by justified directives) in %s\n",
			n, len(pkgs), len(res.Suppressed), elapsed)
		failed = true
	} else {
		fmt.Fprintf(os.Stderr, "smtlint: clean — %d package(s), %d analyzer(s), %d finding(s) suppressed by justified directives in %s\n",
			len(pkgs), len(analyzers), len(res.Suppressed), elapsed)
	}
	if failed {
		os.Exit(1)
	}
}
