// Command smtsim runs one multiprogrammed workload on the simulated SMT
// processor and prints per-thread statistics — the equivalent of one
// SMTSIM invocation in the paper's methodology.
//
// Usage:
//
//	smtsim -threads art,mcf -policy RaT
//	smtsim -threads art,mcf,swim,twolf -policy FLUSH -tracelen 30000
//	smtsim -list                      # show available benchmarks/policies
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	threads := flag.String("threads", "art,mcf", "comma-separated benchmark names (1-8 threads)")
	policy := flag.String("policy", "RaT", "fetch/resource policy")
	traceLen := flag.Int("tracelen", 20000, "per-thread trace length")
	seed := flag.Uint64("seed", 1, "workload seed")
	regs := flag.Int("regs", 0, "override INT/FP physical register file size")
	fair := flag.Bool("fairness", false, "also run single-thread references and report fairness")
	workers := flag.Int("j", 0, "concurrent simulations (the -fairness reference runs; 0 = all cores)")
	list := flag.Bool("list", false, "list benchmarks and policies, then exit")
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", strings.Join(trace.Names(), " "))
		var pols []string
		for _, p := range core.Policies() {
			pols = append(pols, string(p))
		}
		fmt.Println("policies:  ", strings.Join(pols, " "),
			"(plus ablations: RaT-noprefetch RaT-nofetch RaT-racache RaT-nofpinv)")
		return
	}

	w := workload.Workload{Group: "custom", Benchmarks: strings.Split(*threads, ",")}
	if err := w.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "%v (try -list)\n", err)
		os.Exit(1)
	}
	pol, err := core.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}

	cfg := core.DefaultConfig()
	cfg.Policy = pol
	cfg.TraceLen = *traceLen
	cfg.Seed = *seed
	if *regs > 0 {
		cfg.Pipeline.IntRegs = *regs
		cfg.Pipeline.FPRegs = *regs
	}

	// The run executes through an experiments session — the same pool and
	// cancellation machinery the figure harness and the daemon use — so
	// Ctrl-C stops queued work (the -fairness reference runs) immediately
	// and the -j bound covers everything this invocation simulates.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	opt := experiments.Default()
	opt.Workers = *workers
	sess, err := experiments.NewSession(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fail := func(err error) {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "smtsim: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	res, err := sess.RunConfigCtx(ctx, w, cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("workload %s under %s: %d cycles (measurement window)\n\n",
		w.Name(), res.Policy, res.Cycles)
	tb := report.NewTable("per-thread results",
		"thread", "benchmark", "committed", "IPC", "L2miss/kinst",
		"RA-episodes", "prefetches", "regs(norm)", "regs(RA)")
	for i, t := range res.Threads {
		missPerK := 0.0
		if t.Committed > 0 {
			missPerK = 1000 * float64(t.L2MissLoads) / float64(t.Committed)
		}
		tb.AddRow(
			fmt.Sprintf("%d", i), t.Benchmark,
			fmt.Sprintf("%d", t.Committed),
			report.F(t.IPC),
			fmt.Sprintf("%.1f", missPerK),
			fmt.Sprintf("%d", t.RunaheadEpisodes),
			fmt.Sprintf("%d", t.PrefetchesIssued),
			fmt.Sprintf("%.0f", t.RegsNormal),
			fmt.Sprintf("%.0f", t.RegsRunahead),
		)
	}
	fmt.Println(tb.String())
	fmt.Printf("throughput (avg IPC): %s\n", report.F(metrics.Throughput(res.IPCs())))
	fmt.Printf("executed instructions (energy proxy): %d\n", res.ExecutedTotal)
	if res.Truncated {
		fmt.Println("warning: run truncated at the cycle limit before FAME coverage")
	}

	if *fair {
		// Queue every reference before waiting on any: the session pool
		// runs up to -j of them concurrently, and a Ctrl-C abandons the
		// ones no worker has picked up yet.
		for _, b := range w.Benchmarks {
			sess.StartReferenceCtx(ctx, b, cfg)
		}
		stv := make([]float64, 0, len(w.Benchmarks))
		for _, b := range w.Benchmarks {
			v, err := sess.ReferenceCtx(ctx, b, cfg)
			if err != nil {
				fail(err)
			}
			stv = append(stv, v)
		}
		fmt.Printf("fairness (vs single-thread ICOUNT): %s\n",
			report.F(metrics.Fairness(stv, res.IPCs())))
	}
}
