// Command smtsimd serves the scenario engine as a long-running HTTP/JSON
// daemon: clients POST declarative sweep specs and receive reduced
// results, with every simulation deduplicated and cached across requests
// by full canonical machine configuration.
//
//	smtsimd -addr :8080 -cache-entries 4096 -cache-bytes 268435456 -j 8
//
// API:
//
//	POST /v1/scenario[?format=ndjson|table|json|csv]
//	    Body: a scenario.Spec JSON document (same schema as the
//	    -scenario flag of cmd/experiments; see examples/scenarios/).
//	    The default format streams reduced rows as NDJSON — one JSON
//	    object per grid cell, written as soon as that cell's simulation
//	    completes, in a fixed workload-major order that is bit-identical
//	    for any worker count. table, json and csv buffer the full result
//	    set before writing. Spec errors return 400 with a JSON {"error"}
//	    body; simulation failures return 500 (buffered formats) or an
//	    {"error"} NDJSON line terminating the stream.
//	GET /v1/metrics
//	    Cache hit/miss/eviction/in-flight counters, configured bounds,
//	    request/row totals, the trace tier's hit/miss/generated counters
//	    (under "trace"), batch counters, and (when -store-dir is set) the
//	    persistent store's diskHits/diskMisses/diskBytes/diskEvictions,
//	    as JSON.
//	GET /healthz
//	    Liveness probe; 200 "ok".
//
// The process is safe to run indefinitely: the simulation cache is an
// LRU bounded by -cache-entries and -cache-bytes (internal/simcache), so
// arbitrary client sweeps recycle memory instead of growing the process,
// while in-flight simulations are never evicted and repeated identical
// sweeps stay cache hits.
//
// With -store-dir the daemon adds a persistent on-disk tier beneath the
// memory cache (internal/resultstore): every completed simulation is
// written behind its result, a memory miss probes the store before
// simulating, and -store-bytes bounds the directory's footprint
// (least-recently-accessed entries are deleted past it). Simulations are
// deterministic pure functions of (workload, config), so a killed and
// restarted daemon — or a second daemon sharing the directory — serves
// previously-run sweeps byte-identically without re-simulating them;
// `smtload -restart-check` proves exactly that against a live daemon.
//
// Generated instruction traces are served from a byte-bounded in-memory
// trace tier shared by every cell of every sweep: N configurations of
// one workload decode the trace once, and single-thread fairness
// references reuse the traces their SMT runs already generated. With
// -trace-dir the tier persists traces on disk (versioned, checksummed;
// corrupt files read as misses) so restarts skip regeneration; -batch
// controls how many configurations advance over one shared trace in a
// single batched pass (results are bit-identical either way).
//
// Scheduling across clients is fair by default: each request is
// attributed to a client identity (the X-Client header when present,
// otherwise the remote address) and the session's work queue interleaves
// queued jobs ICOUNT-style — the client with the fewest grid cells in
// service pops next — so a one-cell probe submitted behind a 4096-cell
// sweep is served long before the sweep drains. -scheduler fifo restores
// the old strict arrival order; scheduling only reorders execution, never
// results. -max-inflight-per-client N (0 = unbounded) additionally caps
// concurrent scenario requests per client identity, answering breaches
// with 429 and a Retry-After hint. /v1/metrics reports the queue depth
// ("queued"), admission rejections ("rejected"), the scheduler's
// per-client accounting ("scheduler") and the live goroutine count
// ("goroutines") — a leak gauge that returns to its post-startup
// baseline when the daemon goes idle.
//
// Cancellation is first-class: every sweep executes under its request's
// context, so a client that disconnects mid-sweep stops consuming the
// shared worker pool — grid cells not yet started are never simulated
// (they count in /v1/metrics as cache.canceled), while cells already
// running finish and stay cached for the next request. Client
// disconnects count under "canceled" in /v1/metrics, not "failures".
// SIGINT/SIGTERM shut the daemon down gracefully: the listener closes,
// in-flight responses drain up to -drain, then the process exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/simcache"
	"repro/internal/tracestore"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	entries := flag.Int("cache-entries", 4096, "simulation cache entry bound (0 = unbounded)")
	bytes := flag.Int64("cache-bytes", 256<<20, "simulation cache approximate byte bound (0 = unbounded)")
	workers := flag.Int("j", 0, "concurrent simulations (0 = all cores)")
	traceLen := flag.Int("tracelen", 0, "default per-thread trace length (specs may override via base.traceLen)")
	maxBody := flag.Int64("max-body", 1<<20, "maximum request body size in bytes")
	maxCells := flag.Int64("max-cells", 4096, "maximum grid cells (workloads x combos) per request (0 = unbounded)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown deadline for in-flight responses")
	storeDir := flag.String("store-dir", "", "persistent on-disk result store directory (empty = disabled)")
	storeBytes := flag.Int64("store-bytes", 0, "on-disk result store byte bound (0 = unbounded)")
	traceDir := flag.String("trace-dir", "", "persistent on-disk trace store directory (empty = disabled)")
	traceBytes := flag.Int64("trace-bytes", 0, "on-disk trace store byte bound (0 = unbounded)")
	batch := flag.Int("batch", 0, "configs executed per shared-trace batch (0 = default, 1 = unbatched)")
	scheduler := flag.String("scheduler", sched.Default, "work-queue scheduling policy (fifo|fair)")
	maxInflight := flag.Int("max-inflight-per-client", 0, "concurrent scenario requests per client identity (0 = unbounded)")
	flag.Parse()

	opt := experiments.Default()
	if *traceLen > 0 {
		opt.TraceLen = *traceLen
	}
	opt.Workers = *workers
	opt.CacheEntries = *entries
	opt.CacheBytes = *bytes
	opt.StoreDir = *storeDir
	opt.StoreBytes = *storeBytes
	opt.TraceDir = *traceDir
	opt.TraceBytes = *traceBytes
	opt.BatchConfigs = *batch
	opt.Scheduler = *scheduler

	srv, err := newServer(opt, *maxBody)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv.maxCells = *maxCells
	srv.maxInflight = *maxInflight
	if *storeDir != "" {
		log.Printf("smtsimd persistent result store at %s (bound %d bytes)", *storeDir, *storeBytes)
	}
	log.Printf("smtsimd listening on %s (cache bounds: %d entries, %d bytes; scheduler %s)",
		*addr, *entries, *bytes, *scheduler)
	// No WriteTimeout: NDJSON responses legitimately stream for as long
	// as a sweep simulates. Header and idle timeouts still bound what a
	// stalled or idle client can pin.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	log.Printf("smtsimd: signal received; draining in-flight responses (deadline %v)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		// The drain deadline passed with responses still streaming: cut
		// them off so the process cannot hang past its deadline.
		log.Printf("smtsimd: drain deadline exceeded, closing: %v", err)
		hs.Close()
		os.Exit(1)
	}
	log.Printf("smtsimd: shutdown complete")
}

// server is the daemon state: one experiment session (worker pool +
// bounded simulation cache) shared by every request, plus serving
// counters for /v1/metrics.
type server struct {
	session  *experiments.Session
	maxBody  int64
	maxCells int64

	// maxInflight bounds concurrent scenario requests per client
	// identity (0 = unbounded); breaches answer 429. inflightByClient
	// holds only clients with at least one open request.
	maxInflight      int
	admitMu          sync.Mutex
	inflightByClient map[string]int

	requests atomic.Uint64 // scenario requests accepted
	failures atomic.Uint64 // scenario requests that failed simulating
	canceled atomic.Uint64 // scenario requests cut short by the client
	rejected atomic.Uint64 // scenario requests refused by admission (429)
	rows     atomic.Uint64 // reduced rows served
}

// newServer builds the daemon around a fresh session.
func newServer(opt experiments.Options, maxBody int64) (*server, error) {
	s, err := experiments.NewSession(opt)
	if err != nil {
		return nil, fmt.Errorf("smtsimd: %w", err)
	}
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	return &server{
		session:          s,
		maxBody:          maxBody,
		maxCells:         4096,
		inflightByClient: map[string]int{},
	}, nil
}

// clientID attributes a request to a client identity: the X-Client
// header when the client names itself (smtload -client, the CI smoke
// jobs), otherwise the remote host. Both the admission bound and the
// fair scheduler key on this identity.
func (s *server) clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// admit reserves an in-flight slot for the client, reporting false when
// the per-client bound is already met. Every true return must be paired
// with exactly one release.
func (s *server) admit(client string) bool {
	if s.maxInflight <= 0 {
		return true
	}
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.inflightByClient[client] >= s.maxInflight {
		return false
	}
	s.inflightByClient[client]++
	return true
}

// release returns a client's admission slot, forgetting idle clients so
// the map tracks only clients with open requests.
func (s *server) release(client string) {
	if s.maxInflight <= 0 {
		return
	}
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if n := s.inflightByClient[client] - 1; n > 0 {
		s.inflightByClient[client] = n
	} else {
		delete(s.inflightByClient, client)
	}
}

// handler routes the three endpoints.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/scenario", s.handleScenario)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// handleScenario validates and executes one sweep.
func (s *server) handleScenario(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST a scenario spec"))
		return
	}
	// Admission runs before any parsing work: a client over its in-flight
	// bound is told to back off (429 + Retry-After) without costing the
	// daemon a body read. The slot is held for the request's full
	// lifetime, streaming included.
	client := s.clientID(r)
	if !s.admit(client) {
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("client %q has %d scenario requests in flight (limit %d)",
				client, s.maxInflight, s.maxInflight))
		return
	}
	defer s.release(client)
	sp, err := scenario.Parse(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		// An oversized body is its own condition (413), not a malformed
		// spec (400): the client must shrink the request, not fix it.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", s.maxBody))
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Pre-flight the full grid: an invalid machine configuration or an
	// oversized cross-product is the client's error and must be a 400,
	// not a mid-stream failure line (or a daemon-sized allocation).
	ws, err := sp.Workloads.Select()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if s.maxCells > 0 {
		cells := int64(len(ws))
		over := cells > s.maxCells
		for _, ax := range sp.Axes {
			cells *= int64(len(ax.Points))
			if over = over || cells > s.maxCells; over {
				break // stop before the product can overflow
			}
		}
		if over {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("scenario %s: grid has more than %d cells", sp.Name, s.maxCells))
			return
		}
	}
	if _, err := sp.Combos(s.session.BaseConfig()); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = sp.Format
	}
	if format == "" {
		format = "ndjson"
	}
	switch format {
	case "ndjson", "table", "json", "csv":
	default:
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (valid: ndjson, table, json, csv)", format))
		return
	}
	s.requests.Add(1)

	// The request's context threads through every execution layer: when
	// the client disconnects (or the connection dies), cells of this
	// sweep not yet started are never simulated, the wait aborts, and
	// the request counts as canceled, not failed. The client identity
	// rides the same context so the session's scheduler attributes every
	// job this sweep queues — batches and references included.
	ctx := sched.WithRequester(r.Context(), client)
	if format == "ndjson" {
		s.streamScenario(ctx, w, sp)
		return
	}
	// Buffered formats complete the sweep before the first byte, so a
	// simulation failure can still surface as a clean 500.
	rs, err := s.session.RunScenarioCtx(ctx, sp)
	if err != nil {
		if s.clientGone(ctx, err) {
			return // nobody is listening for a status line
		}
		s.failures.Add(1)
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	switch format {
	case "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	case "json":
		w.Header().Set("Content-Type", "application/json")
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
	}
	// Emit through a writer that marks connection failures with
	// errClientWrite, so a dead client (canceled) is distinguishable from
	// a server-side render/encode failure (failures) — the same
	// classification the streaming path applies per row. Rows count only
	// once the whole render lands: counting len(rs.Rows) up front credited
	// failed writes with every row while the NDJSON path counted only
	// successfully encoded ones.
	if err := rs.Emit(clientWriter{w}, format); err != nil {
		s.countEmitError(ctx, err)
		return
	}
	s.rows.Add(uint64(len(rs.Rows)))
}

// countEmitError classifies a failure to emit a completed sweep: client
// write trouble (dead connection, canceled request) counts as canceled,
// anything else — a server-side render or encode failure — as failures,
// per the metricsDoc contract.
func (s *server) countEmitError(ctx context.Context, err error) {
	if !s.clientGone(ctx, err) {
		s.failures.Add(1)
	}
}

// clientWriter wraps a buffered response so that connection-write errors
// inside ResultSet.Emit surface wrapped in errClientWrite. Emitters only
// ever see this writer fail on the transport, so any other error they
// return is the server's own rendering trouble.
type clientWriter struct{ w io.Writer }

func (cw clientWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if err != nil {
		return n, fmt.Errorf("%w: %v", errClientWrite, err)
	}
	return n, nil
}

// errClientWrite marks a response-write failure on the streaming path: a
// dead connection surfaces there (EPIPE, reset) possibly before net/http
// cancels the request context, and must still count as the client going
// away rather than as simulator trouble.
var errClientWrite = errors.New("client write failed")

// clientGone classifies a sweep error: if the request's context died
// (client disconnect, connection reset, server Close) or the response
// write itself failed, the request counts as canceled — a client
// behavior, not a simulation failure — and clientGone reports true after
// counting it.
func (s *server) clientGone(ctx context.Context, err error) bool {
	if ctx.Err() == nil && !errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, errClientWrite) {
		return false
	}
	s.canceled.Add(1)
	return true
}

// streamScenario writes NDJSON rows as grid cells complete. The status
// line goes out before the sweep finishes, so a mid-sweep simulation
// failure is reported as a terminal {"error"} line instead of a 500.
func (s *server) streamScenario(ctx context.Context, w http.ResponseWriter, sp *scenario.Spec) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := scenario.NewRowEncoder(w, sp)
	flusher, _ := w.(http.Flusher)
	_, err := scenario.ExecuteStreamCtx(ctx, s.session, sp, func(row scenario.Row) error {
		if err := enc.Encode(row); err != nil {
			return fmt.Errorf("%w: %v", errClientWrite, err)
		}
		s.rows.Add(1)
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil && !s.clientGone(ctx, err) {
		s.failures.Add(1)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
	}
}

// metricsDoc is the /v1/metrics wire shape. Failures counts sweeps that
// failed simulating or emitting; Canceled counts sweeps cut short by the
// client going away (disconnects, resets) — the two are never conflated,
// so a flaky client population cannot masquerade as simulator trouble.
// The disk* fields describe the persistent result store and stay zero
// when -store-dir is unset: diskHits are memory-cache misses served from
// disk without simulating, diskMisses are probes that fell through to a
// fresh simulation, diskBytes/diskEvictions track the bounded footprint,
// and diskWriteErrors counts results that failed to persist (write-behind
// is best-effort, so a full or read-only store dir shows up here — and
// nowhere else — before a restart re-simulates everything).
// The trace object reports the shared trace tier: hits/misses/generated
// count how often a grid cell's instruction traces were served from
// memory versus generated fresh (disk* subfields mirror the persistent
// tier enabled by -trace-dir), and batches/batchedCells count how much
// simulation work rode the batched executor — K configurations advanced
// over one shared trace in a single pass.
// Goroutines is the process's live goroutine count — a leak gauge: it
// returns to its post-startup baseline when the daemon is idle, so CI's
// leak-smoke step (and any monitor) can assert sweeps do not strand
// workers, waiters or response plumbing.
// Queued counts grid cells accepted into the work queue but not yet
// picked up by a worker — the complement of cache.inFlight, which only
// counts started cells, so a daemon sitting on a deep backlog no longer
// reports an idle picture. Rejected counts requests refused by the
// per-client admission bound (429s), and the scheduler object is the
// work queue's own view: policy name, queued jobs/cells, and per-client
// queued/in-service accounting (active clients only).
type metricsDoc struct {
	Cache           simcache.Stats   `json:"cache"`
	Requests        uint64           `json:"requests"`
	Failures        uint64           `json:"failures"`
	Canceled        uint64           `json:"canceled"`
	Rejected        uint64           `json:"rejected"`
	Rows            uint64           `json:"rows"`
	Goroutines      int              `json:"goroutines"`
	Queued          int              `json:"queued"`
	DiskHits        uint64           `json:"diskHits"`
	DiskMisses      uint64           `json:"diskMisses"`
	DiskBytes       int64            `json:"diskBytes"`
	DiskEvictions   uint64           `json:"diskEvictions"`
	DiskWriteErrors uint64           `json:"diskWriteErrors"`
	Trace           tracestore.Stats `json:"trace"`
	Batches         uint64           `json:"batches"`
	BatchedCells    uint64           `json:"batchedCells"`
	Scheduler       sched.Snapshot   `json:"scheduler"`
}

// handleMetrics reports cache effectiveness and serving counters.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	disk := s.session.StoreStats()
	batches, cells := s.session.BatchStats()
	schedSnap := s.session.SchedStats()
	enc.Encode(metricsDoc{
		Cache:           s.session.CacheStats(),
		Requests:        s.requests.Load(),
		Failures:        s.failures.Load(),
		Canceled:        s.canceled.Load(),
		Rejected:        s.rejected.Load(),
		Rows:            s.rows.Load(),
		Goroutines:      runtime.NumGoroutine(),
		Queued:          schedSnap.QueuedCells,
		DiskHits:        disk.Hits,
		DiskMisses:      disk.Misses,
		DiskBytes:       disk.Bytes,
		DiskEvictions:   disk.Evictions,
		DiskWriteErrors: disk.WriteErrors,
		Trace:           s.session.TraceStats(),
		Batches:         batches,
		BatchedCells:    cells,
		Scheduler:       schedSnap,
	})
}
