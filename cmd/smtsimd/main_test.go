package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/leakcheck"
	"repro/internal/scenario"
)

// testSpec is a small two-axis sweep touching two workloads; traceLen and
// seed are pinned in the spec so results do not depend on daemon options.
const testSpec = `{
  "name": "daemon-test",
  "workloads": {"adhoc": ["art+mcf", "gzip+bzip2"]},
  "base": {"traceLen": 1500, "maxCycles": 2000000, "seed": 7},
  "axes": [
    {"name": "rob", "points": [
      {"label": "64", "delta": {"robSize": 64}},
      {"label": "128", "delta": {"robSize": 128}}
    ]}
  ],
  "metrics": ["throughput", "l2mpki"]
}`

// testOptions keeps daemon tests fast.
func testOptions() experiments.Options {
	o := experiments.Quick()
	o.TraceLen = 1500
	return o
}

// newTestServer starts an httptest daemon over the given options.
func newTestServer(t *testing.T, opt experiments.Options) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(opt, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a scenario and returns status and body.
func post(t *testing.T, url, spec string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func TestScenarioBadRequests(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	for name, tc := range map[string]struct {
		url, body string
		want      int
	}{
		"malformed JSON":  {ts.URL + "/v1/scenario", "{", http.StatusBadRequest},
		"unknown field":   {ts.URL + "/v1/scenario", `{"name":"x","bogus":1}`, http.StatusBadRequest},
		"missing name":    {ts.URL + "/v1/scenario", `{}`, http.StatusBadRequest},
		"unknown bench":   {ts.URL + "/v1/scenario", `{"name":"x","workloads":{"adhoc":["nope"]}}`, http.StatusBadRequest},
		"unknown format":  {ts.URL + "/v1/scenario?format=xml", testSpec, http.StatusBadRequest},
		"oversized combo": {ts.URL + "/v1/scenario", `{"name":"x","axes":[{"name":"a","points":[{"delta":{"robSize":0}}]}],"base":{"robSize":-1}}`, http.StatusBadRequest},
	} {
		status, body := post(t, tc.url, tc.body)
		if status != tc.want {
			t.Errorf("%s: status = %d (body %s), want %d", name, status, body, tc.want)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: body %q is not a JSON error", name, body)
		}
	}
	if method, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/scenario", nil); method != nil {
		resp, err := http.DefaultClient.Do(method)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/scenario status = %d, want 405", resp.StatusCode)
		}
	}
}

// TestGridBound: a cross-product beyond the cell bound is rejected up
// front, before any simulation or grid allocation.
func TestGridBound(t *testing.T) {
	s, ts := newTestServer(t, testOptions())
	s.maxCells = 3
	status, body := post(t, ts.URL+"/v1/scenario", testSpec) // 2 workloads x 2 combos = 4 cells
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d (body %s), want 400", status, body)
	}
	if !strings.Contains(string(body), "more than 3 cells") {
		t.Errorf("body %s does not name the cell bound", body)
	}
	// A spec with no axes is still bounded: its cell count is its
	// workload count.
	noAxes := `{"name":"x","workloads":{"adhoc":["A/art+mcf","B/art+mcf","C/art+mcf","D/art+mcf"]}}`
	if status, body := post(t, ts.URL+"/v1/scenario", noAxes); status != http.StatusBadRequest {
		t.Errorf("no-axes spec: status = %d (body %s), want 400", status, body)
	}
}

// TestNDJSONMatchesInProcess locks the daemon's default streaming format
// to the engine's own serialization: the streamed body must be
// bit-identical to rendering the same sweep in process.
func TestNDJSONMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	_, ts := newTestServer(t, testOptions())
	status, body := post(t, ts.URL+"/v1/scenario", testSpec)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}

	sp, err := scenario.Parse(strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := experiments.NewSession(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sess.RunScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := rs.WriteNDJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("streamed NDJSON differs from in-process render:\ngot:\n%s\nwant:\n%s", body, want.Bytes())
	}
	if n := bytes.Count(body, []byte("\n")); n != 4 {
		t.Errorf("row count = %d, want 4 (2 workloads x 2 combos)", n)
	}
}

// TestResponseDeterministicAcrossWorkers is the service-level determinism
// contract: daemons over Workers=1 and Workers=GOMAXPROCS sessions return
// byte-identical bodies in every format, including concurrent requests
// against one daemon (run under -race in CI).
func TestResponseDeterministicAcrossWorkers(t *testing.T) {
	// Registered before newTestServer's ts.Close cleanup so it runs after
	// it (cleanups are LIFO): the check must see the listener closed and
	// DefaultTransport's keep-alives drained, not flag them.
	t.Cleanup(func() { leakcheck.Check(t) })
	if testing.Short() {
		t.Skip("simulation run")
	}
	oSeq := testOptions()
	oSeq.Workers = 1
	oPar := testOptions()
	oPar.Workers = runtime.GOMAXPROCS(0)
	// A tight entry bound on the parallel daemon forces evictions during
	// the sweep; responses must not change.
	oPar.CacheEntries = 3
	_, seq := newTestServer(t, oSeq)
	par, parTS := newTestServer(t, oPar)

	for _, format := range []string{"ndjson", "table", "json", "csv"} {
		url := "/v1/scenario?format=" + format
		status, want := post(t, seq.URL+url, testSpec)
		if status != http.StatusOK {
			t.Fatalf("%s: sequential status = %d, body %s", format, status, want)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				status, got := post(t, parTS.URL+url, testSpec)
				if status != http.StatusOK {
					t.Errorf("%s: parallel status = %d, body %s", format, status, got)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s: parallel daemon response differs from sequential:\ngot:\n%s\nwant:\n%s",
						format, got, want)
				}
			}()
		}
		wg.Wait()
	}
	if st := par.session.CacheStats(); st.Evictions == 0 {
		t.Errorf("cache stats %+v: want evictions > 0 under a 3-entry bound", st)
	}
}

// getMetrics fetches and decodes /v1/metrics.
func getMetrics(t *testing.T, url string) metricsDoc {
	t.Helper()
	resp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc metricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestRequestTooLarge: a body beyond -max-body is the client's size
// problem (413), not a malformed spec (400).
func TestRequestTooLarge(t *testing.T) {
	opt := testOptions()
	s, err := newServer(opt, 64) // far below len(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	status, body := post(t, ts.URL+"/v1/scenario", testSpec)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d (body %s), want 413", status, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "64 bytes") {
		t.Errorf("body %q does not name the body bound", body)
	}
}

// TestClientDisconnectStopsSweep is the serving-layer cancellation
// contract end to end: a client that opens a large NDJSON sweep and
// vanishes after the first row stops consuming the worker pool — cells
// not yet started are abandoned un-simulated (cache.canceled), in-flight
// work drains to zero, and the request counts as canceled, never as a
// simulation failure.
func TestClientDisconnectStopsSweep(t *testing.T) {
	// Registered before newTestServer's ts.Close cleanup so it runs after
	// it (cleanups are LIFO): the check must see the listener closed and
	// DefaultTransport's keep-alives drained, not flag them.
	t.Cleanup(func() { leakcheck.Check(t) })
	if testing.Short() {
		t.Skip("simulation run")
	}
	opt := testOptions()
	opt.Workers = 1      // one running cell at a time: the rest must queue
	opt.BatchConfigs = 1 // scalar dispatch: this test pins the queued-cell
	// abandonment contract (one cell in flight, seven queued); the batched
	// path's mid-batch abandonment is TestClientDisconnectAbandonsBatch.
	_, ts := newTestServer(t, opt)

	// One workload × 8 ROB points: 8 grid cells behind a single worker.
	var axes strings.Builder
	for i := 0; i < 8; i++ {
		if i > 0 {
			axes.WriteString(",")
		}
		fmt.Fprintf(&axes, `{"label":"%d","delta":{"robSize":%d}}`, 64+16*i, 64+16*i)
	}
	spec := `{
	  "name": "disconnect-test",
	  "workloads": {"adhoc": ["art+mcf"]},
	  "base": {"traceLen": 1500, "maxCycles": 2000000, "seed": 11},
	  "axes": [{"name": "rob", "points": [` + axes.String() + `]}],
	  "metrics": ["throughput"]
	}`

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/scenario", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read exactly one streamed row, then vanish mid-response.
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil {
		t.Fatalf("first NDJSON row: %v", err)
	}
	if !json.Valid([]byte(line)) {
		t.Fatalf("first row is not JSON: %q", line)
	}
	cancel()
	resp.Body.Close()

	// The pool must drain: the running cell finishes, queued cells are
	// abandoned without ever simulating.
	deadline := time.Now().Add(30 * time.Second)
	var doc metricsDoc
	for {
		doc = getMetrics(t, ts.URL)
		if doc.Cache.InFlight == 0 && doc.Canceled > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never drained after disconnect: %+v", doc)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if doc.Failures != 0 {
		t.Errorf("client disconnect counted as failure: %+v", doc)
	}
	if doc.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", doc.Canceled)
	}
	if doc.Cache.Canceled == 0 {
		t.Errorf("no queued cell was abandoned (all %d dispatched cells simulated): %+v", doc.Cache.Misses, doc)
	}

	// The daemon is undamaged: the same sweep completes for a patient
	// client, re-simulating what was abandoned.
	status, body := post(t, ts.URL+"/v1/scenario", spec)
	if status != http.StatusOK {
		t.Fatalf("post-disconnect sweep status = %d, body %s", status, body)
	}
	if n := bytes.Count(body, []byte("\n")); n != 8 {
		t.Errorf("post-disconnect sweep rows = %d, want 8", n)
	}
	after := getMetrics(t, ts.URL)
	if after.Failures != 0 {
		t.Errorf("failures after recovery sweep: %+v", after)
	}
}

// TestClientDisconnectAbandonsBatch is the same serving contract on the
// batched executor: with default batching, one workload's eight grid
// cells run as a single round-robin batch, and a client that vanishes
// mid-batch must stop it — cells whose only requester is gone are
// dropped between rounds, un-fulfilled, their keys free to recompute.
func TestClientDisconnectAbandonsBatch(t *testing.T) {
	// Registered before newTestServer's ts.Close cleanup so it runs after
	// it (cleanups are LIFO): the check must see the listener closed and
	// DefaultTransport's keep-alives drained, not flag them.
	t.Cleanup(func() { leakcheck.Check(t) })
	if testing.Short() {
		t.Skip("simulation run")
	}
	opt := testOptions()
	opt.TraceLen = 16000
	opt.Workers = 1
	_, ts := newTestServer(t, opt)

	var axes strings.Builder
	for i := 0; i < 8; i++ {
		if i > 0 {
			axes.WriteString(",")
		}
		fmt.Fprintf(&axes, `{"label":"%d","delta":{"robSize":%d}}`, 64+16*i, 64+16*i)
	}
	spec := `{
	  "name": "batch-disconnect-test",
	  "workloads": {"adhoc": ["art+mcf"]},
	  "base": {"traceLen": 16000, "maxCycles": 20000000, "seed": 13},
	  "axes": [{"name": "rob", "points": [` + axes.String() + `]}],
	  "metrics": ["throughput"]
	}`

	// Vanish while the batch is mid-flight, before any cell finishes.
	// The first NDJSON row (and with it the response header) only exists
	// once the first machine completes — several hundred milliseconds
	// into this batch — so Do blocks and the cancel below lands with all
	// eight cells still advancing behind the single worker.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/scenario", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	time.Sleep(150 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Log("response arrived before the cancel; relying on drain assertions below")
	}

	deadline := time.Now().Add(30 * time.Second)
	var doc metricsDoc
	for {
		doc = getMetrics(t, ts.URL)
		if doc.Cache.InFlight == 0 && doc.Canceled > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never drained after disconnect: %+v", doc)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if doc.Failures != 0 {
		t.Errorf("client disconnect counted as failure: %+v", doc)
	}
	if doc.Cache.Canceled == 0 {
		t.Errorf("no batched cell was abandoned mid-batch: %+v", doc)
	}

	// The daemon is undamaged: a patient client gets the full sweep,
	// re-simulating the abandoned cells.
	status, body := post(t, ts.URL+"/v1/scenario", spec)
	if status != http.StatusOK {
		t.Fatalf("post-disconnect sweep status = %d, body %s", status, body)
	}
	if n := bytes.Count(body, []byte("\n")); n != 8 {
		t.Errorf("post-disconnect sweep rows = %d, want 8", n)
	}
	if after := getMetrics(t, ts.URL); after.Failures != 0 {
		t.Errorf("failures after recovery sweep: %+v", after)
	}
}

// failingWriter is a ResponseWriter whose connection is dead: every
// write fails. It stands in for a client that vanished between the sweep
// finishing and the response being rendered.
type failingWriter struct {
	h      http.Header
	status int
}

func (f *failingWriter) Header() http.Header {
	if f.h == nil {
		f.h = http.Header{}
	}
	return f.h
}
func (f *failingWriter) WriteHeader(code int)      { f.status = code }
func (f *failingWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("broken pipe") }

// TestRowsNotCountedOnWriteFailure is the regression test for the
// buffered-path rows over-count: when every write to the client fails,
// the NDJSON path and the buffered paths must agree that zero rows were
// served — the buffered path used to credit len(rs.Rows) before Emit ran.
// Both failures are client behavior, so they must count as canceled, not
// failures.
func TestRowsNotCountedOnWriteFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	s, _ := newTestServer(t, testOptions())
	rowsBy := map[string]uint64{}
	for _, format := range []string{"ndjson", "json", "table", "csv"} {
		before := s.rows.Load()
		req := httptest.NewRequest(http.MethodPost, "/v1/scenario?format="+format, strings.NewReader(testSpec))
		s.handleScenario(&failingWriter{}, req)
		rowsBy[format] = s.rows.Load() - before
	}
	for format, rows := range rowsBy {
		if rows != rowsBy["ndjson"] {
			t.Errorf("rows counted on a dead connection disagree: %s = %d, ndjson = %d",
				format, rows, rowsBy["ndjson"])
		}
		if rows != 0 {
			t.Errorf("%s: counted %d rows served on a connection that accepted zero bytes", format, rows)
		}
	}
	if got := s.canceled.Load(); got != 4 {
		t.Errorf("canceled = %d, want 4 (every dead-connection response)", got)
	}
	if got := s.failures.Load(); got != 0 {
		t.Errorf("failures = %d, want 0: client write trouble is not simulator trouble", got)
	}
}

// TestEmitErrorClassification locks the metricsDoc contract for buffered
// emit errors: connection-write failures (errClientWrite) and dead
// request contexts count as canceled; any other emit error is a
// server-side render/encode failure and counts as failures.
func TestEmitErrorClassification(t *testing.T) {
	s, err := newServer(testOptions(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	deadCtx, cancel := context.WithCancel(ctx)
	cancel()
	for _, tc := range []struct {
		name       string
		ctx        context.Context
		err        error
		wantFail   uint64
		wantCancel uint64
	}{
		{"server-side render failure", ctx, fmt.Errorf("json: unsupported value"), 1, 0},
		{"connection write failure", ctx, fmt.Errorf("scenario x: %w: reset", errClientWrite), 1, 1},
		{"request context dead", deadCtx, fmt.Errorf("anything"), 1, 2},
	} {
		s.countEmitError(tc.ctx, tc.err)
		if got := s.failures.Load(); got != tc.wantFail {
			t.Errorf("%s: failures = %d, want %d", tc.name, got, tc.wantFail)
		}
		if got := s.canceled.Load(); got != tc.wantCancel {
			t.Errorf("%s: canceled = %d, want %d", tc.name, got, tc.wantCancel)
		}
	}
}

// TestRestartServesFromDisk is the warm-restart contract end to end: a
// daemon with a persistent store is torn down after a sweep; a fresh
// daemon over the same directory serves the identical sweep
// byte-identically with zero new simulations — every memory-cache miss
// becomes a disk hit.
func TestRestartServesFromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	opt := testOptions()
	opt.StoreDir = t.TempDir()

	_, ts1 := newTestServer(t, opt)
	status, want := post(t, ts1.URL+"/v1/scenario", testSpec)
	if status != http.StatusOK {
		t.Fatalf("cold sweep status = %d, body %s", status, want)
	}
	cold := getMetrics(t, ts1.URL)
	if cold.DiskMisses == 0 || cold.DiskHits != 0 || cold.DiskBytes == 0 {
		t.Fatalf("cold daemon disk stats = %+v, want only misses and a populated store", cold)
	}
	ts1.Close() // the kill

	_, ts2 := newTestServer(t, opt) // the restart, same -store-dir
	status, got := post(t, ts2.URL+"/v1/scenario", testSpec)
	if status != http.StatusOK {
		t.Fatalf("warm sweep status = %d, body %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("restarted daemon response differs from pre-restart response:\ngot:\n%s\nwant:\n%s", got, want)
	}
	warm := getMetrics(t, ts2.URL)
	if warm.DiskMisses != 0 {
		t.Errorf("restarted daemon simulated %d cells, want 0 (all from disk): %+v", warm.DiskMisses, warm)
	}
	if warm.DiskHits == 0 {
		t.Errorf("restarted daemon served no disk hits: %+v", warm)
	}
	if warm.Failures != 0 || warm.Canceled != 0 {
		t.Errorf("restarted daemon counters dirty: %+v", warm)
	}
}

// TestTinyTraceAllFormats runs a deliberately starved configuration —
// tiny trace, cycle budget low enough to truncate — through every output
// format: truncated rows must emit cleanly (finite JSON numbers, no
// "unsupported value" encode failures) in each of them.
func TestTinyTraceAllFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	_, ts := newTestServer(t, testOptions())
	spec := `{
	  "name": "tiny-trace",
	  "workloads": {"adhoc": ["art+mcf"]},
	  "base": {"traceLen": 200, "maxCycles": 400, "seed": 3},
	  "metrics": ["throughput", "l2mpki", "ed2", "cycles", "committed"]
	}`
	for _, format := range []string{"ndjson", "json", "csv", "table"} {
		status, body := post(t, ts.URL+"/v1/scenario?format="+format, spec)
		if status != http.StatusOK {
			t.Fatalf("%s: status = %d, body %s", format, status, body)
		}
		if len(bytes.TrimSpace(body)) == 0 {
			t.Errorf("%s: empty body", format)
		}
		switch format {
		case "json":
			if !json.Valid(body) {
				t.Errorf("json body invalid: %s", body)
			}
		case "ndjson":
			for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
				if !json.Valid(line) {
					t.Errorf("ndjson line invalid: %s", line)
				}
			}
		}
	}
	if doc := getMetrics(t, ts.URL); doc.Failures != 0 {
		t.Errorf("tiny-trace sweeps failed: %+v", doc)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	s, ts := newTestServer(t, testOptions())
	if status, body := post(t, ts.URL+"/v1/scenario", testSpec); status != http.StatusOK {
		t.Fatalf("scenario status = %d, body %s", status, body)
	}
	// A repeat of the same sweep must be pure cache hits.
	before := s.session.CacheStats()
	if status, _ := post(t, ts.URL+"/v1/scenario", testSpec); status != http.StatusOK {
		t.Fatal("second scenario request failed")
	}
	after := s.session.CacheStats()
	if after.Misses != before.Misses {
		t.Errorf("repeat sweep added %d misses, want 0", after.Misses-before.Misses)
	}
	if after.Hits <= before.Hits {
		t.Errorf("repeat sweep added no hits: %+v -> %+v", before, after)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc metricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Requests != 2 || doc.Failures != 0 {
		t.Errorf("metrics = %+v, want 2 requests / 0 failures", doc)
	}
	if doc.Rows != 8 {
		t.Errorf("metrics rows = %d, want 8 (2 sweeps x 4 rows)", doc.Rows)
	}
	if doc.Cache.Misses == 0 || doc.Cache.Hits == 0 {
		t.Errorf("cache stats %+v: want both misses and hits", doc.Cache)
	}
	if doc.Scheduler.Policy != "fair" {
		t.Errorf("scheduler policy = %q, want fair (the default)", doc.Scheduler.Policy)
	}
	if doc.Queued != 0 || doc.Scheduler.QueuedCells != 0 || len(doc.Scheduler.Clients) != 0 {
		t.Errorf("scheduler not idle at rest: queued=%d %+v", doc.Queued, doc.Scheduler)
	}
	if doc.Rejected != 0 {
		t.Errorf("rejected = %d, want 0 (admission unbounded by default)", doc.Rejected)
	}
	if doc.Goroutines <= 0 {
		t.Errorf("goroutines gauge = %d, want a live count", doc.Goroutines)
	}
}

// postClient is post with an X-Client identity header.
func postClient(t *testing.T, url, spec, client string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Client", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestAdmissionPerClient pins the per-client admission bound end to end:
// with -max-inflight-per-client 1, a client holding a streaming sweep
// open is refused a second concurrent request (429, counted under
// rejected), a differently-named client is admitted and served, the
// backlog shows up in the queued gauge and the scheduler's per-client
// accounting, and the slot frees as soon as the held stream closes.
func TestAdmissionPerClient(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	opt := testOptions()
	opt.Workers = 1
	opt.BatchConfigs = 1 // scalar dispatch: cells queue individually
	s, ts := newTestServer(t, opt)
	s.maxInflight = 1

	// One workload × 8 ROB points behind a single worker. Long traces
	// keep each cell simulating for hundreds of milliseconds, so once the
	// first row arrives the request is reliably still in flight — slot
	// taken, later cells queued — for the assertions below.
	var axes strings.Builder
	for i := 0; i < 8; i++ {
		if i > 0 {
			axes.WriteString(",")
		}
		fmt.Fprintf(&axes, `{"label":"%d","delta":{"robSize":%d}}`, 64+16*i, 64+16*i)
	}
	heldSpec := `{
	  "name": "admission-held",
	  "workloads": {"adhoc": ["art+mcf"]},
	  "base": {"traceLen": 16000, "maxCycles": 20000000, "seed": 17},
	  "axes": [{"name": "rob", "points": [` + axes.String() + `]}],
	  "metrics": ["throughput"]
	}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/scenario", strings.NewReader(heldSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatalf("first NDJSON row: %v", err)
	}

	// The backlog is visible: queued cells, attributed to this client.
	doc := getMetrics(t, ts.URL)
	if doc.Queued == 0 {
		t.Errorf("queued = 0 with a 7-cell backlog behind one worker: %+v", doc.Scheduler)
	}
	if len(doc.Scheduler.Clients) == 0 {
		t.Errorf("scheduler clients empty mid-sweep: %+v", doc.Scheduler)
	}

	// Same identity (remote host), second concurrent request: refused.
	status, body := post(t, ts.URL+"/v1/scenario", testSpec)
	if status != http.StatusTooManyRequests {
		t.Fatalf("concurrent same-client status = %d (body %s), want 429", status, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "in flight") {
		t.Errorf("429 body %q is not a JSON error naming the bound", body)
	}
	if got := getMetrics(t, ts.URL).Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	// A different identity is admitted and served while the first
	// client's sweep still streams — fair scheduling in one request.
	tiny := `{
	  "name": "admission-other",
	  "workloads": {"adhoc": ["art+mcf"]},
	  "base": {"traceLen": 200, "maxCycles": 400, "seed": 19},
	  "metrics": ["throughput"]
	}`
	if status, body := postClient(t, ts.URL+"/v1/scenario", tiny, "other"); status != http.StatusOK {
		t.Errorf("other-client status = %d (body %s), want 200", status, body)
	}

	// Releasing the held stream frees the slot.
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if status, _ := post(t, ts.URL+"/v1/scenario", tiny); status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admission slot never released after the held stream closed")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAdmissionConcurrentClients hammers admission from many goroutines
// across a handful of client identities (run under -race in CI): every
// response is either served or a clean 429, accounting never wedges, and
// once the burst drains every client is admitted again.
func TestAdmissionConcurrentClients(t *testing.T) {
	// Registered before newTestServer's ts.Close cleanup so it runs after
	// it (cleanups are LIFO): the check must see the listener closed and
	// DefaultTransport's keep-alives drained, not flag them.
	t.Cleanup(func() { leakcheck.Check(t) })
	tiny := `{
	  "name": "admission-burst",
	  "workloads": {"adhoc": ["art+mcf"]},
	  "base": {"traceLen": 200, "maxCycles": 400, "seed": 23},
	  "metrics": ["throughput"]
	}`
	s, ts := newTestServer(t, testOptions())
	s.maxInflight = 2

	clients := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	var served, rejected atomic.Uint64
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postClient(t, ts.URL+"/v1/scenario", tiny, clients[i%len(clients)])
			switch status {
			case http.StatusOK:
				served.Add(1)
			case http.StatusTooManyRequests:
				rejected.Add(1)
			default:
				t.Errorf("burst status = %d (body %s), want 200 or 429", status, body)
			}
		}(i)
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Error("burst: no request was served")
	}
	if got := getMetrics(t, ts.URL).Rejected; got != rejected.Load() {
		t.Errorf("rejected metric = %d, clients saw %d", got, rejected.Load())
	}
	// The burst drained, so every identity has its slots back.
	for _, c := range clients {
		if status, body := postClient(t, ts.URL+"/v1/scenario", tiny, c); status != http.StatusOK {
			t.Errorf("post-burst client %q status = %d (body %s), want 200", c, status, body)
		}
	}
}
