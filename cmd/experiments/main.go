// Command experiments regenerates the paper's tables and figures, and
// runs declarative scenario sweeps.
//
// Usage:
//
//	experiments -fig all            # everything (slow: full Table 2 suite)
//	experiments -fig fig1 -quick    # Figure 1 on a reduced suite
//	experiments -fig table1         # print the baseline configuration
//
//	# Arbitrary machine-design sweeps from a JSON spec (any core.Config
//	# knob — ROB size, cache latency, width ... — not just the paper's
//	# policy and register axes):
//	experiments -scenario examples/scenarios/rob-sweep.json -format json
//	experiments -scenario examples/scenarios/l2-latency.json -format csv -quick
//
// Figure output is plain text shaped like the paper's figures;
// EXPERIMENTS.md records a captured run against the published numbers.
// Scenario output renders as an aligned table, JSON, or CSV (-format,
// falling back to the spec's "format" field).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	fig := flag.String("fig", "all", "what to produce: table1, table2, fig1..fig6, or all")
	scenarioPath := flag.String("scenario", "", "run a scenario spec (JSON file) instead of figures")
	format := flag.String("format", "", "scenario output format: table, json, csv or ndjson (default: the spec's format field, then table)")
	quick := flag.Bool("quick", false, "reduced suite (3 workloads/group, shorter traces)")
	traceLen := flag.Int("tracelen", 0, "override per-thread trace length")
	perGroup := flag.Int("pergroup", 0, "override workloads per group (0 = all)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	groups := flag.String("groups", "", "comma-separated group filter (e.g. MEM2,MEM4)")
	workers := flag.Int("j", 0, "concurrent simulations (0 = all cores)")
	storeDir := flag.String("store-dir", "", "persistent on-disk result store directory (empty = disabled); repeated runs over one directory skip already-simulated cells")
	storeBytes := flag.Int64("store-bytes", 0, "on-disk result store byte bound (0 = unbounded)")
	traceDir := flag.String("trace-dir", "", "persistent on-disk trace store directory (empty = disabled); repeated runs skip trace regeneration")
	traceBytes := flag.Int64("trace-bytes", 0, "on-disk trace store byte bound (0 = unbounded)")
	batch := flag.Int("batch", 0, "configs executed per shared-trace batch (0 = default, 1 = unbatched)")
	flag.Parse()

	// Record which flags the user actually set: defaults must not clobber
	// values a scenario spec provides (the -seed default of 1, applied
	// unconditionally, used to overwrite any spec seed).
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}
	if *traceLen > 0 {
		opt.TraceLen = *traceLen
	}
	if *perGroup > 0 {
		opt.PerGroup = *perGroup
	}
	if *groups != "" {
		opt.Groups = strings.Split(*groups, ",")
	}
	if set["seed"] {
		opt.Seed = *seed
	}
	opt.Workers = *workers
	opt.StoreDir = *storeDir
	opt.StoreBytes = *storeBytes
	opt.TraceDir = *traceDir
	opt.TraceBytes = *traceBytes
	opt.BatchConfigs = *batch

	// Ctrl-C / SIGTERM cancels the session context: queued simulations are
	// never started, running ones finish, and the harness exits promptly
	// instead of completing the whole grid.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fail := func(err error) {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *scenarioPath != "" {
		sp, err := scenario.Load(*scenarioPath)
		if err != nil {
			fail(err)
		}
		// Explicit flags outrank the spec; the spec outranks harness
		// defaults (the session base picks up the spec's measurement
		// deltas through scenario.Spec.Base).
		if set["seed"] {
			sp.Base.Seed = nil
		}
		if set["tracelen"] {
			sp.Base.TraceLen = nil
		}
		if sp.Workloads.PerGroup == 0 {
			// Harness suite reduction (-quick's 3/group) applies when the
			// spec does not pin its own truncation.
			sp.Workloads.PerGroup = opt.PerGroup
		}
		if set["pergroup"] {
			sp.Workloads.PerGroup = *perGroup
		}
		if set["groups"] {
			sp.Workloads.Groups = opt.Groups
		}
		s, err := experiments.NewSession(opt)
		if err != nil {
			fail(err)
		}
		rs, err := s.RunScenarioCtx(ctx, sp)
		if err != nil {
			fail(err)
		}
		f := *format
		if f == "" {
			f = sp.Format
		}
		if err := rs.Emit(os.Stdout, f); err != nil {
			fail(err)
		}
		return
	}

	s, err := experiments.NewSession(opt)
	if err != nil {
		fail(err)
	}
	want := strings.ToLower(*fig)
	all := want == "all"

	emit := func(name string, f func() (fmt.Stringer, error)) {
		if !all && want != name {
			return
		}
		start := time.Now()
		r, err := f()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "experiments: interrupted")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(r.String())
		fmt.Printf("[%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if all || want == "table1" {
		fmt.Println(experiments.Table1())
	}
	if all || want == "table2" {
		fmt.Println(experiments.Table2())
	}
	emit("fig1", func() (fmt.Stringer, error) { return s.Fig1(ctx) })
	emit("fig2", func() (fmt.Stringer, error) { return s.Fig2(ctx) })
	emit("fig3", func() (fmt.Stringer, error) { return s.Fig3(ctx) })
	emit("fig4", func() (fmt.Stringer, error) { return s.Fig4(ctx) })
	emit("fig5", func() (fmt.Stringer, error) { return s.Fig5(ctx) })
	emit("fig6", func() (fmt.Stringer, error) { return s.Fig6(ctx) })
}
