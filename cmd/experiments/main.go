// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig all            # everything (slow: full Table 2 suite)
//	experiments -fig fig1 -quick    # Figure 1 on a reduced suite
//	experiments -fig table1         # print the baseline configuration
//
// Output is plain text shaped like the paper's figures; EXPERIMENTS.md
// records a captured run against the published numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "what to produce: table1, table2, fig1..fig6, or all")
	quick := flag.Bool("quick", false, "reduced suite (3 workloads/group, shorter traces)")
	traceLen := flag.Int("tracelen", 0, "override per-thread trace length")
	perGroup := flag.Int("pergroup", 0, "override workloads per group (0 = all)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	groups := flag.String("groups", "", "comma-separated group filter (e.g. MEM2,MEM4)")
	workers := flag.Int("j", 0, "concurrent simulations (0 = all cores)")
	flag.Parse()

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}
	if *traceLen > 0 {
		opt.TraceLen = *traceLen
	}
	if *perGroup > 0 {
		opt.PerGroup = *perGroup
	}
	if *groups != "" {
		opt.Groups = strings.Split(*groups, ",")
	}
	opt.Seed = *seed
	opt.Workers = *workers

	s := experiments.NewSession(opt)
	want := strings.ToLower(*fig)
	all := want == "all"

	emit := func(name string, f func() (fmt.Stringer, error)) {
		if !all && want != name {
			return
		}
		start := time.Now()
		r, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(r.String())
		fmt.Printf("[%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if all || want == "table1" {
		fmt.Println(experiments.Table1())
	}
	if all || want == "table2" {
		fmt.Println(experiments.Table2())
	}
	emit("fig1", func() (fmt.Stringer, error) { return s.Fig1() })
	emit("fig2", func() (fmt.Stringer, error) { return s.Fig2() })
	emit("fig3", func() (fmt.Stringer, error) { return s.Fig3() })
	emit("fig4", func() (fmt.Stringer, error) { return s.Fig4() })
	emit("fig5", func() (fmt.Stringer, error) { return s.Fig5() })
	emit("fig6", func() (fmt.Stringer, error) { return s.Fig6() })
}
