// Package regfile models the shared physical register files of the SMT
// processor and the per-thread rename maps over them.
//
// The design is a "future file" organization: committed architectural
// state lives outside the physical register file (and since the simulator
// is trace-driven, it is not stored at all — only timing and validity
// matter). A physical register is allocated when an instruction renames its
// destination and lives until the instruction has retired (committed,
// pseudo-retired in runahead mode, or been squashed) *and* every consumer
// that named it has read it. Consumer tracking is an explicit reference
// count, which gives a precise, deadlock-free lifetime without modelling
// values.
//
// This organization is what lets Figure 6's register file sweep reach 64
// registers with 4 threads: the PRF only holds in-flight state, so its
// size bounds the out-of-order window rather than the architectural state.
// (The paper's merged-file accounting reserves 32 registers per thread for
// architectural state; our x-axis therefore corresponds to the paper's
// *renaming* registers. EXPERIMENTS.md discusses the correspondence.)
//
// Runahead support is built in: each register carries an INV bit (the
// paper's §3.3 "register control"), and pinning exists so checkpointed
// mappings can never be reclaimed while a runahead episode needs them.
package regfile

import (
	"fmt"

	"repro/internal/isa"
)

// PhysReg names a physical register within one File. None marks "no
// register": an operand that reads committed architectural state (always
// ready and valid) or an absent operand.
type PhysReg int32

// None is the absent physical register.
const None PhysReg = -1

// Invalid is a rename-map sentinel meaning "this architectural register's
// current value is known-invalid and no physical register backs it". It is
// produced by runahead mode's decode-time invalidation (paper §3.3: an FP
// instruction in a runahead thread is invalidated at decode and allocates
// no FP queue entry, functional unit, or physical register). Reading
// Invalid yields a ready, INV operand.
const Invalid PhysReg = -2

// regState is the per-register bookkeeping.
type regState struct {
	allocated bool
	ready     bool
	inv       bool
	pinned    bool
	dead      bool // producer retired or squashed; free when refs == 0
	refs      int32
	owner     uint8
}

// File is one physical register file (the simulator instantiates one for
// the integer side and one for the FP side, sized per Table 1).
type File struct {
	name     string
	regs     []regState
	free     []PhysReg
	inUse    int
	perOwner [8]int
}

// New builds a file with size registers. The name appears in panics and
// statistics.
func New(name string, size int) *File {
	if size <= 0 {
		//lint:panicfree constructor precondition on compiled-in machine configurations (Table 1 sizes); violation is a programming error
		panic("regfile: non-positive size")
	}
	f := &File{
		name: name,
		regs: make([]regState, size),
		free: make([]PhysReg, size),
	}
	// Free list as a stack, low registers on top for determinism.
	for i := range f.free {
		f.free[i] = PhysReg(size - 1 - i)
	}
	return f
}

// Size returns the total number of physical registers.
func (f *File) Size() int { return len(f.regs) }

// InUse returns the number of currently allocated registers; Figure 5
// samples this every cycle.
func (f *File) InUse() int { return f.inUse }

// FreeCount returns the number of registers available for allocation.
func (f *File) FreeCount() int { return len(f.free) }

// Alloc takes a register for thread tid's newly renamed destination. It
// returns (None, false) when the file is exhausted — the rename stage must
// stall that thread.
func (f *File) Alloc(tid int) (PhysReg, bool) {
	if len(f.free) == 0 {
		return None, false
	}
	p := f.free[len(f.free)-1]
	f.free = f.free[:len(f.free)-1]
	f.regs[p] = regState{allocated: true, owner: uint8(tid)}
	f.inUse++
	f.perOwner[tid&7]++
	return p, true
}

// OwnerCount returns the number of registers currently held by thread tid.
// Figure 5 samples this per cycle, split by execution mode.
func (f *File) OwnerCount(tid int) int { return f.perOwner[tid&7] }

// IncRef records that a renamed consumer names p as a source.
func (f *File) IncRef(p PhysReg) {
	s := f.state(p)
	s.refs++
}

// DecRef records that a consumer has read p (issued, folded, or been
// squashed). The register is reclaimed when the producer is dead and the
// last reference drains.
func (f *File) DecRef(p PhysReg) {
	s := f.state(p)
	if s.refs == 0 {
		//lint:panicfree refcount underflow means rename bookkeeping corruption; continuing would free live registers and silently corrupt results
		panic(fmt.Sprintf("regfile %s: DecRef(%d) below zero", f.name, p))
	}
	s.refs--
	f.maybeFree(p)
}

// MarkReady records that the producer of p has produced its result (or
// been folded as invalid in runahead mode). The inv flag sets the
// register's INV bit.
func (f *File) MarkReady(p PhysReg, inv bool) {
	s := f.state(p)
	s.ready = true
	s.inv = inv
}

// Ready reports whether p's value is available. None (architectural state)
// and Invalid (known-invalid, unbacked) are both always "ready" — there is
// nothing to wait for.
func (f *File) Ready(p PhysReg) bool {
	if p < 0 {
		return true
	}
	return f.state(p).ready
}

// Inv reports p's INV bit. None (architectural state) is always valid;
// Invalid is, by definition, invalid.
func (f *File) Inv(p PhysReg) bool {
	if p == None {
		return false
	}
	if p == Invalid {
		return true
	}
	return f.state(p).inv
}

// Pin prevents p from being reclaimed until Unpin, regardless of refs and
// retirement. Runahead checkpoints pin the mappings they preserve.
func (f *File) Pin(p PhysReg) { f.state(p).pinned = true }

// Unpin releases a checkpoint pin and reclaims p if it was only waiting on
// the pin.
func (f *File) Unpin(p PhysReg) {
	s := f.state(p)
	if !s.pinned {
		//lint:panicfree checkpoint pin/unpin imbalance means runahead checkpoint corruption; halting beats silently wrong state restoration
		panic(fmt.Sprintf("regfile %s: Unpin(%d) of unpinned register", f.name, p))
	}
	s.pinned = false
	f.maybeFree(p)
}

// Release marks p's producer as retired (committed or pseudo-retired) or
// squashed. The register is reclaimed once all consumer references drain
// and any checkpoint pin is lifted.
func (f *File) Release(p PhysReg) {
	s := f.state(p)
	if s.dead {
		//lint:panicfree double release means retirement bookkeeping corruption; continuing would double-free a register another thread may hold
		panic(fmt.Sprintf("regfile %s: double Release(%d)", f.name, p))
	}
	s.dead = true
	f.maybeFree(p)
}

// Owner returns the thread that allocated p.
func (f *File) Owner(p PhysReg) int { return int(f.state(p).owner) }

func (f *File) maybeFree(p PhysReg) {
	s := &f.regs[p]
	if s.allocated && s.dead && !s.pinned && s.refs == 0 {
		s.allocated = false
		f.free = append(f.free, p)
		f.inUse--
		f.perOwner[s.owner&7]--
	}
}

func (f *File) state(p PhysReg) *regState {
	if p < 0 || int(p) >= len(f.regs) {
		//lint:panicfree an out-of-range tag can only come from pipeline state corruption; equivalent to the bounds check the next line would trip anyway
		panic(fmt.Sprintf("regfile %s: register %d out of range", f.name, p))
	}
	s := &f.regs[p]
	if !s.allocated {
		//lint:panicfree touching an unallocated register means a stale tag survived a squash; continuing would read garbage state
		panic(fmt.Sprintf("regfile %s: register %d not allocated", f.name, p))
	}
	return s
}

// CheckInvariants verifies internal consistency (used by tests and the
// simulator's paranoid mode): the free list and allocated flags must
// partition the file, and inUse must match.
func (f *File) CheckInvariants() error {
	onFree := make([]bool, len(f.regs))
	for _, p := range f.free {
		if onFree[p] {
			return fmt.Errorf("regfile %s: register %d on free list twice", f.name, p)
		}
		onFree[p] = true
	}
	used := 0
	for i := range f.regs {
		if f.regs[i].allocated {
			used++
			if onFree[i] {
				return fmt.Errorf("regfile %s: register %d allocated and free", f.name, i)
			}
		} else if !onFree[i] {
			return fmt.Errorf("regfile %s: register %d neither allocated nor free", f.name, i)
		}
	}
	if used != f.inUse {
		return fmt.Errorf("regfile %s: inUse=%d but %d allocated", f.name, f.inUse, used)
	}
	return nil
}

// --- Rename map --------------------------------------------------------------

// RenameMap is one thread's architectural-to-physical mapping. Entries are
// None when the architectural register's latest value is committed (the
// future-file resting state).
type RenameMap struct {
	m [isa.NumArchRegs]PhysReg
}

// NewRenameMap returns a map with every register in the committed state.
func NewRenameMap() *RenameMap {
	r := &RenameMap{}
	r.Reset()
	return r
}

// Reset returns every architectural register to the committed state.
// Runahead exit uses this: the checkpoint taken at a thread's ROB head is
// exactly "all state committed".
func (r *RenameMap) Reset() {
	for i := range r.m {
		r.m[i] = None
	}
}

// Get returns the current mapping for architectural register a, or None
// when the value is committed (or a is RegNone).
func (r *RenameMap) Get(a isa.Reg) PhysReg {
	if a == isa.RegNone {
		return None
	}
	return r.m[a]
}

// Set installs a new mapping and returns the previous one (needed for
// squash rollback).
func (r *RenameMap) Set(a isa.Reg, p PhysReg) (prev PhysReg) {
	prev = r.m[a]
	r.m[a] = p
	return prev
}

// ClearIfCurrent resets a's mapping to committed state if it still points
// at p. Commit uses this: once the writing instruction commits, later
// renames read architectural state.
func (r *RenameMap) ClearIfCurrent(a isa.Reg, p PhysReg) bool {
	if r.m[a] == p {
		r.m[a] = None
		return true
	}
	return false
}

// Live returns the number of in-flight (non-None) mappings.
func (r *RenameMap) Live() int {
	n := 0
	for _, p := range r.m {
		if p != None {
			n++
		}
	}
	return n
}

// Snapshot copies the map (checkpoint support for tests and ablations; the
// production runahead path uses Reset because its checkpoint is taken at
// the thread's ROB head where everything older is committed).
func (r *RenameMap) Snapshot() [isa.NumArchRegs]PhysReg { return r.m }

// Restore overwrites the map from a snapshot.
func (r *RenameMap) Restore(s [isa.NumArchRegs]PhysReg) { r.m = s }
