package regfile

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/rng"
)

func TestAllocExhaustion(t *testing.T) {
	f := New("int", 4)
	var regs []PhysReg
	for i := 0; i < 4; i++ {
		p, ok := f.Alloc(0)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		regs = append(regs, p)
	}
	if _, ok := f.Alloc(0); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if f.InUse() != 4 || f.FreeCount() != 0 {
		t.Fatalf("inUse=%d free=%d", f.InUse(), f.FreeCount())
	}
	f.Release(regs[0])
	if f.InUse() != 3 {
		t.Fatal("release with no refs did not free")
	}
	if _, ok := f.Alloc(1); !ok {
		t.Fatal("alloc after free failed")
	}
}

func TestRefCountDelaysFree(t *testing.T) {
	f := New("int", 2)
	p, _ := f.Alloc(0)
	f.IncRef(p)
	f.IncRef(p)
	f.Release(p)
	if f.InUse() != 1 {
		t.Fatal("register freed while referenced")
	}
	f.DecRef(p)
	if f.InUse() != 1 {
		t.Fatal("register freed with one reference outstanding")
	}
	f.DecRef(p)
	if f.InUse() != 0 {
		t.Fatal("register not freed after last reference drained")
	}
}

func TestPinBlocksFree(t *testing.T) {
	f := New("int", 2)
	p, _ := f.Alloc(0)
	f.Pin(p)
	f.Release(p)
	if f.InUse() != 1 {
		t.Fatal("pinned register reclaimed")
	}
	f.Unpin(p)
	if f.InUse() != 0 {
		t.Fatal("register not reclaimed after unpin")
	}
}

func TestReadyAndInv(t *testing.T) {
	f := New("int", 4)
	p, _ := f.Alloc(0)
	if f.Ready(p) {
		t.Fatal("fresh register ready")
	}
	f.MarkReady(p, false)
	if !f.Ready(p) || f.Inv(p) {
		t.Fatal("valid result misreported")
	}
	q, _ := f.Alloc(0)
	f.MarkReady(q, true)
	if !f.Ready(q) || !f.Inv(q) {
		t.Fatal("INV result misreported")
	}
	// Architectural state: always ready, never INV.
	if !f.Ready(None) || f.Inv(None) {
		t.Fatal("None misreported")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	f := New("int", 2)
	p, _ := f.Alloc(0)
	f.Release(p)
	// p freed; a second Release must panic (either via state() on the freed
	// register or the dead check).
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	f.Release(p)
}

func TestDecRefBelowZeroPanics(t *testing.T) {
	f := New("int", 2)
	p, _ := f.Alloc(0)
	defer func() {
		if recover() == nil {
			t.Fatal("DecRef below zero did not panic")
		}
	}()
	f.DecRef(p)
}

func TestUseAfterFreePanics(t *testing.T) {
	f := New("int", 2)
	p, _ := f.Alloc(0)
	f.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("MarkReady on freed register did not panic")
		}
	}()
	f.MarkReady(p, false)
}

func TestOwner(t *testing.T) {
	f := New("int", 4)
	p, _ := f.Alloc(3)
	if f.Owner(p) != 3 {
		t.Fatalf("owner = %d", f.Owner(p))
	}
}

func TestInvariantsUnderRandomWorkload(t *testing.T) {
	// Property: drive the file with a random but well-formed sequence of
	// operations; invariants must hold throughout and everything must drain.
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		f := New("int", 16)
		type live struct {
			p        PhysReg
			refs     int
			released bool
			pinned   bool
		}
		var regs []*live
		for step := 0; step < 2000; step++ {
			switch r.Intn(6) {
			case 0, 1: // alloc
				if p, ok := f.Alloc(r.Intn(4)); ok {
					regs = append(regs, &live{p: p})
				}
			case 2: // add a reference
				if len(regs) > 0 {
					l := regs[r.Intn(len(regs))]
					f.IncRef(l.p)
					l.refs++
				}
			case 3: // drop a reference
				for _, l := range regs {
					if l.refs > 0 {
						f.DecRef(l.p)
						l.refs--
						break
					}
				}
			case 4: // release
				for _, l := range regs {
					if !l.released {
						f.Release(l.p)
						l.released = true
						break
					}
				}
			case 5: // pin/unpin toggle
				for _, l := range regs {
					if !l.released && !l.pinned {
						f.Pin(l.p)
						l.pinned = true
						break
					}
				}
			}
			// Drop fully-dead entries from our shadow list.
			kept := regs[:0]
			for _, l := range regs {
				if l.released && l.refs == 0 && !l.pinned {
					continue
				}
				kept = append(kept, l)
			}
			regs = kept
			if err := f.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		// Drain everything.
		for _, l := range regs {
			for l.refs > 0 {
				f.DecRef(l.p)
				l.refs--
			}
			if l.pinned {
				f.Unpin(l.p)
			}
			if !l.released {
				f.Release(l.p)
			}
		}
		return f.InUse() == 0 && f.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New("x", 0)
}

func TestRenameMapBasics(t *testing.T) {
	m := NewRenameMap()
	a := isa.IntReg(5)
	if m.Get(a) != None {
		t.Fatal("fresh map entry not None")
	}
	if m.Get(isa.RegNone) != None {
		t.Fatal("RegNone lookup not None")
	}
	prev := m.Set(a, 7)
	if prev != None || m.Get(a) != 7 {
		t.Fatal("Set/Get mismatch")
	}
	prev = m.Set(a, 9)
	if prev != 7 {
		t.Fatalf("prev = %d, want 7", prev)
	}
	if m.Live() != 1 {
		t.Fatalf("live = %d", m.Live())
	}
}

func TestRenameMapClearIfCurrent(t *testing.T) {
	m := NewRenameMap()
	a := isa.IntReg(3)
	m.Set(a, 4)
	if m.ClearIfCurrent(a, 9) {
		t.Fatal("cleared with stale register")
	}
	if !m.ClearIfCurrent(a, 4) {
		t.Fatal("did not clear with current register")
	}
	if m.Get(a) != None {
		t.Fatal("entry not cleared")
	}
}

func TestRenameMapSnapshotRestore(t *testing.T) {
	m := NewRenameMap()
	m.Set(isa.IntReg(1), 10)
	m.Set(isa.FPReg(2), 20)
	snap := m.Snapshot()
	m.Set(isa.IntReg(1), 11)
	m.Reset()
	m.Restore(snap)
	if m.Get(isa.IntReg(1)) != 10 || m.Get(isa.FPReg(2)) != 20 {
		t.Fatal("restore did not recover snapshot")
	}
}

func TestRenameMapReset(t *testing.T) {
	m := NewRenameMap()
	for i := 0; i < isa.NumIntArchRegs; i++ {
		m.Set(isa.IntReg(i), PhysReg(i))
	}
	m.Reset()
	if m.Live() != 0 {
		t.Fatal("reset left live mappings")
	}
}

func BenchmarkAllocRelease(b *testing.B) {
	f := New("int", 320)
	var ring [256]PhysReg
	n := 0
	for i := 0; i < b.N; i++ {
		if n == 256 || f.FreeCount() == 0 {
			for j := 0; j < n; j++ {
				f.Release(ring[j])
			}
			n = 0
		}
		p, _ := f.Alloc(i & 3)
		ring[n] = p
		n++
	}
}

func TestInvalidSentinel(t *testing.T) {
	f := New("int", 2)
	if !f.Ready(Invalid) || !f.Inv(Invalid) {
		t.Fatal("Invalid sentinel must be ready and INV")
	}
	if !f.Ready(None) || f.Inv(None) {
		t.Fatal("None sentinel must be ready and valid")
	}
}

func TestOwnerCount(t *testing.T) {
	f := New("int", 8)
	a, _ := f.Alloc(0)
	b, _ := f.Alloc(1)
	f.Alloc(1)
	if f.OwnerCount(0) != 1 || f.OwnerCount(1) != 2 {
		t.Fatalf("owner counts = %d/%d", f.OwnerCount(0), f.OwnerCount(1))
	}
	f.Release(a)
	f.Release(b)
	if f.OwnerCount(0) != 0 || f.OwnerCount(1) != 1 {
		t.Fatalf("post-release owner counts = %d/%d", f.OwnerCount(0), f.OwnerCount(1))
	}
}
