package experiments

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// TestBatchedMatchesScalar is the harness-level byte-identity guarantee
// for batching: every shipped example sweep, executed with the default
// batch width, serializes identically — in all four output formats — to
// the same sweep with batching disabled (BatchConfigs = 1). The batched
// session must also prove it actually took the batched path.
func TestBatchedMatchesScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	for _, path := range []string{
		"../../examples/scenarios/rob-sweep.json",
		"../../examples/scenarios/l2-latency.json",
	} {
		sp, err := scenario.Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		t.Run(sp.Name, func(t *testing.T) {
			o := tinyOptions()
			o.Workers = 4

			oScalar := o
			oScalar.BatchConfigs = 1
			scalar := mustSession(t, oScalar)
			want, err := scalar.RunScenario(sp)
			if err != nil {
				t.Fatal(err)
			}
			if b, _ := scalar.BatchStats(); b != 0 {
				t.Fatalf("BatchConfigs=1 session executed %d batches", b)
			}

			batched := mustSession(t, o)
			got, err := batched.RunScenario(sp)
			if err != nil {
				t.Fatal(err)
			}
			batches, cells := batched.BatchStats()
			if batches == 0 || cells <= batches {
				t.Errorf("batched session did not batch: %d batches over %d cells",
					batches, cells)
			}
			if !bytes.Equal(emitAll(t, want), emitAll(t, got)) {
				t.Errorf("batched sweep output diverges from scalar for %s", sp.Name)
			}
		})
	}
}

// TestBatchGroupsByTraceIdentity sweeps an axis that changes the trace
// identity itself (the generation seed). Configs with different
// identities cannot share a pass over one trace, so the scheduler must
// split them into per-identity batches — and the results must still be
// byte-identical to the unbatched run.
func TestBatchGroupsByTraceIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	rat, icount := "RaT", "ICOUNT"
	seedA, seedB := uint64(1), uint64(2)
	sp := &scenario.Spec{
		Name:      "seed-split",
		Workloads: scenario.WorkloadSpec{Groups: []string{"MEM2"}, PerGroup: 1},
		Axes: []scenario.Axis{
			{Name: "seed", Points: []scenario.Point{
				{Label: "s1", Delta: scenario.Delta{Seed: &seedA}},
				{Label: "s2", Delta: scenario.Delta{Seed: &seedB}},
			}},
			{Name: "policy", Points: []scenario.Point{
				{Label: icount, Delta: scenario.Delta{Policy: &icount}},
				{Label: rat, Delta: scenario.Delta{Policy: &rat}},
			}},
		},
		Metrics: []string{"throughput"},
	}

	o := tinyOptions()
	oScalar := o
	oScalar.BatchConfigs = 1
	want, err := mustSession(t, oScalar).RunScenario(sp)
	if err != nil {
		t.Fatal(err)
	}

	batched := mustSession(t, o)
	got, err := batched.RunScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(emitAll(t, want), emitAll(t, got)) {
		t.Error("mixed-identity sweep diverges between batched and scalar")
	}
	// 4 cells over 2 trace identities: the grid must dispatch as (at
	// least) one batch per identity, never one 4-cell batch.
	batches, cells := batched.BatchStats()
	if batches < 2 {
		t.Errorf("2 trace identities dispatched as %d batch(es)", batches)
	}
	if cells != 4 {
		t.Errorf("batched cells = %d, want 4", cells)
	}
	// Each identity generated its own traces, exactly once apiece.
	if st := batched.TraceStats(); st.Generated != 4 {
		t.Errorf("generated %d traces, want 4 (2 seeds x 2 contexts)", st.Generated)
	}
}

// TestCanceledBatchNeverSimulates extends the cancellation contract to
// batch dispatch: a multi-config batch queued under an already-dead
// context is abandoned cell by cell at pop time — no member simulates,
// every waiter gets the cancellation error, and the keys stay free for
// a live recompute.
func TestCanceledBatchNeverSimulates(t *testing.T) {
	o := tinyOptions()
	o.Workers = 1
	s := mustSession(t, o)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	w := workload.MustByGroup("MEM2")[0]
	var cfgs []core.Config
	for i := 0; i < 4; i++ {
		cfg := s.BaseConfig()
		cfg.Pipeline.ROBSize = 64 + 16*i
		cfgs = append(cfgs, cfg)
	}
	calls := s.StartRunBatchCtx(ctx, w, cfgs)
	if len(calls) != len(cfgs) {
		t.Fatalf("%d calls for %d configs", len(calls), len(cfgs))
	}
	for i, c := range calls {
		if _, err := c.Wait(); !errors.Is(err, context.Canceled) {
			t.Fatalf("cell %d: err = %v, want context.Canceled", i, err)
		}
	}
	st := waitDrained(t, s)
	if st.Canceled != 4 {
		t.Errorf("stats = %+v, want exactly 4 canceled", st)
	}
	if st.Entries != 0 {
		t.Errorf("stats = %+v, want abandoned entries unregistered", st)
	}
	if b, _ := s.BatchStats(); b != 0 {
		t.Errorf("canceled batch still executed (%d batches)", b)
	}

	// The same grid under a live context batches and completes normally.
	live := s.StartRunBatchCtx(context.Background(), w, cfgs)
	var results []*core.Result
	for i, c := range live {
		r, err := c.Wait()
		if err != nil {
			t.Fatalf("recompute cell %d: %v", i, err)
		}
		results = append(results, r)
	}
	if b, cells := s.BatchStats(); b != 1 || cells != 4 {
		t.Errorf("live recompute: %d batches / %d cells, want 1 / 4", b, cells)
	}
	// Spot-check against the scalar path on a fresh session.
	oneOff := mustSession(t, o)
	want, err := oneOff.RunConfig(w, cfgs[2])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[2], want) {
		t.Error("batched recompute diverges from a scalar run of the same config")
	}
}

// TestBatchDedupesJoinedConfigs: configs already cached or already in
// flight never re-enter a batch — the batch carries only the cells this
// dispatch created.
func TestBatchDedupesJoinedConfigs(t *testing.T) {
	o := tinyOptions()
	o.Workers = 1
	s := mustSession(t, o)
	w := workload.MustByGroup("MEM2")[0]

	cfgA := s.BaseConfig()
	cfgB := s.BaseConfig()
	cfgB.Pipeline.ROBSize = 128

	// Warm cfgA through the scalar path.
	if _, err := s.RunConfig(w, cfgA); err != nil {
		t.Fatal(err)
	}
	// A batch of {A, B, B}: A joins the cached entry, the duplicate B
	// joins B's own in-flight call. Only one new cell may dispatch.
	calls := s.StartRunBatchCtx(context.Background(), w,
		[]core.Config{cfgA, cfgB, cfgB})
	for i, c := range calls {
		if _, err := c.Wait(); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	waitDrained(t, s)
	if _, cells := s.BatchStats(); cells != 0 {
		t.Errorf("batched cells = %d, want 0 (singleton runs scalar)", cells)
	}
	if calls[1] != calls[2] {
		t.Error("duplicate configs did not share one call")
	}
	if st := s.CacheStats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (A once, B once)", st.Misses)
	}
}

// TestBatchedSweepSharesTraces: under batching, a sweep's trace tier
// serves every cell of a workload group from one generation per context,
// and the single-thread fairness references hit the traces the SMT runs
// already generated (context 0 has the same identity in both).
func TestBatchedSweepSharesTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	s := mustSession(t, tinyOptions())
	if _, err := s.RunScenario(sweepSpec()); err != nil {
		t.Fatal(err)
	}
	st := s.TraceStats()
	if st.Generated == 0 {
		t.Fatal("sweep generated no traces")
	}
	if st.Hits == 0 {
		t.Errorf("trace tier saw no hits across a %d-cell sweep: %+v", 8, st)
	}
	// Every distinct identity generated exactly once.
	if st.Generated != st.Misses {
		t.Errorf("generated %d != misses %d: some identity generated twice",
			st.Generated, st.Misses)
	}
}
