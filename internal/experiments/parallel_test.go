package experiments

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// TestParallelMatchesSequential asserts the harness's core determinism
// contract: a session dispatching onto four workers produces figures (and
// raw simulation Results) bit-identical to a one-worker session. Every
// simulation is deterministic given its configuration, and reductions
// always collect in a fixed order, so Workers must only change wall-clock
// time.
func TestParallelMatchesSequential(t *testing.T) {
	defer leakcheck.Check(t)
	if testing.Short() {
		t.Skip("harness run")
	}
	o := tinyOptions()
	o.Groups = []string{"MEM2"}

	oSeq := o
	oSeq.Workers = 1
	oPar := o
	oPar.Workers = 4
	seq, par := mustSession(t, oSeq), mustSession(t, oPar)

	sf, err := seq.Fig1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pf, err := par.Fig1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sf, pf) {
		t.Errorf("Fig1 diverges between Workers=1 and Workers=4:\nseq: %+v\npar: %+v", sf, pf)
	}

	// Fig5 reuses the cached ICOUNT/RaT runs plus the register occupancy
	// channel of each Result — a second reduction over the same raw data.
	sf5, err := seq.Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pf5, err := par.Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sf5, pf5) {
		t.Errorf("Fig5 diverges between Workers=1 and Workers=4:\nseq: %+v\npar: %+v", sf5, pf5)
	}

	// Compare one raw Result end to end (every counter, not just the
	// figure-level aggregates).
	w := workload.MustByGroup("MEM2")[0]
	sr, err := seq.RunConfig(w, seq.configFor(core.PolicyRaT, 0))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := par.RunConfig(w, par.configFor(core.PolicyRaT, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr, pr) {
		t.Errorf("raw Result diverges for %s:\nseq: %+v\npar: %+v", w.Name(), sr, pr)
	}
}

// sweepSpec is a small two-axis scenario used by the determinism tests;
// fairness pulls single-thread references through the cache as well.
func sweepSpec() *scenario.Spec {
	rat, icount := "RaT", "ICOUNT"
	rob128, rob256 := 128, 256
	return &scenario.Spec{
		Name:      "determinism-sweep",
		Workloads: scenario.WorkloadSpec{Groups: []string{"MEM2"}, PerGroup: 2},
		Axes: []scenario.Axis{
			{Name: "policy", Points: []scenario.Point{
				{Label: icount, Delta: scenario.Delta{Policy: &icount}},
				{Label: rat, Delta: scenario.Delta{Policy: &rat}},
			}},
			{Name: "rob", Points: []scenario.Point{
				{Label: "128", Delta: scenario.Delta{ROBSize: &rob128}},
				{Label: "256", Delta: scenario.Delta{ROBSize: &rob256}},
			}},
		},
		Metrics: []string{"throughput", "fairness"},
	}
}

// emitAll renders a result set in every machine format, concatenated.
func emitAll(t *testing.T, rs *scenario.ResultSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, format := range []string{"ndjson", "json", "csv", "table"} {
		if err := rs.Emit(&buf, format); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestScenarioDeterministicAcrossWorkers extends the determinism
// contract to the scenario engine's structured output: a ResultSet (and
// every serialization of it — the bytes an smtsimd client receives) is
// identical for Workers=1 and Workers=GOMAXPROCS.
func TestScenarioDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	o := tinyOptions()
	oSeq := o
	oSeq.Workers = 1
	oPar := o
	oPar.Workers = runtime.GOMAXPROCS(0)

	seqRS, err := mustSession(t, oSeq).RunScenario(sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	parRS, err := mustSession(t, oPar).RunScenario(sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRS.Rows, parRS.Rows) {
		t.Errorf("ResultSet rows diverge between Workers=1 and Workers=%d", oPar.Workers)
	}
	seq, par := emitAll(t, seqRS), emitAll(t, parRS)
	if !bytes.Equal(seq, par) {
		t.Errorf("serialized output diverges between Workers=1 and Workers=%d:\nseq:\n%s\npar:\n%s",
			oPar.Workers, seq, par)
	}
}

// TestEvictionMidSweepDeterminism runs the same sweep on a session whose
// cache bound is far below the sweep's working set, so completed entries
// are evicted while later cells (and the fairness references re-reading
// shared configurations) are still in flight. Eviction must only cost
// recomputation: the output stays byte-identical to an unbounded run,
// and the stats prove the eviction path actually executed mid-sweep.
func TestEvictionMidSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	o := tinyOptions()
	o.Workers = 4

	unbounded := mustSession(t, o)
	want, err := unbounded.RunScenario(sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := unbounded.CacheStats(); st.Evictions != 0 {
		t.Fatalf("unbounded session evicted: %+v", st)
	}

	oBound := o
	oBound.CacheEntries = 2
	bounded := mustSession(t, oBound)
	got, err := bounded.RunScenario(sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := bounded.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("2-entry bound produced no evictions mid-sweep: %+v", st)
	}
	if st.Entries > 2+st.InFlight {
		t.Errorf("cache exceeded its bound at rest: %+v", st)
	}
	if !bytes.Equal(emitAll(t, want), emitAll(t, got)) {
		t.Error("bounded-cache sweep output diverges from unbounded sweep")
	}

	// A second pass over the evicted grid recomputes (misses grow) but
	// still reproduces the identical bytes.
	again, err := bounded.RunScenario(sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(emitAll(t, want), emitAll(t, again)) {
		t.Error("post-eviction recomputation diverges")
	}
	if st2 := bounded.CacheStats(); st2.Misses <= st.Misses {
		t.Errorf("second sweep over a 2-entry cache added no misses: %+v -> %+v", st, st2)
	}
}

// TestSessionSharesRunsAcrossConcurrentFigures checks the singleflight
// property under concurrency: figures requested from multiple goroutines
// still simulate each (workload, policy) point exactly once.
func TestSessionSharesRunsAcrossConcurrentFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	o := tinyOptions()
	o.Groups = []string{"MEM2"}
	o.Workers = 4
	s := mustSession(t, o)

	errs := make(chan error, 2)
	go func() { _, err := s.Fig1(context.Background()); errs <- err }()
	go func() { _, err := s.Fig3(context.Background()); errs <- err }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// Fig1 needs ICOUNT/STALL/FLUSH/RaT; Fig3 adds DCRA and HillClimbing:
	// 6 policies on 1 workload = 6 runs, shared, not 4+6. Fig1's fairness
	// metric adds one single-thread reference per benchmark (the combos
	// differ only in policy, so all four collapse onto one ICOUNT
	// reference config): 2 more entries for the 2-thread workload.
	if n := s.cache.Len(); n != 8 {
		t.Errorf("cache holds %d entries, want 8 (6 shared runs + 2 references)", n)
	}
}
