package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestParallelMatchesSequential asserts the harness's core determinism
// contract: a session dispatching onto four workers produces figures (and
// raw simulation Results) bit-identical to a one-worker session. Every
// simulation is deterministic given its configuration, and reductions
// always collect in a fixed order, so Workers must only change wall-clock
// time.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	o := tinyOptions()
	o.Groups = []string{"MEM2"}

	oSeq := o
	oSeq.Workers = 1
	oPar := o
	oPar.Workers = 4
	seq, par := mustSession(t, oSeq), mustSession(t, oPar)

	sf, err := seq.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	pf, err := par.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sf, pf) {
		t.Errorf("Fig1 diverges between Workers=1 and Workers=4:\nseq: %+v\npar: %+v", sf, pf)
	}

	// Fig5 reuses the cached ICOUNT/RaT runs plus the register occupancy
	// channel of each Result — a second reduction over the same raw data.
	sf5, err := seq.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	pf5, err := par.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sf5, pf5) {
		t.Errorf("Fig5 diverges between Workers=1 and Workers=4:\nseq: %+v\npar: %+v", sf5, pf5)
	}

	// Compare one raw Result end to end (every counter, not just the
	// figure-level aggregates).
	w := workload.MustByGroup("MEM2")[0]
	sr, err := seq.run(w, core.PolicyRaT, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := par.run(w, core.PolicyRaT, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr, pr) {
		t.Errorf("raw Result diverges for %s:\nseq: %+v\npar: %+v", w.Name(), sr, pr)
	}
}

// TestSessionSharesRunsAcrossConcurrentFigures checks the singleflight
// property under concurrency: figures requested from multiple goroutines
// still simulate each (workload, policy) point exactly once.
func TestSessionSharesRunsAcrossConcurrentFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	o := tinyOptions()
	o.Groups = []string{"MEM2"}
	o.Workers = 4
	s := mustSession(t, o)

	errs := make(chan error, 2)
	go func() { _, err := s.Fig1(); errs <- err }()
	go func() { _, err := s.Fig3(); errs <- err }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// Fig1 needs ICOUNT/STALL/FLUSH/RaT; Fig3 adds DCRA and HillClimbing:
	// 6 policies on 1 workload = 6 runs, shared, not 4+6. Fig1's fairness
	// metric adds one single-thread reference per benchmark (the combos
	// differ only in policy, so all four collapse onto one ICOUNT
	// reference config): 2 more entries for the 2-thread workload.
	if n := s.cache.Len(); n != 8 {
		t.Errorf("cache holds %d entries, want 8 (6 shared runs + 2 references)", n)
	}
}
