package experiments

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the figure golden files")

// goldenOptions is the fixed configuration the figure goldens were
// captured with. It must never change: the goldens prove the scenario
// refactor preserved each figure's text output bit for bit.
func goldenOptions() Options {
	o := Quick()
	o.TraceLen = 4_000
	o.PerGroup = 1
	o.Groups = []string{"MIX2", "MEM2"}
	o.RegSizes = []int{64, 320}
	return o
}

// TestFiguresGolden locks the rendered text of every figure (and both
// tables) against golden files. Run with -update to regenerate after an
// intentional output change.
func TestFiguresGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	s := mustSession(t, goldenOptions())
	figs := []struct {
		name   string
		render func() (string, error)
	}{
		{"table1", func() (string, error) { return Table1(), nil }},
		{"table2", func() (string, error) { return Table2(), nil }},
		{"fig1", func() (string, error) { f, err := s.Fig1(context.Background()); return stringify(f, err) }},
		{"fig2", func() (string, error) { f, err := s.Fig2(context.Background()); return stringify(f, err) }},
		{"fig3", func() (string, error) { f, err := s.Fig3(context.Background()); return stringify(f, err) }},
		{"fig4", func() (string, error) { f, err := s.Fig4(context.Background()); return stringify(f, err) }},
		{"fig5", func() (string, error) { f, err := s.Fig5(context.Background()); return stringify(f, err) }},
		{"fig6", func() (string, error) { f, err := s.Fig6(context.Background()); return stringify(f, err) }},
	}
	for _, fig := range figs {
		t.Run(fig.name, func(t *testing.T) {
			got, err := fig.render()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", fig.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", fig.name, got, want)
			}
		})
	}
}

func stringify(f fmt.Stringer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return f.String(), nil
}
