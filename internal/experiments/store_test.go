package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/workload"
)

// storeOptions is the smallest session that exercises the disk tier.
func storeOptions(dir string) Options {
	o := Default()
	o.TraceLen = 1500
	o.MaxCycles = 2_000_000
	o.Workers = 2
	o.StoreDir = dir
	return o
}

// storeSpec is a 1×2 sweep, small enough to run twice in a test.
var storeSpec = &scenario.Spec{
	Name:      "store-test",
	Workloads: scenario.WorkloadSpec{Adhoc: []string{"art+mcf"}},
	Axes: []scenario.Axis{{Name: "rob", Points: []scenario.Point{
		{Label: "64", Delta: scenario.Delta{ROBSize: intp(64)}},
		{Label: "128", Delta: scenario.Delta{ROBSize: intp(128)}},
	}}},
	Metrics: []string{"throughput", "l2mpki"},
}

func intp(v int) *int { return &v }

// TestStorePersistsAcrossSessions is the warm-restart contract at the
// session layer: a second session over the same store directory serves a
// previously-run sweep entirely from disk — byte-identical output, zero
// simulations (every memory miss becomes a disk hit).
func TestStorePersistsAcrossSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	dir := t.TempDir()

	cold := mustSession(t, storeOptions(dir))
	rs1, err := cold.RunScenarioCtx(context.Background(), storeSpec)
	if err != nil {
		t.Fatal(err)
	}
	st := cold.StoreStats()
	if st.Hits != 0 || st.Misses == 0 || st.Files == 0 || st.Bytes == 0 {
		t.Fatalf("cold session store stats = %+v, want only misses and a populated store", st)
	}
	if st.WriteErrors != 0 {
		t.Fatalf("cold session write errors: %+v", st)
	}

	// "Restart": a fresh session (empty memory cache) on the same dir.
	warm := mustSession(t, storeOptions(dir))
	rs2, err := warm.RunScenarioCtx(context.Background(), storeSpec)
	if err != nil {
		t.Fatal(err)
	}
	st = warm.StoreStats()
	if st.Misses != 0 {
		t.Errorf("warm session simulated %d cells, want 0 (all from disk): %+v", st.Misses, st)
	}
	if st.Hits == 0 {
		t.Errorf("warm session had no disk hits: %+v", st)
	}
	if !reflect.DeepEqual(rs1.Rows, rs2.Rows) {
		t.Errorf("warm rows diverge from cold rows:\ncold: %+v\nwarm: %+v", rs1.Rows, rs2.Rows)
	}
	for _, format := range []string{"table", "json", "csv", "ndjson"} {
		var a, b bytes.Buffer
		if err := rs1.Emit(&a, format); err != nil {
			t.Fatal(err)
		}
		if err := rs2.Emit(&b, format); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s output differs across a store-backed restart:\ncold:\n%s\nwarm:\n%s",
				format, a.Bytes(), b.Bytes())
		}
	}
}

// TestStoreCorruptionRecomputes: a session facing a damaged store entry
// silently recomputes the same result and heals the entry.
func TestStoreCorruptionRecomputes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	dir := t.TempDir()
	w := workload.Workload{Group: "AD", Benchmarks: []string{"art", "mcf"}}

	cold := mustSession(t, storeOptions(dir))
	want, err := cold.RunConfig(w, cold.BaseConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Truncate every stored entry.
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		path := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	warm := mustSession(t, storeOptions(dir))
	got, err := warm.RunConfig(w, warm.BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("recomputed result differs from original:\nwant: %+v\n got: %+v", want, got)
	}
	st := warm.StoreStats()
	if st.Misses == 0 || st.Hits != 0 {
		t.Errorf("corrupt entry did not read as a miss: %+v", st)
	}

	// The rewrite healed the store: a third session hits.
	healed := mustSession(t, storeOptions(dir))
	if _, err := healed.RunConfig(w, healed.BaseConfig()); err != nil {
		t.Fatal(err)
	}
	if st := healed.StoreStats(); st.Hits == 0 || st.Misses != 0 {
		t.Errorf("healed entry did not serve a hit: %+v", st)
	}
}

// TestStorelessSessionUnchanged: sessions without StoreDir report zero
// store stats and never touch disk.
func TestStorelessSessionUnchanged(t *testing.T) {
	s := mustSession(t, tinyOptions())
	if st := s.StoreStats(); st != (s.StoreStats()) || st.Hits != 0 || st.Files != 0 {
		t.Errorf("storeless session store stats = %+v, want zero", st)
	}
}
