package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig4Result holds Figure 4: the decomposition of RaT's benefit into
// prefetching, resource availability, and speculative-work overhead (§6.1).
type Fig4Result struct {
	Groups []string
	// Prefetching is RaT's improvement over RaT-without-prefetching —
	// the benefit attributable to the prefetches themselves, measured with
	// identical runahead periods per the paper's methodology.
	Prefetching map[string]float64
	// ResourceAvailability is the improvement of RaT-without-fetch (enter
	// runahead, release resources, fetch nothing new) over ICOUNT — the
	// benefit of early resource release alone.
	ResourceAvailability map[string]float64
	// Overhead is the worst-case interference: how much the *other*
	// threads slow down when a thread runs ahead without prefetching
	// (useless speculative work only). Positive = degradation.
	Overhead map[string]float64
}

// Fig4 reproduces Figure 4's three experiments.
func (s *Session) Fig4(ctx context.Context) (*Fig4Result, error) {
	// Axis order fixes the combo index of each policy below.
	pols := []core.PolicyKind{core.PolicyRaT, core.PolicyRaTNoPrefetch,
		core.PolicyRaTNoFetch, core.PolicyICount}
	const iRat, iNoPf, iNoFetch, iIC = 0, 1, 2, 3
	rs, err := s.RunScenarioCtx(ctx, s.figureSpec("Figure 4", []string{"throughput"}, policyAxis(pols)))
	if err != nil {
		return nil, err
	}
	f := &Fig4Result{
		Groups:               s.opt.groups(),
		Prefetching:          map[string]float64{},
		ResourceAvailability: map[string]float64{},
		Overhead:             map[string]float64{},
	}
	for _, g := range f.Groups {
		var pref, avail, over []float64
		groupRows(rs, g, func(wi int, w workload.Workload) {
			tRat := rs.Value(wi, iRat, 0)
			tNoPf := rs.Value(wi, iNoPf, 0)
			tNoFetch := rs.Value(wi, iNoFetch, 0)
			tIC := rs.Value(wi, iIC, 0)
			if tNoPf > 0 {
				pref = append(pref, tRat/tNoPf-1)
			}
			if tIC > 0 {
				avail = append(avail, tNoFetch/tIC-1)
			}
			// Overhead: degradation of the non-MEM co-runners under
			// useless runahead (no prefetching) vs ICOUNT.
			icount, noPf := rs.Result(wi, iIC), rs.Result(wi, iNoPf)
			for i := range w.Benchmarks {
				//lint:panicfree static call site: w comes from the compiled-in Table 2 suite, whose every benchmark is in the trace table, so the lookup cannot fail
				if trace.MustLookup(w.Benchmarks[i]).Class == trace.ClassMEM {
					continue
				}
				a, b := icount.Threads[i].IPC, noPf.Threads[i].IPC
				if a > 0 {
					over = append(over, 1-b/a)
				}
			}
		})
		f.Prefetching[g] = stats.Mean(pref)
		f.ResourceAvailability[g] = stats.Mean(avail)
		f.Overhead[g] = stats.Mean(over)
	}
	return f, nil
}

// String renders Figure 4.
func (f *Fig4Result) String() string {
	tb := report.NewTable("Figure 4: sources of improvement of RaT",
		"workload", "prefetching", "resource-avail", "overhead")
	for _, g := range f.Groups {
		tb.AddRow(g,
			report.Pct(f.Prefetching[g]),
			report.Pct(f.ResourceAvailability[g]),
			report.Pct(f.Overhead[g]))
	}
	return tb.String()
}

// Fig5Result holds Figure 5: average allocated physical registers per
// cycle, normal execution versus runahead mode.
type Fig5Result struct {
	Groups []string
	// Normal is the per-cycle register occupancy of normal-mode execution
	// (measured on the ICOUNT baseline, where every cycle is normal mode).
	Normal map[string]float64
	// Runahead is the occupancy during runahead-mode cycles on the RaT
	// machine — the "light consumer" the paper's §6.2 quantifies.
	Runahead map[string]float64
}

// Fig5 reproduces Figure 5.
func (s *Session) Fig5(ctx context.Context) (*Fig5Result, error) {
	const iIC, iRat = 0, 1
	rs, err := s.RunScenarioCtx(ctx, s.figureSpec("Figure 5", []string{"throughput"},
		policyAxis([]core.PolicyKind{core.PolicyICount, core.PolicyRaT})))
	if err != nil {
		return nil, err
	}
	f := &Fig5Result{Groups: s.opt.groups(), Normal: map[string]float64{}, Runahead: map[string]float64{}}
	for _, g := range f.Groups {
		var normal, ra []float64
		groupRows(rs, g, func(wi int, w workload.Workload) {
			icount, rat := rs.Result(wi, iIC), rs.Result(wi, iRat)
			for i := range w.Benchmarks {
				normal = append(normal, icount.Threads[i].RegsNormal)
				if rat.Threads[i].CyclesInRunahead > 0 {
					ra = append(ra, rat.Threads[i].RegsRunahead)
				}
			}
		})
		f.Normal[g] = stats.Mean(normal)
		f.Runahead[g] = stats.Mean(ra)
	}
	return f, nil
}

// String renders Figure 5.
func (f *Fig5Result) String() string {
	tb := report.NewTable("Figure 5: avg physical registers held per thread per cycle",
		"workload", "normal mode", "runahead mode")
	for _, g := range f.Groups {
		tb.AddRow(g, report.F(f.Normal[g]), report.F(f.Runahead[g]))
	}
	return tb.String()
}

// Fig6Result holds Figure 6: throughput as a function of physical register
// file size, FLUSH versus RaT.
type Fig6Result struct {
	Groups []string
	Sizes  []int
	// Throughput[group][size][policy].
	Throughput map[string]map[int]map[core.PolicyKind]float64
}

// Fig6 reproduces Figure 6, sweeping the register file from 64 to 320
// entries per file — a two-axis scenario (regs × policy). Points whose
// register size matches Table 1 share their simulations with the other
// figures: the cache keys by full configuration, not by which figure
// asked.
func (s *Session) Fig6(ctx context.Context) (*Fig6Result, error) {
	pols := []core.PolicyKind{core.PolicyFLUSH, core.PolicyRaT}
	rs, err := s.RunScenarioCtx(ctx, s.figureSpec("Figure 6", []string{"throughput"},
		regsAxis(s.opt.RegSizes), policyAxis(pols)))
	if err != nil {
		return nil, err
	}
	f := &Fig6Result{
		Groups:     s.opt.groups(),
		Sizes:      s.opt.RegSizes,
		Throughput: map[string]map[int]map[core.PolicyKind]float64{},
	}
	for _, g := range f.Groups {
		f.Throughput[g] = map[int]map[core.PolicyKind]float64{}
		for si, size := range f.Sizes {
			f.Throughput[g][size] = map[core.PolicyKind]float64{}
			for pi, p := range pols {
				ci := si*len(pols) + pi // regs axis is slowest-varying
				var thrus []float64
				groupRows(rs, g, func(wi int, _ workload.Workload) {
					thrus = append(thrus, rs.Value(wi, ci, 0))
				})
				f.Throughput[g][size][p] = stats.Mean(thrus)
			}
		}
	}
	return f, nil
}

// String renders Figure 6.
func (f *Fig6Result) String() string {
	var b strings.Builder
	cols := []string{"workload"}
	for _, size := range f.Sizes {
		cols = append(cols, fmt.Sprintf("FLUSH@%d", size), fmt.Sprintf("RaT@%d", size))
	}
	tb := report.NewTable("Figure 6: throughput vs physical register file size", cols...)
	for _, g := range f.Groups {
		row := []string{g}
		for _, size := range f.Sizes {
			row = append(row,
				report.F(f.Throughput[g][size][core.PolicyFLUSH]),
				report.F(f.Throughput[g][size][core.PolicyRaT]))
		}
		tb.AddRow(row...)
	}
	b.WriteString(tb.String())
	return b.String()
}

// Table1 renders the baseline configuration (Table 1 of the paper) from
// the live defaults, so the printed table can never drift from the code.
func Table1() string {
	cfg := core.DefaultConfig().Pipeline
	tb := report.NewTable("Table 1: SMT processor baseline configuration", "parameter", "value")
	tb.AddRow("processor width", fmt.Sprintf("%d way", cfg.Width))
	tb.AddRow("fetch threads/cycle", fmt.Sprintf("%d", cfg.FetchThreads))
	tb.AddRow("reorder buffer", fmt.Sprintf("%d shared entries", cfg.ROBSize))
	tb.AddRow("INT/FP registers", fmt.Sprintf("%d / %d", cfg.IntRegs, cfg.FPRegs))
	tb.AddRow("INT/FP/LS issue queues", fmt.Sprintf("%d / %d / %d", cfg.IntIQ, cfg.FPIQ, cfg.LSIQ))
	tb.AddRow("INT/FP/LdSt units", fmt.Sprintf("%d / %d / %d", cfg.IntFU, cfg.FPFU, cfg.LSFU))
	tb.AddRow("branch predictor", fmt.Sprintf("perceptron, %d rows", cfg.BranchPredRows))
	tb.AddRow("icache", fmt.Sprintf("%dKB, %d-way, %d cyc", cfg.Mem.IL1.SizeBytes>>10, cfg.Mem.IL1.Ways, cfg.Mem.IL1.Latency))
	tb.AddRow("dcache", fmt.Sprintf("%dKB, %d-way, %d cyc", cfg.Mem.DL1.SizeBytes>>10, cfg.Mem.DL1.Ways, cfg.Mem.DL1.Latency))
	tb.AddRow("L2 cache", fmt.Sprintf("%dMB, %d-way, %d cyc", cfg.Mem.L2.SizeBytes>>20, cfg.Mem.L2.Ways, cfg.Mem.L2.Latency))
	tb.AddRow("line size", fmt.Sprintf("%d bytes", cfg.Mem.L2.LineBytes))
	tb.AddRow("main memory latency", fmt.Sprintf("%d cycles", cfg.Mem.MemLatency))
	return tb.String()
}

// Table2 renders the workload suite.
func Table2() string {
	tb := report.NewTable("Table 2: SMT simulation workloads", "group", "workloads")
	for _, g := range workload.Groups() {
		var names []string
		//lint:panicfree static call site: g ranges over workload.Groups(), the same compiled-in table MustByGroup indexes
		for _, w := range workload.MustByGroup(g) {
			names = append(names, strings.Join(w.Benchmarks, ","))
		}
		tb.AddRow(g, strings.Join(names, "  "))
	}
	return tb.String()
}
