package experiments

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/simcache"
	"repro/internal/workload"
)

// waitDrained polls until the session's cache reports no in-flight
// calls, failing the test if the pool does not settle.
func waitDrained(t *testing.T, s *Session) simcache.Stats {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.CacheStats()
		if st.InFlight == 0 {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never drained: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCanceledCellsNeverSimulate pins the pool's cancellation contract
// deterministically: cells queued under an already-dead context are
// abandoned by the worker un-simulated, their waiters fail with the
// cancellation error instead of hanging, and the keys become free to
// recompute.
func TestCanceledCellsNeverSimulate(t *testing.T) {
	defer leakcheck.Check(t)
	o := tinyOptions()
	o.Workers = 1
	s := mustSession(t, o)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	w := workload.MustByGroup("MEM2")[0]
	var calls []*simcache.Call[*core.Result]
	var cfgs []core.Config
	for i := 0; i < 4; i++ {
		cfg := s.BaseConfig()
		cfg.Pipeline.ROBSize = 64 + 16*i
		cfgs = append(cfgs, cfg)
		calls = append(calls, s.StartRunCtx(ctx, w, cfg))
	}
	for i, c := range calls {
		if _, err := c.Wait(); !errors.Is(err, context.Canceled) {
			t.Fatalf("cell %d: err = %v, want context.Canceled", i, err)
		}
		if _, err := c.WaitCtx(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("cell %d WaitCtx: err = %v, want context.Canceled", i, err)
		}
	}
	st := waitDrained(t, s)
	if st.Canceled != 4 {
		t.Errorf("stats = %+v, want exactly 4 canceled (no cell simulated)", st)
	}
	if st.Entries != 0 {
		t.Errorf("stats = %+v, want abandoned entries unregistered", st)
	}

	// The same cells requested with a live context now simulate normally:
	// abandonment forgot the keys, it did not poison them.
	if _, err := s.RunConfigCtx(context.Background(), w, cfgs[0]); err != nil {
		t.Fatalf("recompute after abandonment: %v", err)
	}
}

// TestCanceledScenarioLeavesSessionDeterministic: a sweep canceled
// before it starts returns the context error without dispatching
// anything, and the session then serves the full sweep with output
// byte-identical to a fresh session — cancellation cannot change what
// anyone else computes.
func TestCanceledScenarioLeavesSessionDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	o := tinyOptions()
	o.Workers = 4
	s := mustSession(t, o)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunScenarioCtx(ctx, sweepSpec()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep err = %v, want context.Canceled", err)
	}
	if st := s.CacheStats(); st.Misses != 0 {
		t.Fatalf("canceled sweep dispatched %d cells, want 0", st.Misses)
	}

	got, err := s.RunScenario(sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	want, err := mustSession(t, o).RunScenario(sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(emitAll(t, got), emitAll(t, want)) {
		t.Error("post-cancellation sweep diverges from a fresh session's")
	}
}

// TestCancelMidSweepDrains cancels a sweep while its cells are queued
// and running on a one-worker pool: the wait aborts promptly with the
// context error, whatever was running finishes into the cache, and the
// queue drains without simulating every cell (the grid is far larger
// than what can start during the cancellation window).
func TestCancelMidSweepDrains(t *testing.T) {
	defer leakcheck.Check(t)
	if testing.Short() {
		t.Skip("harness run")
	}
	o := tinyOptions()
	o.Workers = 1
	s := mustSession(t, o)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.RunScenarioCtx(ctx, sweepSpec())
		done <- err
	}()
	// Let the sweep dispatch and the worker pick up a first cell, then
	// pull the plug.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("sweep err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled sweep did not return")
	}
	st := waitDrained(t, s)
	// 2 workloads x 4 combos + references: the one-worker pool cannot
	// have started them all within the cancellation window, so abandoned
	// cells must exist unless the machine raced through the whole grid.
	if st.Canceled == 0 && st.Misses >= 10 {
		t.Errorf("no cell was abandoned and all %d dispatched cells ran", st.Misses)
	}
}
