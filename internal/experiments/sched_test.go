package experiments

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestSchedulerOptionValidates(t *testing.T) {
	o := tinyOptions()
	o.Scheduler = "bogus"
	if _, err := NewSession(o); err == nil {
		t.Fatal("NewSession accepted unknown scheduler policy")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error %q does not name the bad policy", err)
	}
	for _, policy := range append(sched.Names(), "") {
		o.Scheduler = policy
		if _, err := NewSession(o); err != nil {
			t.Errorf("NewSession(%q): %v", policy, err)
		}
	}
}

// TestFairMatchesFIFO extends the determinism contract to the scheduling
// policy: the fair scheduler reorders which queued job a worker pops
// next, and nothing else, so a sweep's bytes are identical across
// policies and worker counts — with or without a requester identity on
// the context.
func TestFairMatchesFIFO(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	o := tinyOptions()
	run := func(policy string, workers int, ctx context.Context) []byte {
		oo := o
		oo.Scheduler = policy
		oo.Workers = workers
		rs, err := mustSession(t, oo).RunScenarioCtx(ctx, sweepSpec())
		if err != nil {
			t.Fatal(err)
		}
		return emitAll(t, rs)
	}
	par := runtime.GOMAXPROCS(0)
	want := run(sched.PolicyFIFO, 1, context.Background())
	for _, tc := range []struct {
		name    string
		policy  string
		workers int
		ctx     context.Context
	}{
		{"fifo-parallel", sched.PolicyFIFO, par, context.Background()},
		{"fair-sequential", sched.PolicyFair, 1, context.Background()},
		{"fair-parallel", sched.PolicyFair, par, context.Background()},
		{"fair-attributed", sched.PolicyFair, par,
			sched.WithRequester(context.Background(), "client-a")},
	} {
		if got := run(tc.policy, tc.workers, tc.ctx); !bytes.Equal(got, want) {
			t.Errorf("%s: sweep bytes diverge from fifo/Workers=1", tc.name)
		}
	}
}

// TestStarvationRegression pins the bug this PR fixes, both ways: a
// one-cell request enqueued behind a 16-cell sweep on a one-worker pool
// is served as soon as the in-flight batch completes under the fair
// scheduler (long before the sweep drains), and dead last under FIFO.
func TestStarvationRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	const bigCells, batch = 16, 8
	for _, tc := range []struct {
		policy  string
		starved bool
	}{
		{sched.PolicyFair, false},
		{sched.PolicyFIFO, true},
	} {
		t.Run(tc.policy, func(t *testing.T) {
			o := tinyOptions()
			o.Workers = 1
			o.BatchConfigs = batch
			o.Scheduler = tc.policy
			s := mustSession(t, o)
			w := workload.MustByGroup("MEM2")[0]

			// The sweep: 16 cells sharing one trace identity, queued as
			// two 8-cell jobs. The single worker starts on the first job
			// immediately.
			bigCtx := sched.WithRequester(context.Background(), "big")
			cfgs := make([]core.Config, bigCells)
			for i := range cfgs {
				cfgs[i] = s.BaseConfig()
				cfgs[i].Pipeline.ROBSize = 64 + 8*i
			}
			bigCalls := s.StartRunBatchCtx(bigCtx, w, cfgs)

			// The probe: one cell from another client, queued behind the
			// entire sweep.
			smallCtx := sched.WithRequester(context.Background(), "small")
			smallCfg := s.BaseConfig()
			smallCfg.Pipeline.ROBSize = 500
			smallCall := s.StartRunCtx(smallCtx, w, smallCfg)

			if _, err := smallCall.Wait(); err != nil {
				t.Fatal(err)
			}
			// At the instant the probe completes, the sweep's second job
			// (8 cells) is still pending under fair — queued or just
			// popped, but nowhere near simulated — and fully drained
			// under FIFO. On a one-worker pool, pop order is completion
			// order, so an empty queue at probe completion proves every
			// sweep cell finished first.
			snap := s.SchedStats()
			pending := snap.QueuedCells + snap.InServiceCells
			if tc.starved {
				if snap.QueuedCells != 0 {
					t.Errorf("fifo: %d cells still queued after the probe completed, want 0 (probe must be served last)", snap.QueuedCells)
				}
			} else {
				if pending < batch {
					t.Errorf("fair: only %d sweep cells pending at probe completion, want >= %d (probe must preempt the backlog)", pending, batch)
				}
				if _, ok := snap.Clients["big"]; !ok {
					t.Errorf("fair: pending sweep not attributed to its requester: %+v", snap.Clients)
				}
			}

			for i, c := range bigCalls {
				if _, err := c.Wait(); err != nil {
					t.Fatalf("sweep cell %d: %v", i, err)
				}
			}
			if snap := s.SchedStats(); snap.QueuedCells != 0 || len(snap.Clients) != 0 {
				waitDrained(t, s)
				if snap = s.SchedStats(); snap.QueuedCells != 0 || len(snap.Clients) != 0 {
					t.Errorf("drained scheduler not empty: %+v", snap)
				}
			}

			// Scheduling must not change answers: every cell matches a
			// fresh sequential FIFO session byte-for-byte (DeepEqual on
			// the raw results via the deterministic re-run).
			ref := mustSession(t, func() Options {
				oo := o
				oo.Scheduler = sched.PolicyFIFO
				return oo
			}())
			wantRes, err := ref.RunConfig(w, smallCfg)
			if err != nil {
				t.Fatal(err)
			}
			gotRes, err := s.RunConfig(w, smallCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Errorf("probe result diverges across schedulers:\n got: %+v\nwant: %+v",
					gotRes, wantRes)
			}
		})
	}
}

// TestSchedStatsIdle: a fresh session reports an empty snapshot with the
// configured policy name.
func TestSchedStatsIdle(t *testing.T) {
	for _, policy := range sched.Names() {
		o := tinyOptions()
		o.Scheduler = policy
		s := mustSession(t, o)
		snap := s.SchedStats()
		if snap.Policy != policy {
			t.Errorf("policy = %q, want %q", snap.Policy, policy)
		}
		if snap.QueuedCells != 0 || snap.InServiceCells != 0 || len(snap.Clients) != 0 {
			t.Errorf("idle snapshot not empty: %+v", snap)
		}
	}
}
