package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

// tinyOptions keeps harness tests fast: one workload per group, short
// traces, two groups.
func tinyOptions() Options {
	o := Quick()
	o.TraceLen = 4_000
	o.PerGroup = 1
	o.Groups = []string{"MIX2", "MEM2"}
	o.RegSizes = []int{64, 320}
	return o
}

func TestTablesRender(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"512 shared entries", "320 / 320", "400 cycles", "perceptron"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2()
	for _, want := range []string{"ILP2", "MEM4", "art,mcf,swim,twolf"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, t2)
		}
	}
}

// mustSession builds a session or fails the test.
func mustSession(t *testing.T, o Options) *Session {
	t.Helper()
	s, err := NewSession(o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFig1ShapeAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	s := mustSession(t, tinyOptions())
	f, err := s.Fig1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Groups) != 2 || len(f.Policies) != 4 {
		t.Fatalf("figure shape: %d groups, %d policies", len(f.Groups), len(f.Policies))
	}
	for _, g := range f.Groups {
		for _, p := range f.Policies {
			if f.Throughput[g][p] <= 0 {
				t.Errorf("%s/%s throughput not positive", g, p)
			}
			if f.Fairness[g][p] <= 0 {
				t.Errorf("%s/%s fairness not positive", g, p)
			}
		}
	}
	out := f.String()
	for _, want := range []string{"Throughput", "Fairness", "MEM2", "RaT"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
	// The session must cache: a second Fig1 reuses every run.
	before := s.cache.Len()
	if _, err := s.Fig1(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.cache.Len() != before {
		t.Fatalf("cache grew on repeat: %d -> %d", before, s.cache.Len())
	}
}

func TestFig3Normalization(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	s := mustSession(t, tinyOptions())
	f, err := s.Fig3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range f.Groups {
		if ic := f.ED2[g][core.PolicyICount]; ic < 0.999 || ic > 1.001 {
			t.Errorf("%s: ICOUNT ED2 normalized to %v, want 1.0", g, ic)
		}
	}
}

func TestFig4Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	o := tinyOptions()
	o.Groups = []string{"MEM2"}
	s := mustSession(t, o)
	f, err := s.Fig4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if f.Prefetching["MEM2"] == 0 {
		t.Error("prefetching contribution exactly zero (suspicious)")
	}
	if !strings.Contains(f.String(), "prefetching") {
		t.Error("rendering missing column")
	}
}

func TestFig5RunaheadLighter(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	o := tinyOptions()
	o.Groups = []string{"MEM2"}
	s := mustSession(t, o)
	f, err := s.Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if f.Runahead["MEM2"] >= f.Normal["MEM2"] {
		t.Errorf("runahead occupancy (%.1f) not below normal (%.1f)",
			f.Runahead["MEM2"], f.Normal["MEM2"])
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	o := tinyOptions()
	o.Groups = []string{"MEM2"}
	s := mustSession(t, o)
	f, err := s.Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Throughput must not increase when the register file shrinks 320->64
	// (within noise), for either policy.
	for _, p := range []core.PolicyKind{core.PolicyFLUSH, core.PolicyRaT} {
		small := f.Throughput["MEM2"][64][p]
		big := f.Throughput["MEM2"][320][p]
		if small > 1.15*big {
			t.Errorf("%s: 64-reg throughput (%.3f) implausibly above 320-reg (%.3f)",
				p, small, big)
		}
	}
	if !strings.Contains(f.String(), "RaT@320") {
		t.Error("rendering missing column")
	}
}

func TestOptionsSelection(t *testing.T) {
	o := Options{}
	if got := len(o.groups()); got != 6 {
		t.Fatalf("default groups = %d", got)
	}
	o.Groups = []string{"MEM2"}
	if got := len(o.groups()); got != 1 {
		t.Fatalf("filtered groups = %d", got)
	}
}

// TestNewSessionValidatesGroups covers the former panic path: an unknown
// group name straight from a -groups flag must come back as an error
// listing the valid names.
func TestNewSessionValidatesGroups(t *testing.T) {
	o := Quick()
	o.Groups = []string{"MEM2", "NOPE"}
	if _, err := NewSession(o); err == nil {
		t.Fatal("unknown group accepted")
	} else if !strings.Contains(err.Error(), "ILP2") {
		t.Fatalf("error does not list valid groups: %v", err)
	}
}
