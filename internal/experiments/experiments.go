// Package experiments regenerates every table and figure of the paper's
// evaluation (§5–§6). Each FigN function declares the simulation grid it
// needs as a scenario.Spec (workload selection × policy/register axes),
// executes it through the scenario engine on the session's worker pool,
// and applies the figure's paper-specific reduction to the structured
// result. Sessions cache simulations by full machine configuration
// (core.Config.Canonical()), so figures that overlap — 1, 2 and 3 all
// need the ICOUNT and RaT runs, and Figure 6's 320-register points are
// the Table 1 machine — still simulate each distinct point exactly once.
//
// The harness is deliberately a library: cmd/experiments wraps it with
// flags (including -scenario for arbitrary JSON sweeps), bench_test.go
// wraps it with testing.B, and EXPERIMENTS.md quotes its output.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/resultstore"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/simcache"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// Options scales the harness.
type Options struct {
	// TraceLen is the per-thread trace length.
	TraceLen int
	// MaxCycles bounds each run.
	MaxCycles uint64
	// PerGroup limits workloads per Table 2 group (0 = all).
	PerGroup int
	// Groups restricts the groups (nil = all six).
	Groups []string
	// Seed decorrelates the whole experiment instance.
	Seed uint64
	// RegSizes is Figure 6's register file sweep.
	RegSizes []int
	// Workers bounds concurrent simulations (0 = GOMAXPROCS). Every
	// figure's independent workload×policy runs dispatch onto this pool;
	// results are identical to sequential execution (each simulation is
	// deterministic and reductions run in a fixed order), so Workers only
	// changes wall-clock time.
	Workers int
	// CacheEntries bounds the simulation result cache by entry count and
	// CacheBytes by approximate retained result bytes (each 0 = unbounded,
	// the right default for one-shot figure regeneration where every run
	// may be re-read). Long-lived processes — the smtsimd daemon — set
	// them so arbitrary client sweeps cannot grow the process without
	// bound; in-flight simulations are never evicted, and eviction only
	// costs recomputation (results are deterministic), never correctness.
	CacheEntries int
	CacheBytes   int64
	// StoreDir, when non-empty, enables the persistent on-disk result
	// tier (internal/resultstore) beneath the in-memory cache: a memory
	// miss probes the store before simulating, and every completed
	// simulation is written behind the fulfilled result. Because each
	// simulation is a deterministic pure function of (workload, config),
	// a restarted process pointed at the same directory serves previous
	// sweeps without re-simulating, and several processes may share one
	// directory. StoreBytes bounds the store's on-disk footprint
	// (least-recently-accessed entries are deleted past it; 0 = unbounded).
	StoreDir   string
	StoreBytes int64
	// TraceDir, when non-empty, adds a persistent on-disk tier to the
	// session's trace store (internal/tracestore): generated traces are
	// written behind first use and served across restarts, with TraceBytes
	// bounding the directory (0 = unbounded). The in-memory trace tier is
	// always present and bounded by TraceCacheBytes (0 selects
	// tracestore.DefaultMemBytes).
	TraceDir        string
	TraceBytes      int64
	TraceCacheBytes int64
	// Scheduler selects the work-queue dispatch policy by name
	// (internal/sched): "fifo" is strict arrival order, "fair" (the
	// default, also chosen by "") interleaves queued jobs across active
	// requesters ICOUNT-style — the requester with the fewest grid cells
	// in service pops next, ties rotating round-robin — so a one-cell
	// request queued behind a max-size sweep is served at the next free
	// worker instead of after the whole sweep. Requesters are identified
	// by the context stamp sched.WithRequester (smtsimd stamps each HTTP
	// request; unstamped contexts share one anonymous bucket, where both
	// policies behave identically). Scheduling only reorders execution,
	// never results: outputs stay bit-identical under any policy.
	Scheduler string
	// BatchConfigs caps how many same-workload, same-trace-identity cells
	// one worker executes in a single pass over the shared traces (the
	// batched-config path; 0 selects the default, 1 disables batching).
	// Batched results are bit-identical to unbatched — each configuration
	// still runs on its own fully independent machine — so the knob only
	// trades worker-level parallelism against per-cell dispatch overhead.
	BatchConfigs int
}

// DefaultBatchConfigs is the batch cap when Options.BatchConfigs is zero:
// large enough that a policy sweep over one workload shares a pass, small
// enough that a grid still spreads across the worker pool.
const DefaultBatchConfigs = 8

// Default returns the full-suite options.
func Default() Options {
	return Options{
		TraceLen:  20_000,
		MaxCycles: 12_000_000,
		Seed:      1,
		RegSizes:  []int{64, 128, 192, 256, 320},
	}
}

// Quick returns reduced options for smoke runs and benchmarks.
func Quick() Options {
	o := Default()
	o.TraceLen = 8_000
	o.MaxCycles = 5_000_000
	o.PerGroup = 3
	o.RegSizes = []int{64, 192, 320}
	return o
}

// groups returns the selected group list.
func (o Options) groups() []string {
	if len(o.Groups) > 0 {
		return o.Groups
	}
	return workload.Groups()
}

// runKey identifies a cached simulation: a workload name plus the
// collision-free canonical encoding of the complete machine
// configuration. Any knob change — policy, register file, ROB, cache
// geometry, runahead tuning, seed — yields a distinct key, and any two
// requests describing the same machine share one simulation, whichever
// figure or scenario they came from.
type runKey struct {
	workload string
	config   string // core.Config.Canonical()
}

// Session shares simulation results and single-thread references across
// figures and scenarios. Independent runs execute on a bounded worker
// pool (Options.Workers); duplicate requests for one runKey share a
// single execution, singleflight-style. Errors memoize like results: a
// run's outcome is a pure function of its configuration, so retrying a
// failed key could never succeed.
//
// The pool is a work queue drained by at most Options.Workers
// goroutines, spawned on demand and exiting when the queue empties — a
// request for N cells costs N queue entries, not N parked goroutines,
// and an idle session holds no goroutines at all. The order workers pop
// jobs in is a pluggable policy (internal/sched, Options.Scheduler):
// FIFO, or the default ICOUNT-style fair interleaving across active
// requesters. Cancellation happens at the queue boundary: a cell whose
// interested requesters (the contexts passed to StartRunCtx) have all
// gone away by the time a worker pops it is abandoned, never simulated.
// A cell already running always finishes and populates the cache —
// results are deterministic and shared, so completing them is never
// wasted work.
//
// Session implements scenario.Runner, so scenario.Execute dispatches
// onto the same pool and cache the figures use.
type Session struct {
	opt    Options
	base   core.Config
	cache  *simcache.Cache[runKey, *core.Result]
	store  *resultstore.Store // nil unless Options.StoreDir is set
	traces *tracestore.Store
	batch  int

	// batches counts batched passes executed and batchedCells the cells
	// they carried; the difference from total cells is the scalar path.
	batches      atomic.Uint64
	batchedCells atomic.Uint64

	mu         sync.Mutex
	scheduler  sched.Scheduler[job] // jobs not yet picked up by a worker
	workers    int                  // live worker goroutines
	maxWorkers int
}

// cell is one registered simulation: the call its requesters hold plus
// the configuration that computes it.
type cell struct {
	key  runKey
	call *simcache.Call[*core.Result]
	cfg  core.Config
}

// job is one queued unit of work: cells of a single workload that share
// one trace identity, executed by one worker in a single pass over the
// shared traces (or individually, for a singleton). Cells whose
// requesters have all canceled by pick-up time are abandoned one by one,
// so cancellation granularity is unchanged from single-cell jobs.
type job struct {
	w     workload.Workload
	cells []cell
}

// NewSession builds a session, validating the workload selection up
// front: an unknown group name (e.g. from a -groups flag) or a workload
// naming an unknown benchmark is reported here as an error listing the
// valid names, instead of panicking mid-figure.
func NewSession(opt Options) (*Session, error) {
	for _, g := range opt.groups() {
		ws, err := workload.ByGroup(g)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		for _, w := range ws {
			if err := w.Validate(); err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
		}
	}
	base := core.DefaultConfig()
	if opt.TraceLen > 0 {
		base.TraceLen = opt.TraceLen
	}
	if opt.MaxCycles > 0 {
		base.MaxCycles = opt.MaxCycles
	}
	base.Seed = opt.Seed
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var store *resultstore.Store
	if opt.StoreDir != "" {
		var err error
		if store, err = resultstore.Open(opt.StoreDir, opt.StoreBytes); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}
	memBytes := opt.TraceCacheBytes
	if memBytes == 0 {
		memBytes = tracestore.DefaultMemBytes
	}
	var traces *tracestore.Store
	if opt.TraceDir != "" {
		var err error
		if traces, err = tracestore.Open(memBytes, opt.TraceDir, opt.TraceBytes); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	} else {
		traces = tracestore.New(memBytes)
	}
	batch := opt.BatchConfigs
	if batch <= 0 {
		batch = DefaultBatchConfigs
	}
	scheduler, err := sched.New[job](opt.Scheduler)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Session{
		opt:        opt,
		base:       base,
		maxWorkers: workers,
		cache:      simcache.New[runKey, *core.Result](opt.CacheEntries, opt.CacheBytes, resultBytes),
		store:      store,
		traces:     traces,
		batch:      batch,
		scheduler:  scheduler,
	}, nil
}

// resultBytes approximates the retained size of one cached simulation
// result for the cache's byte bound: the Result struct plus its
// per-thread slice and benchmark name payloads.
func resultBytes(r *core.Result) int64 {
	if r == nil {
		return 0
	}
	n := int64(unsafe.Sizeof(*r)) + int64(len(r.Workload))
	n += int64(len(r.Threads)) * int64(unsafe.Sizeof(core.ThreadResult{}))
	for i := range r.Threads {
		n += int64(len(r.Threads[i].Benchmark))
	}
	return n
}

// CacheStats snapshots the simulation cache's hit/miss/eviction counters
// and current population (the smtsimd /v1/metrics payload).
func (s *Session) CacheStats() simcache.Stats { return s.cache.Stats() }

// StoreStats snapshots the persistent result store's counters; the zero
// Stats when the session runs without a store (Options.StoreDir empty).
func (s *Session) StoreStats() resultstore.Stats {
	if s.store == nil {
		return resultstore.Stats{}
	}
	return s.store.Stats()
}

// TraceStats snapshots the session's trace tier: memory-tier hit/miss/
// eviction counters, actual generation count, and the disk tier when
// configured (the smtsimd /v1/metrics "trace" payload).
func (s *Session) TraceStats() tracestore.Stats { return s.traces.Stats() }

// BatchStats reports how much simulation work took the batched path:
// passes executed and the cells they carried. Singleton groups, disk-tier
// hits and fallback cells run scalar and are not counted.
func (s *Session) BatchStats() (batches, cells uint64) {
	return s.batches.Load(), s.batchedCells.Load()
}

// SchedStats snapshots the work-queue scheduler: policy name, queued
// jobs/cells, and per-requester accounting (the smtsimd /v1/metrics
// "scheduler" payload). Queued cells are work accepted but not yet
// picked up by a worker — the complement of simcache.Stats.InFlight,
// which only counts started cells.
func (s *Session) SchedStats() sched.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scheduler.Snapshot()
}

// BaseConfig returns the configuration scenario deltas apply onto: the
// Table 1 machine scaled by this session's Options.
func (s *Session) BaseConfig() core.Config { return s.base }

// dispatch queues one job under a requester identity and ensures a
// worker will drain it. Workers spawn lazily up to the pool bound and
// exit when the queue empties, so the pool leaks nothing between sweeps.
// The scheduling policy decides pop order only; every queued job is
// eventually popped, and results are identical under any policy.
func (s *Session) dispatch(requester string, j job) {
	s.mu.Lock()
	s.scheduler.Push(sched.Job[job]{Requester: requester, Cells: len(j.cells), Payload: j})
	if s.workers < s.maxWorkers {
		s.workers++
		//lint:gorolife bounded pool: s.workers accounts every spawn under s.mu, and work decrements it under s.mu before returning, so Close/tests observe drain via the counter
		go s.work()
	}
	s.mu.Unlock()
}

// work drains the queue in scheduler order. Each popped job's cells are
// first filtered for abandonment — a cell whose requesters have all
// canceled is never simulated and its key becomes free to recompute —
// and the survivors run to completion and populate the cache. The job's
// cells count against its requester's in-service account from pop to
// Done, which is what the fair policy's ICOUNT-style priority reads.
func (s *Session) work() {
	for {
		s.mu.Lock()
		sj, ok := s.scheduler.Pop()
		if !ok {
			s.workers--
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		j := sj.Payload
		live := j.cells[:0]
		for _, c := range j.cells {
			if !s.cache.Abandon(c.key, c.call, context.Canceled) {
				live = append(live, c)
			}
		}
		if len(live) > 0 {
			s.runCells(j.w, live)
		}
		s.mu.Lock()
		s.scheduler.Done(sj)
		s.mu.Unlock()
	}
}

// simulate executes one cell the scalar way — trace-tier materialization,
// simulation, write-behind persistence — and returns its result with the
// session's error attribution.
func (s *Session) simulate(w workload.Workload, cfg core.Config) (*core.Result, error) {
	r, err := core.RunTraced(cfg, w, s.traces)
	if err != nil {
		return nil, fmt.Errorf("%s under %s: %w", w.Name(), cfg.Policy, err)
	}
	if s.store != nil {
		// Write-behind: persistence is best-effort — a full disk or
		// unwritable store costs future recomputation, never this result.
		// Failures are visible in StoreStats().WriteErrors.
		_ = s.store.Put(w.Name(), cfg, r)
	}
	return r, nil
}

// runCells executes a job's surviving cells. Every cell first probes the
// persistent result tier — a stored result is bit-identical to what the
// simulation would produce, so a hit skips the simulation entirely. What
// remains runs batched when there is more than one cell (one pass over
// the shared traces, K independent machines) or scalar for a singleton.
// A batch that fails as a whole — a bad policy anywhere in it — falls
// back to per-cell scalar execution so each cell gets its own result or
// error, exactly as an unbatched session would have produced.
func (s *Session) runCells(w workload.Workload, cells []cell) {
	if s.store != nil {
		rest := cells[:0]
		for _, c := range cells {
			if r, ok := s.store.Get(w.Name(), c.cfg); ok {
				c.call.Fulfill(r, nil)
				continue
			}
			rest = append(rest, c)
		}
		cells = rest
	}
	if len(cells) == 0 {
		return
	}
	if len(cells) == 1 {
		c := cells[0]
		c.call.Fulfill(s.simulate(w, c.cfg))
		return
	}
	cfgs := make([]core.Config, len(cells))
	for i, c := range cells {
		cfgs[i] = c.cfg
	}
	// Cells publish as their machine completes (streaming clients see
	// rows mid-batch, exactly as they would unbatched), and cells whose
	// requesters all cancel mid-batch are abandoned between rounds —
	// their machines stop advancing, their keys free to recompute, the
	// rest of the batch undisturbed.
	var done uint64
	_, err := core.RunBatchObserved(cfgs, w, s.traces, core.BatchObserver{
		Finished: func(i int, r *core.Result) {
			if s.store != nil {
				_ = s.store.Put(w.Name(), cells[i].cfg, r)
			}
			cells[i].call.Fulfill(r, nil)
			done++
		},
		Drop: func(i int) bool {
			return s.cache.Abandon(cells[i].key, cells[i].call, context.Canceled)
		},
	})
	if err != nil {
		// Every batch error precedes the first round: no cell has been
		// fulfilled or dropped, so each gets its own scalar run (and its
		// own error attribution), exactly as an unbatched session.
		for _, c := range cells {
			c.call.Fulfill(s.simulate(w, c.cfg))
		}
		return
	}
	s.batches.Add(1)
	s.batchedCells.Add(done)
}

// StartRun schedules (or joins) the simulation of one workload under one
// complete configuration, returning its call immediately. The simulation
// executes on the worker pool and is never canceled once scheduled.
func (s *Session) StartRun(w workload.Workload, cfg core.Config) *simcache.Call[*core.Result] {
	return s.StartRunCtx(context.Background(), w, cfg)
}

// StartRunCtx is StartRun with cancellation interest: if every context
// registered against the cell (this one, plus any concurrent requester's)
// is done before a worker picks the cell up, it is abandoned unrun. A
// cell a worker already started always finishes and populates the cache.
func (s *Session) StartRunCtx(ctx context.Context, w workload.Workload, cfg core.Config) *simcache.Call[*core.Result] {
	key := runKey{workload: w.Name(), config: cfg.Canonical()}
	c, created := s.cache.BeginCtx(ctx, key)
	if !created {
		return c
	}
	s.dispatch(sched.Requester(ctx), job{w: w, cells: []cell{{key: key, call: c, cfg: cfg}}})
	return c
}

// traceIdentity is the part of a configuration that determines which
// traces a run consumes; only cells agreeing on it may share a batch.
type traceIdentity struct {
	len  int
	seed uint64
}

// identityOf normalizes a configuration's trace identity the same way
// core.Run does, so grouping here never builds a batch core.RunBatch
// would reject.
func identityOf(cfg core.Config) traceIdentity {
	id := traceIdentity{len: cfg.TraceLen, seed: cfg.Seed}
	if id.len <= 0 {
		id.len = trace.DefaultLen
	}
	return id
}

// StartRunBatchCtx schedules one workload under many configurations,
// returning the pending calls in input order. Cells this call registers
// (rather than joins) are grouped by trace identity and queued in batches
// of at most Options.BatchConfigs; a worker executes each batch in one
// pass over the workload's shared traces. Results and errors are
// bit-identical to per-cell StartRunCtx dispatch — batching changes only
// the host process's schedule.
func (s *Session) StartRunBatchCtx(ctx context.Context, w workload.Workload, cfgs []core.Config) []*simcache.Call[*core.Result] {
	calls := make([]*simcache.Call[*core.Result], len(cfgs))
	groups := map[traceIdentity][]cell{}
	var order []traceIdentity // deterministic dispatch order
	for i, cfg := range cfgs {
		key := runKey{workload: w.Name(), config: cfg.Canonical()}
		c, created := s.cache.BeginCtx(ctx, key)
		calls[i] = c
		if !created {
			continue // joined an existing cell (or a duplicate in cfgs)
		}
		id := identityOf(cfg)
		if _, ok := groups[id]; !ok {
			order = append(order, id)
		}
		groups[id] = append(groups[id], cell{key: key, call: c, cfg: cfg})
	}
	requester := sched.Requester(ctx)
	for _, id := range order {
		cells := groups[id]
		for len(cells) > 0 {
			n := len(cells)
			if n > s.batch {
				n = s.batch
			}
			s.dispatch(requester, job{w: w, cells: cells[:n:n]})
			cells = cells[n:]
		}
	}
	return calls
}

// RunConfig executes (and caches) one workload under one complete
// configuration, blocking for the result.
func (s *Session) RunConfig(w workload.Workload, cfg core.Config) (*core.Result, error) {
	return s.StartRun(w, cfg).Wait()
}

// RunConfigCtx is RunConfig bounded by ctx: the wait returns ctx's error
// as soon as ctx is done, and a cell no live request is interested in is
// never simulated.
func (s *Session) RunConfigCtx(ctx context.Context, w workload.Workload, cfg core.Config) (*core.Result, error) {
	return s.StartRunCtx(ctx, w, cfg).WaitCtx(ctx)
}

// referenceWorkload is the single-thread workload of a fairness
// reference, and referenceConfig the machine it runs on: the same
// configuration as the SMT run being normalized, under the baseline
// policy (per Luo et al., the reference processor is the baseline
// machine, identical for every policy being compared — but it must share
// the SMT run's geometry, seed and trace length, or the speedup would
// compare different machines or even different instruction streams).
func referenceWorkload(benchmark string) workload.Workload {
	return workload.Workload{Group: "ST", Benchmarks: []string{benchmark}}
}

func referenceConfig(cfg core.Config) core.Config {
	cfg.Policy = core.PolicyICount
	return cfg
}

// StartReference schedules (or joins) a benchmark's single-thread
// reference run for the given machine, without blocking. References live
// in the same canonical-config cache as every other run, so references
// for configurations differing only in policy collapse to one
// simulation.
func (s *Session) StartReference(benchmark string, cfg core.Config) {
	s.StartReferenceCtx(context.Background(), benchmark, cfg)
}

// StartReferenceCtx is StartReference with cancellation interest,
// following the same queue rules as StartRunCtx.
func (s *Session) StartReferenceCtx(ctx context.Context, benchmark string, cfg core.Config) {
	s.StartRunCtx(ctx, referenceWorkload(benchmark), referenceConfig(cfg))
}

// StartReferenceBatchCtx schedules a benchmark's single-thread reference
// runs for many machines at once. References for configurations that
// differ only in policy collapse to one canonical cell, and the distinct
// remainder — which shares the reference workload and trace identity —
// batches like any other cells. A reference run's context-0 trace has
// the same identity as the SMT run's context-0 trace for that benchmark,
// so the trace tier serves both from one object.
func (s *Session) StartReferenceBatchCtx(ctx context.Context, benchmark string, cfgs []core.Config) {
	rcfgs := make([]core.Config, len(cfgs))
	for i, cfg := range cfgs {
		rcfgs[i] = referenceConfig(cfg)
	}
	s.StartRunBatchCtx(ctx, referenceWorkload(benchmark), rcfgs)
}

// Reference blocks for a benchmark's single-thread reference IPC on the
// given machine (the IPC_ST of the fairness metric).
func (s *Session) Reference(benchmark string, cfg core.Config) (float64, error) {
	return s.ReferenceCtx(context.Background(), benchmark, cfg)
}

// ReferenceCtx is Reference bounded by ctx.
func (s *Session) ReferenceCtx(ctx context.Context, benchmark string, cfg core.Config) (float64, error) {
	res, err := s.RunConfigCtx(ctx, referenceWorkload(benchmark), referenceConfig(cfg))
	if err != nil {
		return 0, err
	}
	return res.Threads[0].IPC, nil
}

// configFor builds the session configuration for a policy and an
// optionally overridden register file size (0 = Table 1 default).
func (s *Session) configFor(pol core.PolicyKind, regs int) core.Config {
	cfg := s.base
	cfg.Policy = pol
	if regs > 0 {
		cfg.Pipeline.IntRegs = regs
		cfg.Pipeline.FPRegs = regs
	}
	return cfg
}

// RunScenario executes a declarative sweep on this session's worker pool
// and cache. Points that coincide with figure runs (or with each other)
// are simulated once.
func (s *Session) RunScenario(sp *scenario.Spec) (*scenario.ResultSet, error) {
	return scenario.Execute(s, sp)
}

// RunScenarioCtx is RunScenario bounded by ctx: cells not yet started
// when ctx dies are never simulated, running cells finish into the
// cache, and the call returns ctx's error promptly.
func (s *Session) RunScenarioCtx(ctx context.Context, sp *scenario.Spec) (*scenario.ResultSet, error) {
	return scenario.ExecuteCtx(ctx, s, sp)
}

// figureSpec assembles the scenario a figure needs: the session's
// workload selection crossed with the figure's axes.
func (s *Session) figureSpec(name string, mets []string, axes ...scenario.Axis) *scenario.Spec {
	return &scenario.Spec{
		Name:      name,
		Workloads: scenario.WorkloadSpec{Groups: s.opt.groups(), PerGroup: s.opt.PerGroup},
		Axes:      axes,
		Metrics:   mets,
	}
}

// policyAxis builds the "policy" axis from a policy list.
func policyAxis(pols []core.PolicyKind) scenario.Axis {
	ax := scenario.Axis{Name: "policy"}
	for _, p := range pols {
		name := string(p)
		ax.Points = append(ax.Points, scenario.Point{Label: name, Delta: scenario.Delta{Policy: &name}})
	}
	return ax
}

// regsAxis builds the "regs" axis of Figure 6's register file sweep.
func regsAxis(sizes []int) scenario.Axis {
	ax := scenario.Axis{Name: "regs"}
	for _, n := range sizes {
		size := n
		ax.Points = append(ax.Points, scenario.Point{Label: strconv.Itoa(size), Delta: scenario.Delta{Regs: &size}})
	}
	return ax
}

// groupRows calls fn for each workload of a group, in selection order,
// with the workload's grid row index.
func groupRows(rs *scenario.ResultSet, group string, fn func(wi int, w workload.Workload)) {
	for wi, w := range rs.Workloads {
		if w.Group == group {
			fn(wi, w)
		}
	}
}

// PolicyFigure is the shared shape of Figures 1 and 2: group-average
// throughput and fairness for a set of policies.
type PolicyFigure struct {
	Name     string
	Policies []core.PolicyKind
	Groups   []string
	// Throughput[group][policy] and Fairness[group][policy].
	Throughput map[string]map[core.PolicyKind]float64
	Fairness   map[string]map[core.PolicyKind]float64
}

// policyFigure runs the common Figure 1/2 machinery: one policy axis,
// throughput and fairness per cell, group-averaged.
func (s *Session) policyFigure(ctx context.Context, name string, pols []core.PolicyKind) (*PolicyFigure, error) {
	rs, err := s.RunScenarioCtx(ctx, s.figureSpec(name, []string{"throughput", "fairness"}, policyAxis(pols)))
	if err != nil {
		return nil, err
	}
	f := &PolicyFigure{
		Name:       name,
		Policies:   pols,
		Groups:     s.opt.groups(),
		Throughput: map[string]map[core.PolicyKind]float64{},
		Fairness:   map[string]map[core.PolicyKind]float64{},
	}
	for _, g := range f.Groups {
		f.Throughput[g] = map[core.PolicyKind]float64{}
		f.Fairness[g] = map[core.PolicyKind]float64{}
		for pi, p := range pols {
			var thrus, fairs []float64
			groupRows(rs, g, func(wi int, _ workload.Workload) {
				thrus = append(thrus, rs.Value(wi, pi, 0))
				fairs = append(fairs, rs.Value(wi, pi, 1))
			})
			f.Throughput[g][p] = stats.Mean(thrus)
			f.Fairness[g][p] = stats.Mean(fairs)
		}
	}
	return f, nil
}

// Fig1 reproduces Figure 1: RaT against the static fetch policies.
func (s *Session) Fig1(ctx context.Context) (*PolicyFigure, error) {
	return s.policyFigure(ctx, "Figure 1: I-Fetch policies (ICOUNT, STALL, FLUSH, RaT)",
		[]core.PolicyKind{core.PolicyICount, core.PolicySTALL, core.PolicyFLUSH, core.PolicyRaT})
}

// Fig2 reproduces Figure 2: RaT against the dynamic resource controllers.
func (s *Session) Fig2(ctx context.Context) (*PolicyFigure, error) {
	return s.policyFigure(ctx, "Figure 2: resource control policies (ICOUNT, DCRA, HillClimbing, RaT)",
		[]core.PolicyKind{core.PolicyICount, core.PolicyDCRA, core.PolicyHillClimbing, core.PolicyRaT})
}

// String renders the figure as two tables (throughput, fairness).
func (f *PolicyFigure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", f.Name)
	for _, part := range []struct {
		title string
		data  map[string]map[core.PolicyKind]float64
	}{
		{"(a) Throughput (avg IPC)", f.Throughput},
		{"(b) Fairness (harmonic mean of speedups)", f.Fairness},
	} {
		cols := append([]string{"workload"}, policyNames(f.Policies)...)
		tb := report.NewTable(part.title, cols...)
		for _, g := range f.Groups {
			row := []string{g}
			for _, p := range f.Policies {
				row = append(row, report.F(part.data[g][p]))
			}
			tb.AddRow(row...)
		}
		b.WriteString(tb.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func policyNames(pols []core.PolicyKind) []string {
	out := make([]string, len(pols))
	for i, p := range pols {
		out[i] = string(p)
	}
	return out
}

// Fig3Result holds Figure 3: ED² normalized to ICOUNT per group/policy.
type Fig3Result struct {
	Groups   []string
	Policies []core.PolicyKind
	ED2      map[string]map[core.PolicyKind]float64 // normalized to ICOUNT
}

// Fig3 reproduces Figure 3: Energy-Delay² (executed instructions × CPI²),
// normalized to ICOUNT.
func (s *Session) Fig3(ctx context.Context) (*Fig3Result, error) {
	pols := []core.PolicyKind{core.PolicyICount, core.PolicySTALL, core.PolicyFLUSH,
		core.PolicyDCRA, core.PolicyHillClimbing, core.PolicyRaT}
	rs, err := s.RunScenarioCtx(ctx, s.figureSpec("Figure 3", []string{"ed2"}, policyAxis(pols)))
	if err != nil {
		return nil, err
	}
	const icIdx = 0 // ICOUNT's position in pols
	f := &Fig3Result{Groups: s.opt.groups(), Policies: pols, ED2: map[string]map[core.PolicyKind]float64{}}
	for _, g := range f.Groups {
		f.ED2[g] = map[core.PolicyKind]float64{}
		// Per-workload ED2 normalized to that workload's ICOUNT, then
		// group-averaged (the paper normalizes per workload).
		sums := map[core.PolicyKind][]float64{}
		groupRows(rs, g, func(wi int, _ workload.Workload) {
			baseED2 := rs.Value(wi, icIdx, 0)
			for pi, p := range pols {
				sums[p] = append(sums[p], metrics.Normalize(rs.Value(wi, pi, 0), baseED2))
			}
		})
		for _, p := range pols {
			f.ED2[g][p] = stats.Mean(sums[p])
		}
	}
	return f, nil
}

// String renders Figure 3.
func (f *Fig3Result) String() string {
	cols := append([]string{"workload"}, policyNames(f.Policies)...)
	tb := report.NewTable("Figure 3: Energy-Delay² normalized to ICOUNT (lower is better)", cols...)
	for _, g := range f.Groups {
		row := []string{g}
		for _, p := range f.Policies {
			row = append(row, report.F(f.ED2[g][p]))
		}
		tb.AddRow(row...)
	}
	return tb.String()
}
