// Package experiments regenerates every table and figure of the paper's
// evaluation (§5–§6). Each FigN function runs the simulations it needs
// (sharing results through a session-level cache, since e.g. Figures 1, 2
// and 3 all need the ICOUNT and RaT runs) and returns a structured result
// that renders as text resembling the original figure.
//
// The harness is deliberately a library: cmd/experiments wraps it with
// flags, bench_test.go wraps it with testing.B, and EXPERIMENTS.md quotes
// its output.
package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/singleflight"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options scales the harness.
type Options struct {
	// TraceLen is the per-thread trace length.
	TraceLen int
	// MaxCycles bounds each run.
	MaxCycles uint64
	// PerGroup limits workloads per Table 2 group (0 = all).
	PerGroup int
	// Groups restricts the groups (nil = all six).
	Groups []string
	// Seed decorrelates the whole experiment instance.
	Seed uint64
	// RegSizes is Figure 6's register file sweep.
	RegSizes []int
	// Workers bounds concurrent simulations (0 = GOMAXPROCS). Every
	// figure's independent workload×policy runs dispatch onto this pool;
	// results are identical to sequential execution (each simulation is
	// deterministic and reductions run in a fixed order), so Workers only
	// changes wall-clock time.
	Workers int
}

// Default returns the full-suite options.
func Default() Options {
	return Options{
		TraceLen:  20_000,
		MaxCycles: 12_000_000,
		Seed:      1,
		RegSizes:  []int{64, 128, 192, 256, 320},
	}
}

// Quick returns reduced options for smoke runs and benchmarks.
func Quick() Options {
	o := Default()
	o.TraceLen = 8_000
	o.MaxCycles = 5_000_000
	o.PerGroup = 3
	o.RegSizes = []int{64, 192, 320}
	return o
}

// groups returns the selected group list.
func (o Options) groups() []string {
	if len(o.Groups) > 0 {
		return o.Groups
	}
	return workload.Groups()
}

// pick returns the selected workloads of one group.
func (o Options) pick(group string) []workload.Workload {
	ws := workload.ByGroup(group)
	if o.PerGroup > 0 && o.PerGroup < len(ws) {
		ws = ws[:o.PerGroup]
	}
	return ws
}

// runKey identifies a cached simulation.
type runKey struct {
	workload string
	policy   core.PolicyKind
	regs     int // 0 = Table 1 default
}

// Session shares simulation results and single-thread references across
// figures. Independent runs execute on a bounded worker pool
// (Options.Workers); duplicate requests for one runKey share a single
// execution, singleflight-style, so figures that overlap (1, 2 and 3 all
// need the ICOUNT and RaT runs) still simulate each point exactly once.
// Errors memoize like results: a run's outcome is a pure function of its
// configuration, so retrying a failed key could never succeed.
type Session struct {
	opt   Options
	base  core.Config
	st    *core.STCache
	sem   chan struct{} // worker pool slots
	cache singleflight.Group[runKey, *core.Result]
}

// NewSession builds a session.
func NewSession(opt Options) *Session {
	base := core.DefaultConfig()
	if opt.TraceLen > 0 {
		base.TraceLen = opt.TraceLen
	}
	if opt.MaxCycles > 0 {
		base.MaxCycles = opt.MaxCycles
	}
	base.Seed = opt.Seed
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Session{
		opt:  opt,
		base: base,
		st:   core.NewSTCache(base),
		sem:  make(chan struct{}, workers),
	}
}

// dispatch runs fn on the worker pool: the goroutine occupies a slot for
// the duration of fn only.
func (s *Session) dispatch(fn func()) {
	go func() {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		fn()
	}()
}

// start schedules (or joins) the simulation of one workload under one
// policy, returning its call immediately. The simulation itself executes
// on the worker pool; only the first requester of a key occupies a slot.
func (s *Session) start(w workload.Workload, pol core.PolicyKind, regs int) *singleflight.Call[*core.Result] {
	key := runKey{workload: w.Name(), policy: pol, regs: regs}
	c, created := s.cache.Entry(key)
	if !created {
		return c
	}
	s.dispatch(func() {
		cfg := s.base
		cfg.Policy = pol
		if regs > 0 {
			cfg.Pipeline.IntRegs = regs
			cfg.Pipeline.FPRegs = regs
		}
		r, err := core.Run(cfg, w)
		if err != nil {
			c.Fulfill(nil, fmt.Errorf("%s under %s: %w", w.Name(), pol, err))
			return
		}
		c.Fulfill(r, nil)
	})
	return c
}

// run executes (and caches) one workload under one policy, optionally with
// an overridden physical register file size, blocking for the result.
func (s *Session) run(w workload.Workload, pol core.PolicyKind, regs int) (*core.Result, error) {
	return s.start(w, pol, regs).Wait()
}

// prewarm dispatches every (workload, policy, regs) point a figure needs
// onto the worker pool, plus the single-thread references when the figure
// computes fairness. It returns without waiting: the figure's sequential
// reduction then collects each result in a fixed order, which is what
// keeps parallel output bit-identical to a Workers=1 session. Duplicate
// points — within this figure or against previous figures — spawn
// nothing, so every occupied pool slot is doing novel simulation work.
func (s *Session) prewarm(pols []core.PolicyKind, regs []int, withST bool) {
	if regs == nil {
		regs = []int{0}
	}
	for _, g := range s.opt.groups() {
		for _, w := range s.opt.pick(g) {
			for _, r := range regs {
				for _, p := range pols {
					s.start(w, p, r)
				}
			}
			if !withST {
				continue
			}
			for _, b := range w.Benchmarks {
				if fn := s.st.Begin(b); fn != nil {
					s.dispatch(fn)
				}
				// nil: computed or in flight; the reduction re-reads it.
			}
		}
	}
}

// groupMetrics averages throughput and fairness over a group's workloads.
func (s *Session) groupMetrics(group string, pol core.PolicyKind) (thru, fair float64, err error) {
	var thrus, fairs []float64
	for _, w := range s.opt.pick(group) {
		res, err := s.run(w, pol, 0)
		if err != nil {
			return 0, 0, err
		}
		stv, err := s.st.STVector(w)
		if err != nil {
			return 0, 0, err
		}
		thrus = append(thrus, metrics.Throughput(res.IPCs()))
		fairs = append(fairs, metrics.Fairness(stv, res.IPCs()))
	}
	return stats.Mean(thrus), stats.Mean(fairs), nil
}

// PolicyFigure is the shared shape of Figures 1 and 2: group-average
// throughput and fairness for a set of policies.
type PolicyFigure struct {
	Name     string
	Policies []core.PolicyKind
	Groups   []string
	// Throughput[group][policy] and Fairness[group][policy].
	Throughput map[string]map[core.PolicyKind]float64
	Fairness   map[string]map[core.PolicyKind]float64
}

// policyFigure runs the common Figure 1/2 machinery: dispatch every
// needed simulation onto the worker pool, then reduce sequentially.
func (s *Session) policyFigure(name string, pols []core.PolicyKind) (*PolicyFigure, error) {
	s.prewarm(pols, nil, true)
	f := &PolicyFigure{
		Name:       name,
		Policies:   pols,
		Groups:     s.opt.groups(),
		Throughput: map[string]map[core.PolicyKind]float64{},
		Fairness:   map[string]map[core.PolicyKind]float64{},
	}
	for _, g := range f.Groups {
		f.Throughput[g] = map[core.PolicyKind]float64{}
		f.Fairness[g] = map[core.PolicyKind]float64{}
		for _, p := range pols {
			thru, fair, err := s.groupMetrics(g, p)
			if err != nil {
				return nil, err
			}
			f.Throughput[g][p] = thru
			f.Fairness[g][p] = fair
		}
	}
	return f, nil
}

// Fig1 reproduces Figure 1: RaT against the static fetch policies.
func (s *Session) Fig1() (*PolicyFigure, error) {
	return s.policyFigure("Figure 1: I-Fetch policies (ICOUNT, STALL, FLUSH, RaT)",
		[]core.PolicyKind{core.PolicyICount, core.PolicySTALL, core.PolicyFLUSH, core.PolicyRaT})
}

// Fig2 reproduces Figure 2: RaT against the dynamic resource controllers.
func (s *Session) Fig2() (*PolicyFigure, error) {
	return s.policyFigure("Figure 2: resource control policies (ICOUNT, DCRA, HillClimbing, RaT)",
		[]core.PolicyKind{core.PolicyICount, core.PolicyDCRA, core.PolicyHillClimbing, core.PolicyRaT})
}

// String renders the figure as two tables (throughput, fairness).
func (f *PolicyFigure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", f.Name)
	for _, part := range []struct {
		title string
		data  map[string]map[core.PolicyKind]float64
	}{
		{"(a) Throughput (avg IPC)", f.Throughput},
		{"(b) Fairness (harmonic mean of speedups)", f.Fairness},
	} {
		cols := append([]string{"workload"}, policyNames(f.Policies)...)
		tb := report.NewTable(part.title, cols...)
		for _, g := range f.Groups {
			row := []string{g}
			for _, p := range f.Policies {
				row = append(row, report.F(part.data[g][p]))
			}
			tb.AddRow(row...)
		}
		b.WriteString(tb.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func policyNames(pols []core.PolicyKind) []string {
	out := make([]string, len(pols))
	for i, p := range pols {
		out[i] = string(p)
	}
	return out
}

// Fig3Result holds Figure 3: ED² normalized to ICOUNT per group/policy.
type Fig3Result struct {
	Groups   []string
	Policies []core.PolicyKind
	ED2      map[string]map[core.PolicyKind]float64 // normalized to ICOUNT
}

// Fig3 reproduces Figure 3: Energy-Delay² (executed instructions × CPI²),
// normalized to ICOUNT.
func (s *Session) Fig3() (*Fig3Result, error) {
	pols := []core.PolicyKind{core.PolicyICount, core.PolicySTALL, core.PolicyFLUSH,
		core.PolicyDCRA, core.PolicyHillClimbing, core.PolicyRaT}
	s.prewarm(pols, nil, false)
	f := &Fig3Result{Groups: s.opt.groups(), Policies: pols, ED2: map[string]map[core.PolicyKind]float64{}}
	for _, g := range f.Groups {
		f.ED2[g] = map[core.PolicyKind]float64{}
		// Per-workload ED2 normalized to that workload's ICOUNT, then
		// group-averaged (the paper normalizes per workload).
		sums := map[core.PolicyKind][]float64{}
		for _, w := range s.opt.pick(g) {
			base, err := s.run(w, core.PolicyICount, 0)
			if err != nil {
				return nil, err
			}
			baseED2 := metrics.ED2(base.ExecutedTotal, base.Cycles, base.CommittedTotal)
			for _, p := range pols {
				res, err := s.run(w, p, 0)
				if err != nil {
					return nil, err
				}
				ed2 := metrics.ED2(res.ExecutedTotal, res.Cycles, res.CommittedTotal)
				sums[p] = append(sums[p], metrics.Normalize(ed2, baseED2))
			}
		}
		for _, p := range pols {
			f.ED2[g][p] = stats.Mean(sums[p])
		}
	}
	return f, nil
}

// String renders Figure 3.
func (f *Fig3Result) String() string {
	cols := append([]string{"workload"}, policyNames(f.Policies)...)
	tb := report.NewTable("Figure 3: Energy-Delay² normalized to ICOUNT (lower is better)", cols...)
	for _, g := range f.Groups {
		row := []string{g}
		for _, p := range f.Policies {
			row = append(row, report.F(f.ED2[g][p]))
		}
		tb.AddRow(row...)
	}
	return tb.String()
}
