// Package runahead holds the Runahead Threads (RaT) mechanism's
// configuration, the runahead cache, and episode statistics.
//
// RaT (the paper's contribution, §3) turns a thread that blocks the shared
// pipeline on a long-latency L2 miss into a speculative "light" thread:
// the blocked load's destination is poisoned with an INV bit, the thread's
// architectural state is checkpointed, and the thread keeps fetching and
// executing down its predicted path, pseudo-retiring instructions from the
// ROB head instead of committing them. Valid instructions execute normally
// (but never update architectural state); instructions that touch an INV
// register are folded — never executed — and release their resources
// immediately. Loads that miss the L2 during runahead become prefetches.
// When the triggering miss resolves, the thread restores its checkpoint and
// re-executes from the load, which now hits.
//
// The INV-propagation and pseudo-retire mechanics live in the pipeline
// (they are pipeline stages); this package owns everything that is
// *configuration or policy* about runahead, so ablation experiments
// (Figure 4, the runahead-cache study, the FP-invalidation study) are
// plain configuration changes.
package runahead

import "repro/internal/stats"

// Config selects runahead behaviour. The zero value disables runahead
// entirely (the baseline configurations).
type Config struct {
	// Enabled turns the RaT mechanism on.
	Enabled bool
	// Prefetch allows runahead memory accesses to reach the L2 and main
	// memory. Disabling it reproduces Figure 4's "RaT without prefetching"
	// experiment: threads still enter runahead for identical periods, but
	// L2-missing runahead loads are invalidated without touching memory,
	// and — as the paper specifies — the loads seen during such episodes
	// are tracked so they do not re-trigger runahead after recovery.
	Prefetch bool
	// FetchInRunahead lets a runahead thread keep fetching new
	// instructions. Disabling it reproduces Figure 4's "resource
	// availability" experiment: the thread enters runahead (releasing the
	// resources of already-fetched instructions through pseudo-retirement)
	// but fetches nothing new, so any remaining benefit comes from the
	// resources it frees for other threads.
	FetchInRunahead bool
	// InvalidateFP applies §3.3's floating-point invalidation: FP
	// arithmetic in a runahead thread is invalidated at decode and consumes
	// no FP issue queue entries, functional units, or registers. FP loads
	// and stores still execute (their addresses come from the integer
	// pipeline) so prefetching is unaffected.
	InvalidateFP bool
	// UseRunaheadCache enables the Mutlu-style runahead cache for
	// store-to-load communication during runahead. The paper measures it
	// and decides to omit it (§3.3); it is implemented here so that the
	// ablation is reproducible.
	UseRunaheadCache bool
	// ExitPenalty is the pipeline refill/restore cost in cycles paid when
	// leaving runahead mode.
	ExitPenalty uint64
}

// Default returns the paper's RaT configuration: runahead on, prefetching
// on, fetch allowed, FP invalidation on, no runahead cache.
func Default() Config {
	return Config{
		Enabled:          true,
		Prefetch:         true,
		FetchInRunahead:  true,
		InvalidateFP:     true,
		UseRunaheadCache: false,
		ExitPenalty:      4,
	}
}

// Disabled returns the configuration with runahead fully off.
func Disabled() Config { return Config{} }

// Stats aggregates runahead activity for one thread.
type Stats struct {
	// Episodes counts entries into runahead mode.
	Episodes stats.Counter
	// CyclesInRunahead counts cycles spent in runahead mode.
	CyclesInRunahead stats.Counter
	// PseudoRetired counts instructions pseudo-retired during runahead.
	PseudoRetired stats.Counter
	// Folded counts instructions folded (never executed) due to INV
	// operands or decode-time FP invalidation.
	Folded stats.Counter
	// PrefetchesIssued counts runahead loads/stores that went to memory.
	PrefetchesIssued stats.Counter
	// InvalidLoads counts runahead loads invalidated (L2 miss or INV
	// address).
	InvalidLoads stats.Counter
}

// --- Runahead cache ----------------------------------------------------------

// CacheEntry is one runahead-cache line: the store's line address, its
// owner thread (the paper notes a shared runahead cache needs per-thread
// tags), and whether the stored data was INV.
type CacheEntry struct {
	lineAddr uint64
	tid      uint8
	valid    bool
	inv      bool
}

// Cache is a small direct-mapped runahead cache shared by all threads,
// following Mutlu et al.: runahead stores record their target line and
// data validity; runahead loads that hit a same-thread entry inherit the
// stored data's validity instead of accessing memory.
type Cache struct {
	entries []CacheEntry
	mask    uint64

	Hits      stats.Counter
	Misses    stats.Counter
	Installs  stats.Counter
	Conflicts stats.Counter
}

// NewCache builds a runahead cache with the given number of entries
// (rounded up to a power of two).
func NewCache(entries int) *Cache {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &Cache{entries: make([]CacheEntry, n), mask: uint64(n - 1)}
}

// index maps a line address to a slot.
func (c *Cache) index(lineAddr uint64) uint64 { return (lineAddr >> 6) & c.mask }

// RecordStore installs a runahead store's line. invData records whether
// the stored value was INV (a load forwarding from it must be poisoned).
func (c *Cache) RecordStore(tid int, lineAddr uint64, invData bool) {
	e := &c.entries[c.index(lineAddr)]
	if e.valid && (e.lineAddr != lineAddr || int(e.tid) != tid) {
		c.Conflicts.Inc()
	}
	*e = CacheEntry{lineAddr: lineAddr, tid: uint8(tid), valid: true, inv: invData}
	c.Installs.Inc()
}

// LookupLoad checks whether a runahead load forwards from a prior runahead
// store by the same thread. It returns (found, inv).
func (c *Cache) LookupLoad(tid int, lineAddr uint64) (found, inv bool) {
	e := &c.entries[c.index(lineAddr)]
	if e.valid && e.lineAddr == lineAddr && int(e.tid) == tid {
		c.Hits.Inc()
		return true, e.inv
	}
	c.Misses.Inc()
	return false, false
}

// FlushThread removes all entries belonging to tid, called when that
// thread exits runahead mode (its speculative stores die with the episode).
func (c *Cache) FlushThread(tid int) {
	for i := range c.entries {
		if c.entries[i].valid && int(c.entries[i].tid) == tid {
			c.entries[i] = CacheEntry{}
		}
	}
}

// Size returns the number of slots.
func (c *Cache) Size() int { return len(c.entries) }
