package runahead

import "testing"

func TestDefaultConfig(t *testing.T) {
	c := Default()
	if !c.Enabled || !c.Prefetch || !c.FetchInRunahead || !c.InvalidateFP {
		t.Fatal("default config must enable RaT with prefetch, fetch, FP invalidation")
	}
	if c.UseRunaheadCache {
		t.Fatal("paper's configuration omits the runahead cache")
	}
	if c.ExitPenalty == 0 {
		t.Fatal("exit penalty must be non-zero")
	}
}

func TestDisabled(t *testing.T) {
	if Disabled().Enabled {
		t.Fatal("Disabled() returned enabled config")
	}
}

func TestCacheStoreLoadForwarding(t *testing.T) {
	c := NewCache(64)
	c.RecordStore(0, 0x1000, false)
	found, inv := c.LookupLoad(0, 0x1000)
	if !found || inv {
		t.Fatalf("valid store forward: found=%v inv=%v", found, inv)
	}
	c.RecordStore(0, 0x2000, true)
	found, inv = c.LookupLoad(0, 0x2000)
	if !found || !inv {
		t.Fatalf("INV store forward: found=%v inv=%v", found, inv)
	}
}

func TestCachePerThreadTags(t *testing.T) {
	// The paper notes a shared runahead cache needs per-thread tags: thread
	// 1 must not forward from thread 0's store.
	c := NewCache(64)
	c.RecordStore(0, 0x1000, false)
	if found, _ := c.LookupLoad(1, 0x1000); found {
		t.Fatal("cross-thread forwarding")
	}
}

func TestCacheMiss(t *testing.T) {
	c := NewCache(64)
	if found, _ := c.LookupLoad(0, 0x5000); found {
		t.Fatal("cold lookup hit")
	}
	if c.Misses.Value() != 1 {
		t.Fatal("miss not counted")
	}
}

func TestCacheConflict(t *testing.T) {
	c := NewCache(4) // tiny: lines 0x000 and 0x100 collide (4 slots)
	c.RecordStore(0, 0x000, false)
	c.RecordStore(0, 0x100, false) // same index (line>>6 = 0 and 4; 4&3=0)
	if c.Conflicts.Value() != 1 {
		t.Fatalf("conflicts = %d, want 1", c.Conflicts.Value())
	}
	if found, _ := c.LookupLoad(0, 0x000); found {
		t.Fatal("evicted entry still found")
	}
}

func TestCacheFlushThread(t *testing.T) {
	c := NewCache(64)
	c.RecordStore(0, 0x1000, false)
	c.RecordStore(1, 0x2000, false)
	c.FlushThread(0)
	if found, _ := c.LookupLoad(0, 0x1000); found {
		t.Fatal("flushed entry survived")
	}
	if found, _ := c.LookupLoad(1, 0x2000); !found {
		t.Fatal("other thread's entry flushed")
	}
}

func TestCacheSizeRoundsUp(t *testing.T) {
	if got := NewCache(100).Size(); got != 128 {
		t.Fatalf("size = %d, want 128", got)
	}
}
