package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %x != %x", i, av, bv)
		}
	}
}

func TestNewStringDeterminism(t *testing.T) {
	a, b := NewString("mcf"), NewString("mcf")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same string produced different streams")
	}
	c, d := NewString("mcf"), NewString("art")
	if c.Uint64() == d.Uint64() {
		t.Fatal("different strings produced identical first values (suspicious)")
	}
}

func TestSeedsDecorrelated(t *testing.T) {
	// Adjacent seeds must not produce obviously correlated streams.
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical values out of 1000", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 64, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared-ish sanity check: 16 buckets, 160k draws, each bucket
	// should be within 5% of expectation.
	s := New(99)
	const buckets, draws = 16, 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	expect := draws / buckets
	for b, c := range counts {
		if math.Abs(float64(c-expect)) > 0.05*float64(expect) {
			t.Fatalf("bucket %d count %d deviates >5%% from %d", b, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(5)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-1) {
			t.Fatal("Bool(-1) returned true")
		}
		if !s.Bool(2) {
			t.Fatal("Bool(2) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) empirical rate %v", p)
	}
}

func TestGeometricMean(t *testing.T) {
	// Mean of the "failures before success" geometric is (1-p)/p.
	s := New(13)
	for _, p := range []float64{0.1, 0.3, 0.5, 0.9} {
		var sum float64
		const n = 100000
		for i := 0; i < n; i++ {
			sum += float64(s.Geometric(p))
		}
		want := (1 - p) / p
		got := sum / n
		if math.Abs(got-want) > 0.1*want+0.02 {
			t.Fatalf("Geometric(%v) mean %v, want ~%v", p, got, want)
		}
	}
}

func TestGeometricEdge(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		if v := s.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(21)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams matched %d times", same)
	}
}

func TestMul64MatchesBits(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		whi, wlo := bits.Mul64(a, b)
		return hi == whi && lo == wlo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	// Must not panic and must produce a stream.
	prev := s.Uint64()
	for i := 0; i < 10; i++ {
		v := s.Uint64()
		if v == prev {
			t.Fatal("zero-value source stuck")
		}
		prev = v
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= s.Intn(64)
	}
	_ = sink
}
