// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Determinism is a hard requirement: every experiment in the paper must be
// exactly reproducible from a (benchmark name, seed) pair, so the simulator
// never uses math/rand's global state or any time-derived seed. The core
// generator is splitmix64 (Steele, Lea, Flood; "Fast splittable pseudorandom
// number generators", OOPSLA 2014), which passes BigCrush, needs only one
// uint64 of state, and is trivially seedable from a string hash.
package rng

import "math"

// Source is a deterministic 64-bit pseudo-random source.
//
// The zero value is a valid generator seeded with 0; most callers should use
// New or NewString so that distinct streams are decorrelated.
type Source struct {
	state uint64
}

// New returns a Source seeded with the given value. Two Sources with
// different seeds produce decorrelated streams (splitmix64 scrambles the
// seed through its output function before the first value is drawn).
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// NewString returns a Source seeded from an arbitrary string, typically a
// benchmark name. The hash is FNV-1a, chosen because it is stable across
// platforms and Go versions (unlike maphash).
func NewString(s string) *Source {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return New(h)
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		//lint:panicfree documented precondition, matching math/rand.Intn's contract; callers pass compiled-in distribution parameters
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method would remove modulo bias
	// entirely; for the simulator's purposes the bias of a plain modulo on a
	// 64-bit value (at most n/2^64) is far below measurement noise, but the
	// multiply-shift form is also faster than division, so use it anyway.
	v := s.Uint64()
	hi, _ := mul64(v, uint64(n))
	return int(hi)
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		//lint:panicfree documented precondition, matching math/rand's contract; callers pass compiled-in distribution parameters
		panic("rng: Uint64n called with n == 0")
	}
	hi, _ := mul64(s.Uint64(), n)
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 random mantissa bits, the standard conversion.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p in (0, 1], i.e. the number of failures before the first
// success. Used for dependence-distance and basic-block-length draws.
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		//lint:panicfree documented precondition; probabilities come from compiled-in workload class tables, so p <= 0 is a programming error
		panic("rng: Geometric called with p <= 0")
	}
	u := s.Float64()
	// Inverse transform sampling: floor(ln(1-u) / ln(1-p)).
	return int(math.Log(1-u) / math.Log(1-p))
}

// Split returns a new Source whose stream is decorrelated from the
// receiver's. This lets one seed fan out into independent per-component
// streams (one for addresses, one for opcodes, ...) without the streams
// marching in lockstep.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// mul64 returns the 128-bit product of a and b as (hi, lo) without
// depending on math/bits (kept local so the package is self-contained).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo32 := t & mask32
	carry := t >> 32
	t = aHi*bLo + carry
	mid := t & mask32
	hiPart := t >> 32
	t = aLo*bHi + mid
	hi = aHi*bHi + hiPart + t>>32
	lo = t<<32 | lo32
	return hi, lo
}
