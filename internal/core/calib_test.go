package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// TestCalibrationShapes is the end-to-end shape check against the paper's
// Figures 1 and 2, asserted at the group-average level the paper reports
// (single workloads can legitimately deviate — e.g. FLUSH buys raw
// throughput on art+gzip by starving art, which fairness then exposes).
// A subsample of each group keeps the test fast; cmd/experiments runs the
// full suite.
func TestCalibrationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	cfg := DefaultConfig()
	cfg.TraceLen = 10_000
	cfg.MaxCycles = 6_000_000
	st := NewSTCache(cfg)

	pols := []PolicyKind{PolicyICount, PolicySTALL, PolicyFLUSH, PolicyDCRA, PolicyHillClimbing, PolicyRaT}
	sample := []int{0, 3, 6, 9} // four workloads per group

	type agg struct{ thru, fair map[PolicyKind]float64 }
	groups := map[string]agg{}
	for _, g := range []string{"ILP2", "MIX2", "MEM2"} {
		a := agg{thru: map[PolicyKind]float64{}, fair: map[PolicyKind]float64{}}
		ws := workload.MustByGroup(g)
		for _, p := range pols {
			var thrus, fairs []float64
			for _, idx := range sample {
				if idx >= len(ws) {
					continue
				}
				c := cfg
				c.Policy = p
				res, err := Run(c, ws[idx])
				if err != nil {
					t.Fatal(err)
				}
				if res.Truncated {
					t.Errorf("%s/%s truncated", ws[idx].Name(), p)
				}
				stv, err := st.STVector(ws[idx])
				if err != nil {
					t.Fatal(err)
				}
				thrus = append(thrus, metrics.Throughput(res.IPCs()))
				fairs = append(fairs, metrics.Fairness(stv, res.IPCs()))
			}
			a.thru[p] = avg(thrus)
			a.fair[p] = avg(fairs)
			t.Logf("%-5s %-14s thru=%.3f fair=%.3f", g, p, a.thru[p], a.fair[p])
		}
		groups[g] = a
	}

	mem, mix := groups["MEM2"], groups["MIX2"]

	// Figure 1a/2a shapes (throughput).
	if mem.thru[PolicyRaT] <= mem.thru[PolicyICount] {
		t.Errorf("MEM2: RaT throughput (%.3f) must beat ICOUNT (%.3f)",
			mem.thru[PolicyRaT], mem.thru[PolicyICount])
	}
	if mem.thru[PolicyRaT] <= 1.5*mem.thru[PolicyFLUSH] {
		t.Errorf("MEM2: RaT (%.3f) must beat FLUSH (%.3f) by a wide margin",
			mem.thru[PolicyRaT], mem.thru[PolicyFLUSH])
	}
	if mem.thru[PolicyRaT] <= mem.thru[PolicyDCRA] || mem.thru[PolicyRaT] <= mem.thru[PolicyHillClimbing] {
		t.Errorf("MEM2: RaT (%.3f) must beat DCRA (%.3f) and Hill (%.3f)",
			mem.thru[PolicyRaT], mem.thru[PolicyDCRA], mem.thru[PolicyHillClimbing])
	}
	if mix.thru[PolicyRaT] <= mix.thru[PolicyICount] {
		t.Errorf("MIX2: RaT throughput (%.3f) must beat ICOUNT (%.3f)",
			mix.thru[PolicyRaT], mix.thru[PolicyICount])
	}

	// Figure 1b/2b shapes (fairness): RaT best; static policies sacrifice
	// fairness on memory-bound workloads.
	for _, g := range []string{"MIX2", "MEM2"} {
		a := groups[g]
		for _, p := range pols[:5] {
			if a.fair[PolicyRaT] <= a.fair[p] {
				t.Errorf("%s: RaT fairness (%.3f) must beat %s (%.3f)",
					g, a.fair[PolicyRaT], p, a.fair[p])
			}
		}
	}
	if mem.fair[PolicyFLUSH] >= mem.fair[PolicyICount] {
		t.Errorf("MEM2: FLUSH fairness (%.3f) should fall below ICOUNT (%.3f)",
			mem.fair[PolicyFLUSH], mem.fair[PolicyICount])
	}

	// ILP workloads: policies within a tight band (no pathology to fix).
	ilp := groups["ILP2"]
	for _, p := range pols {
		if ilp.thru[p] < 0.85*ilp.thru[PolicyICount] {
			t.Errorf("ILP2: %s throughput (%.3f) collapsed vs ICOUNT (%.3f)",
				p, ilp.thru[p], ilp.thru[PolicyICount])
		}
	}
}
