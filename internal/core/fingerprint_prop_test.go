package core

import (
	"math/rand"
	"testing"
)

// mutators randomize every layer of the configuration tree a scenario
// delta can reach: pipeline geometry, memory hierarchy, runahead knobs,
// policy, and measurement parameters. Each draws from a small range so
// random pairs collide structurally often enough to exercise the
// equality direction of the properties, not just the inequality one.
var mutators = []func(*Config, *rand.Rand){
	func(c *Config, r *rand.Rand) { c.Policy = allPolicies()[r.Intn(len(allPolicies()))] },
	func(c *Config, r *rand.Rand) { c.Pipeline.Width = 2 + r.Intn(4) },
	func(c *Config, r *rand.Rand) { c.Pipeline.FetchThreads = 1 + r.Intn(2) },
	func(c *Config, r *rand.Rand) { c.Pipeline.FrontEndDepth = uint64(3 + r.Intn(4)) },
	func(c *Config, r *rand.Rand) { c.Pipeline.FetchQueue = 16 + 16*r.Intn(3) },
	func(c *Config, r *rand.Rand) { c.Pipeline.ROBSize = 64 << r.Intn(4) },
	func(c *Config, r *rand.Rand) { c.Pipeline.IntRegs = 64 + 64*r.Intn(5) },
	func(c *Config, r *rand.Rand) { c.Pipeline.FPRegs = 64 + 64*r.Intn(5) },
	func(c *Config, r *rand.Rand) { c.Pipeline.IntIQ = 32 + 16*r.Intn(3) },
	func(c *Config, r *rand.Rand) { c.Pipeline.FPIQ = 32 + 16*r.Intn(3) },
	func(c *Config, r *rand.Rand) { c.Pipeline.LSIQ = 32 + 16*r.Intn(3) },
	func(c *Config, r *rand.Rand) { c.Pipeline.IntFU = 2 + r.Intn(4) },
	func(c *Config, r *rand.Rand) { c.Pipeline.MispredictRedirect = uint64(4 + r.Intn(8)) },
	func(c *Config, r *rand.Rand) { c.Pipeline.BranchPredRows = 1 << (8 + r.Intn(4)) },
	func(c *Config, r *rand.Rand) { c.Pipeline.Mem.IL1.SizeBytes = 32 << 10 << r.Intn(3) },
	func(c *Config, r *rand.Rand) { c.Pipeline.Mem.DL1.Ways = 1 << r.Intn(3) },
	func(c *Config, r *rand.Rand) { c.Pipeline.Mem.DL1.Latency = uint64(2 + r.Intn(3)) },
	func(c *Config, r *rand.Rand) { c.Pipeline.Mem.L2.SizeBytes = 512 << 10 << r.Intn(3) },
	func(c *Config, r *rand.Rand) { c.Pipeline.Mem.L2.Latency = uint64(10 + r.Intn(20)) },
	func(c *Config, r *rand.Rand) { c.Pipeline.Mem.MemLatency = uint64(200 + 100*r.Intn(3)) },
	func(c *Config, r *rand.Rand) { c.Pipeline.Mem.MSHRs = 8 << r.Intn(3) },
	func(c *Config, r *rand.Rand) { c.Pipeline.RunaheadCacheEntries = 16 << r.Intn(3) },
	func(c *Config, r *rand.Rand) { c.RunaheadExitPenalty = uint64(r.Intn(64)) },
	func(c *Config, r *rand.Rand) { c.TraceLen = 1000 * (1 + r.Intn(20)) },
	func(c *Config, r *rand.Rand) { c.MinIterations = 1 + r.Intn(3) },
	func(c *Config, r *rand.Rand) { c.WarmupInsts = 500 * r.Intn(4) },
	func(c *Config, r *rand.Rand) { c.MaxCycles = uint64(1_000_000 * (1 + r.Intn(10))) },
	func(c *Config, r *rand.Rand) { c.Seed = uint64(r.Intn(8)) },
}

// randConfig applies a random subset of mutators to the Table 1 machine.
func randConfig(r *rand.Rand) Config {
	c := DefaultConfig()
	for n := r.Intn(6); n > 0; n-- {
		mutators[r.Intn(len(mutators))](&c, r)
	}
	return c
}

// TestCanonicalFingerprintProperties checks, over a seeded random
// population of configurations, the three properties the simulation
// cache key contract rests on:
//
//  1. Canonical and Fingerprint are pure: repeated application to one
//     config yields identical strings (idempotence).
//  2. Canonical is a faithful encoding: configs are equal (Go ==, the
//     tree is plain comparable structs) iff their canonical strings are
//     equal, and equal canonical forms iff equal fingerprints.
//  3. Fingerprints are collision-free across the population: distinct
//     canonical forms never share a fingerprint (FNV-64 collisions are
//     possible in principle; the cache therefore keys by Canonical, and
//     this property keeps Fingerprint honest as an output label).
func TestCanonicalFingerprintProperties(t *testing.T) {
	r := rand.New(rand.NewSource(20080216)) // HPCA 2008
	population := make([]Config, 0, 600)
	for i := 0; i < 300; i++ {
		population = append(population, randConfig(r))
	}
	// Duplicate a third of the population so the equality direction of
	// property 2 is exercised by construction.
	population = append(population, population[:100]...)

	byFingerprint := map[string]string{} // fingerprint -> canonical
	byCanonical := map[string]Config{}   // canonical -> config
	for i, c := range population {
		canon, fp := c.Canonical(), c.Fingerprint()
		if c.Canonical() != canon || c.Fingerprint() != fp {
			t.Fatalf("config %d: Canonical/Fingerprint not idempotent", i)
		}
		if prev, ok := byCanonical[canon]; ok {
			if prev != c {
				t.Fatalf("config %d: unequal configs share canonical form:\n%s", i, canon)
			}
		} else {
			for pc, pcfg := range byCanonical {
				if pcfg == c {
					t.Fatalf("config %d: equal configs render distinct canonical forms:\n%s\n%s", i, pc, canon)
				}
			}
			byCanonical[canon] = c
		}
		if prev, ok := byFingerprint[fp]; ok {
			if prev != canon {
				t.Fatalf("fingerprint collision %s:\n%s\n%s", fp, prev, canon)
			}
		} else {
			byFingerprint[fp] = canon
		}
	}
	if len(byFingerprint) != len(byCanonical) {
		t.Fatalf("%d canonical forms vs %d fingerprints", len(byCanonical), len(byFingerprint))
	}
	if len(byCanonical) < 100 {
		t.Fatalf("population degenerate: only %d distinct configs", len(byCanonical))
	}
}
