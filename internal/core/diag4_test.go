package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// TestDiagGroupAverages sweeps a full Table 2 group under the main
// policies and prints group-average throughput and fairness — the actual
// Figure 1/2 quantities (run with -v).
func TestDiagGroupAverages(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	cfg := DefaultConfig()
	cfg.TraceLen = 10_000
	cfg.MaxCycles = 6_000_000

	st := NewSTCache(cfg)
	for _, g := range []string{"MIX2", "MEM2"} {
		for _, p := range []PolicyKind{PolicyICount, PolicySTALL, PolicyFLUSH, PolicyDCRA, PolicyHillClimbing, PolicyRaT} {
			var thrus, fairs []float64
			for i, w := range workload.MustByGroup(g) {
				if i%3 != 0 { // subsample: this is a dashboard, not the harness
					continue
				}
				c := cfg
				c.Policy = p
				res, err := Run(c, w)
				if err != nil {
					t.Fatal(err)
				}
				stv, err := st.STVector(w)
				if err != nil {
					t.Fatal(err)
				}
				thrus = append(thrus, metrics.Throughput(res.IPCs()))
				fairs = append(fairs, metrics.Fairness(stv, res.IPCs()))
			}
			t.Logf("%-5s %-14s thru=%.3f fair=%.3f", g, p,
				avg(thrus), avg(fairs))
		}
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
