// Package core is the simulator façade: it wires traces, policies, the
// pipeline and the measurement methodology into one callable API. This is
// the package examples and the experiment harness program against.
//
// A Run executes one multiprogrammed workload under one policy on the
// Table 1 machine, measured FAME-style (Vera et al., PACT 2007): every
// thread's trace re-executes in a loop, and the measurement window closes
// only when each thread has completed at least MinIterations full trace
// executions, so no thread is under-represented in the reported IPCs.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/rescontrol"
	"repro/internal/runahead"
	"repro/internal/simcache"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// PolicyKind selects the fetch/resource policy for a run.
type PolicyKind string

// The evaluated policies: the paper's baselines (ICOUNT, STALL, FLUSH from
// §5.1; DCRA, HillClimbing from §5.2), the RaT proposal, and the Figure 4
// ablation variants.
const (
	PolicyRR           PolicyKind = "RR"
	PolicyICount       PolicyKind = "ICOUNT"
	PolicySTALL        PolicyKind = "STALL"
	PolicyFLUSH        PolicyKind = "FLUSH"
	PolicyDCRA         PolicyKind = "DCRA"
	PolicyHillClimbing PolicyKind = "HillClimbing"
	PolicyRaT          PolicyKind = "RaT"
	// PolicyRaTNoPrefetch is Figure 4's "RaT without prefetching": runahead
	// periods happen but no access below the L1 is made during them.
	PolicyRaTNoPrefetch PolicyKind = "RaT-noprefetch"
	// PolicyRaTNoFetch is Figure 4's resource-availability experiment:
	// threads enter runahead but fetch nothing new during it.
	PolicyRaTNoFetch PolicyKind = "RaT-nofetch"
	// PolicyRaTCache is the §3.3 runahead-cache ablation.
	PolicyRaTCache PolicyKind = "RaT-racache"
	// PolicyRaTNoFPInv disables §3.3's FP invalidation.
	PolicyRaTNoFPInv PolicyKind = "RaT-nofpinv"
	// PolicyMLP is the MLP-aware fetch policy of the paper's related work
	// (§2, Eyerman & Eeckhout HPCA 2007): fetch-ahead bounded by a per-load
	// MLP predictor, then stall. Implemented as an extra comparator.
	PolicyMLP PolicyKind = "MLP"
	// PolicyRaTDCRA composes RaT with DCRA's resource caps — the
	// combination the paper's §5.2 explicitly leaves as future work
	// ("DCRA and HillClimbing are orthogonal to the mechanism proposed in
	// this paper"). Implemented here as an extension experiment.
	PolicyRaTDCRA PolicyKind = "RaT+DCRA"
)

// Policies lists the main evaluation policies in presentation order.
func Policies() []PolicyKind {
	return []PolicyKind{
		PolicyICount, PolicySTALL, PolicyFLUSH,
		PolicyDCRA, PolicyHillClimbing, PolicyRaT,
	}
}

// Config parameterizes a run.
type Config struct {
	// Pipeline is the machine description (DefaultConfig = Table 1).
	Pipeline pipeline.Config
	// Policy selects the fetch/resource policy.
	Policy PolicyKind
	// TraceLen is the per-thread synthetic trace length.
	TraceLen int
	// MinIterations is the FAME representation requirement: full trace
	// executions per thread before measurement may stop.
	MinIterations int
	// WarmupInsts is the per-thread committed-instruction count of the
	// timed-but-unmeasured warm phase that precedes measurement (cache,
	// predictor and policy state converge there). Zero selects half a
	// trace iteration.
	WarmupInsts int
	// MaxCycles bounds the run (safety valve; a run that hits it is still
	// reported, with Truncated set).
	MaxCycles uint64
	// Seed decorrelates workload instances.
	Seed uint64
	// RunaheadExitPenalty, when nonzero, overrides the exit penalty of the
	// policy-implied runahead configuration. It exists so configuration
	// sweeps (internal/scenario) can reach the runahead knob that is
	// otherwise derived from Policy inside Run.
	RunaheadExitPenalty uint64
}

// DefaultConfig returns the Table 1 machine with FAME measurement.
func DefaultConfig() Config {
	return Config{
		Pipeline:      pipeline.DefaultConfig(),
		Policy:        PolicyICount,
		TraceLen:      trace.DefaultLen,
		MinIterations: 1,
		MaxCycles:     30_000_000,
		Seed:          1,
	}
}

// ThreadResult is one hardware context's measurement.
type ThreadResult struct {
	// Benchmark is the SPEC benchmark name.
	Benchmark string
	// Committed is the architected instruction count at measurement end.
	Committed uint64
	// IPC is Committed / Cycles.
	IPC float64
	// Executed counts energy-consuming executions (ED² input).
	Executed uint64
	// L2MissLoads counts demand loads served by memory.
	L2MissLoads uint64
	// RunaheadEpisodes, PseudoRetired, Folded, PrefetchesIssued summarize
	// RaT activity.
	RunaheadEpisodes uint64
	PseudoRetired    uint64
	Folded           uint64
	PrefetchesIssued uint64
	// RegsNormal / RegsRunahead are the Figure 5 occupancy means.
	RegsNormal, RegsRunahead float64
	// CyclesInRunahead counts cycles the thread spent in runahead mode.
	CyclesInRunahead uint64
}

// Result is one run's measurement.
type Result struct {
	// Workload and Policy identify the run.
	Workload string
	Policy   PolicyKind
	// Cycles is the measurement window length.
	Cycles uint64
	// Threads holds per-context results.
	Threads []ThreadResult
	// ExecutedTotal sums executed instructions over threads (ED² input).
	ExecutedTotal uint64
	// CommittedTotal sums committed instructions.
	CommittedTotal uint64
	// Truncated reports that MaxCycles hit before FAME coverage completed.
	Truncated bool
}

// IPCs returns the per-thread IPC vector (eq. 1 / eq. 2 input).
func (r *Result) IPCs() []float64 {
	out := make([]float64, len(r.Threads))
	for i := range r.Threads {
		out[i] = r.Threads[i].IPC
	}
	return out
}

// buildPolicy maps a PolicyKind onto a pipeline policy plus the runahead
// configuration it implies.
func buildPolicy(kind PolicyKind) (pipeline.Policy, runahead.Config, error) {
	switch kind {
	case PolicyRR:
		return policy.RoundRobin{}, runahead.Disabled(), nil
	case PolicyICount, "":
		return pipeline.ICount{}, runahead.Disabled(), nil
	case PolicySTALL:
		return policy.Stall{}, runahead.Disabled(), nil
	case PolicyFLUSH:
		return policy.NewFlush(), runahead.Disabled(), nil
	case PolicyDCRA:
		return rescontrol.NewDCRA(), runahead.Disabled(), nil
	case PolicyHillClimbing:
		return rescontrol.NewHillClimbing(), runahead.Disabled(), nil
	case PolicyRaT:
		return pipeline.ICount{}, runahead.Default(), nil
	case PolicyRaTNoPrefetch:
		ra := runahead.Default()
		ra.Prefetch = false
		return pipeline.ICount{}, ra, nil
	case PolicyRaTNoFetch:
		ra := runahead.Default()
		ra.FetchInRunahead = false
		return pipeline.ICount{}, ra, nil
	case PolicyRaTCache:
		ra := runahead.Default()
		ra.UseRunaheadCache = true
		return pipeline.ICount{}, ra, nil
	case PolicyRaTNoFPInv:
		ra := runahead.Default()
		ra.InvalidateFP = false
		return pipeline.ICount{}, ra, nil
	case PolicyRaTDCRA:
		return rescontrol.NewDCRA(), runahead.Default(), nil
	case PolicyMLP:
		return policy.NewMLPAware(), runahead.Disabled(), nil
	}
	return nil, runahead.Config{}, fmt.Errorf("core: unknown policy %q", kind)
}

// withRunDefaults fills in the zero config fields Run documents as
// defaulted. Trace identity (TraceLen, Seed) is fixed after this, which
// batch grouping relies on.
func (cfg Config) withRunDefaults() Config {
	if cfg.TraceLen <= 0 {
		cfg.TraceLen = trace.DefaultLen
	}
	if cfg.MinIterations <= 0 {
		cfg.MinIterations = 1
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = DefaultConfig().MaxCycles
	}
	return cfg
}

// runState is one configuration's simulation, advanced in bounded slices
// so several configurations can share a pass over one trace set. The
// phase sequence and every coverage/limit check are exactly Run's
// historical loop: a runState advanced to completion — alone or
// interleaved with any number of sibling states — produces a Result
// bit-identical to the former monolithic Run, because each pipeline.Core
// is fully self-contained and traces are immutable.
type runState struct {
	cfg Config
	w   workload.Workload
	c   *pipeline.Core

	phase      int // 0 = warm, 1 = measure, 2 = done
	warm       uint64
	span       uint64
	truncated  bool
	startCycle uint64
	startStats []pipeline.ThreadStats
}

const (
	phaseWarm = iota
	phaseMeasure
	phaseDone
)

// newRunState builds the machine for one normalized configuration over
// already-materialized traces and pre-warms its caches.
func newRunState(cfg Config, w workload.Workload, traces []*trace.Trace) (*runState, error) {
	pol, ra, err := buildPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.RunaheadExitPenalty > 0 {
		ra.ExitPenalty = cfg.RunaheadExitPenalty
	}
	pcfg := cfg.Pipeline
	pcfg.Runahead = ra
	c, err := pipeline.New(pcfg, traces, pol)
	if err != nil {
		return nil, err
	}
	c.WarmupCaches()

	// Phase 1 — timed, unmeasured warm phase: cache contents, branch
	// predictor weights, and policy state (DCRA classification, hill-
	// climbing epochs) converge before measurement begins.
	warm := cfg.WarmupInsts
	if warm <= 0 {
		warm = cfg.TraceLen / 2
	}
	return &runState{
		cfg:  cfg,
		w:    w,
		c:    c,
		warm: uint64(warm),
		// Phase 2 — FAME measurement: run until every thread has committed
		// a further MinIterations full trace executions *beyond its
		// snapshot* (relative targets, so warm-phase overshoot cannot
		// shrink any thread's measured iteration count below the FAME
		// requirement).
		span: uint64(cfg.TraceLen) * uint64(cfg.MinIterations),
	}, nil
}

// covered reports whether every thread's committed count reached its
// per-thread target.
func (r *runState) covered(target func(tid int) uint64) bool {
	for tid := 0; tid < r.c.NumThreads(); tid++ {
		if r.c.Committed(tid) < target(tid) {
			return false
		}
	}
	return true
}

// snapshot records the measurement window start.
func (r *runState) snapshot() {
	r.startCycle = r.c.Cycle()
	r.startStats = make([]pipeline.ThreadStats, r.c.NumThreads())
	for tid := range r.startStats {
		r.startStats[tid] = *r.c.Stats(tid)
	}
}

// advance runs the phase coverage/limit checks and, unless they complete
// the run, one 256-cycle step block; it reports whether the run is done.
// Coverage is checked before the limit and phases transition without
// stepping, exactly as the historical per-phase loop did, so a state's
// cycle-by-cycle behaviour does not depend on how advance calls are
// interleaved with other states'.
func (r *runState) advance() bool {
	for {
		switch r.phase {
		case phaseWarm:
			if r.covered(func(int) uint64 { return r.warm }) {
				r.snapshot()
				r.phase = phaseMeasure
				continue
			}
			if r.c.Cycle() >= r.cfg.MaxCycles/2 {
				r.truncated = true
				r.snapshot()
				r.phase = phaseMeasure
				continue
			}
		case phaseMeasure:
			if r.covered(func(tid int) uint64 {
				return r.startStats[tid].Committed.Value() + r.span
			}) {
				r.phase = phaseDone
				return true
			}
			if r.c.Cycle() >= r.cfg.MaxCycles {
				r.truncated = true
				r.phase = phaseDone
				return true
			}
		default:
			return true
		}
		// Step in small batches to keep the coverage check off the
		// per-cycle path.
		for i := 0; i < 256; i++ {
			r.c.Step()
		}
		return false
	}
}

// result assembles the measurement of a completed state.
func (r *runState) result() *Result {
	cycles := r.c.Cycle() - r.startCycle
	res := &Result{
		Workload:  r.w.Name(),
		Policy:    r.cfg.Policy,
		Cycles:    cycles,
		Truncated: r.truncated,
	}
	for tid := 0; tid < r.c.NumThreads(); tid++ {
		cur, prev := r.c.Stats(tid), &r.startStats[tid]
		tr := ThreadResult{
			Benchmark:        r.w.Benchmarks[tid],
			Committed:        cur.Committed.Value() - prev.Committed.Value(),
			Executed:         cur.Executed.Value() - prev.Executed.Value(),
			L2MissLoads:      cur.L2MissLoads.Value() - prev.L2MissLoads.Value(),
			RunaheadEpisodes: cur.Runahead.Episodes.Value() - prev.Runahead.Episodes.Value(),
			PseudoRetired:    cur.Runahead.PseudoRetired.Value() - prev.Runahead.PseudoRetired.Value(),
			Folded:           cur.Runahead.Folded.Value() - prev.Runahead.Folded.Value(),
			PrefetchesIssued: cur.Runahead.PrefetchesIssued.Value() - prev.Runahead.PrefetchesIssued.Value(),
			RegsNormal:       deltaMean(&cur.RegsNormal, &prev.RegsNormal),
			RegsRunahead:     deltaMean(&cur.RegsRunahead, &prev.RegsRunahead),
			CyclesInRunahead: cur.Runahead.CyclesInRunahead.Value() - prev.Runahead.CyclesInRunahead.Value(),
		}
		if cycles > 0 {
			tr.IPC = float64(tr.Committed) / float64(cycles)
		}
		res.Threads = append(res.Threads, tr)
		res.ExecutedTotal += tr.Executed
		res.CommittedTotal += tr.Committed
	}
	return res
}

// Run executes workload w under cfg and returns its measurement.
func Run(cfg Config, w workload.Workload) (*Result, error) {
	return RunTraced(cfg, w, nil)
}

// RunTraced is Run against an explicit trace tier (nil = the process-wide
// default): the workload's traces are served from the tier, shared with
// every other run of the same identity, and treated as read-only.
func RunTraced(cfg Config, w workload.Workload, ts *tracestore.Store) (*Result, error) {
	cfg = cfg.withRunDefaults()
	if _, _, err := buildPolicy(cfg.Policy); err != nil {
		return nil, err
	}
	traces, err := w.TracesVia(ts, cfg.TraceLen, cfg.Seed)
	if err != nil {
		return nil, err
	}
	r, err := newRunState(cfg, w, traces)
	if err != nil {
		return nil, err
	}
	for !r.advance() {
	}
	return r.result(), nil
}

// RunBatch executes workload w under each configuration in one pass over
// a single shared trace set: the traces are materialized (or served from
// the tier) once, one independent machine is built per configuration, and
// the machines advance round-robin until each completes. Because every
// machine owns all of its mutable state and advances through exactly the
// checks Run performs, each returned Result is bit-identical to what
// Run(cfgs[i], w) returns — batching changes the schedule of the host
// process, never the simulated machines.
//
// All configurations must agree on trace identity (TraceLen and Seed
// after defaulting); RunBatch rejects mixed-identity batches. Any error —
// a bad policy anywhere in the batch, an invalid workload — fails the
// whole batch, so callers that need per-cell error attribution fall back
// to per-cell Run.
func RunBatch(cfgs []Config, w workload.Workload, ts *tracestore.Store) ([]*Result, error) {
	return RunBatchObserved(cfgs, w, ts, BatchObserver{})
}

// BatchObserver lets a RunBatchObserved caller watch a batch between
// round-robin rounds. Both hooks are optional, run on the calling
// goroutine, and never observe a machine mid-round.
type BatchObserver struct {
	// Finished is called once per configuration, with its final Result,
	// in the round its machine completes — possibly many rounds before
	// the batch as a whole returns. Streaming callers publish each cell
	// here instead of waiting for the full batch.
	Finished func(i int, r *Result)

	// Drop is polled after each round for every still-running
	// configuration; returning true removes configuration i from the
	// batch immediately — its machine stops advancing, Finished is never
	// called for it, and its slot in the returned slice is nil. Callers
	// use it to cancel cells whose requesters have gone away without
	// discarding the rest of the batch.
	Drop func(i int) bool
}

// RunBatchObserved is RunBatch with per-round observation hooks; a zero
// observer makes it RunBatch exactly. Every error return happens before
// any machine advances, so on error no hook has been called.
func RunBatchObserved(cfgs []Config, w workload.Workload, ts *tracestore.Store, obs BatchObserver) ([]*Result, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	norm := make([]Config, len(cfgs))
	for i := range cfgs {
		norm[i] = cfgs[i].withRunDefaults()
		if _, _, err := buildPolicy(norm[i].Policy); err != nil {
			return nil, err
		}
	}
	for i := 1; i < len(norm); i++ {
		if norm[i].TraceLen != norm[0].TraceLen || norm[i].Seed != norm[0].Seed {
			return nil, fmt.Errorf(
				"core: RunBatch config %d trace identity (len=%d, seed=%d) differs from config 0 (len=%d, seed=%d)",
				i, norm[i].TraceLen, norm[i].Seed, norm[0].TraceLen, norm[0].Seed)
		}
	}
	traces, err := w.TracesVia(ts, norm[0].TraceLen, norm[0].Seed)
	if err != nil {
		return nil, err
	}
	states := make([]*runState, len(norm))
	for i, cfg := range norm {
		st, err := newRunState(cfg, w, traces)
		if err != nil {
			return nil, err
		}
		states[i] = st
	}
	out := make([]*Result, len(states))
	for live := len(states); live > 0; {
		for i, st := range states {
			if st == nil || st.phase == phaseDone {
				continue
			}
			if st.advance() {
				live--
				out[i] = st.result()
				if obs.Finished != nil {
					obs.Finished(i, out[i])
				}
			}
		}
		if obs.Drop == nil {
			continue
		}
		for i, st := range states {
			if st != nil && st.phase != phaseDone && obs.Drop(i) {
				states[i] = nil
				live--
			}
		}
	}
	return out, nil
}

// deltaMean computes the mean of a RunningMean over the measurement window
// delimited by two snapshots.
func deltaMean(cur, prev *stats.RunningMean) float64 {
	dn := cur.Count() - prev.Count()
	if dn == 0 {
		return 0
	}
	return (cur.Sum() - prev.Sum()) / float64(dn)
}

// RunSingle measures one benchmark running alone — the IPC_ST reference
// of the fairness metric (eq. 2). Per Luo et al., the reference machine is
// the baseline processor (ICOUNT, no runahead), identical for every
// policy being compared.
func RunSingle(cfg Config, benchmark string) (*Result, error) {
	cfg.Policy = PolicyICount
	w := workload.Workload{Group: "ST", Benchmarks: []string{benchmark}}
	return Run(cfg, w)
}

// STCache memoizes single-thread reference IPCs keyed by benchmark (the
// machine configuration is fixed per cache instance). It is safe for
// concurrent use: simultaneous requests for one benchmark share a single
// simulation, singleflight-style. Errors memoize like results — a
// reference run's outcome is a pure function of the configuration, so a
// retry could never succeed.
type STCache struct {
	cfg Config
	g   *simcache.Cache[string, float64]
}

// NewSTCache builds a cache for the given machine configuration. The
// cache is unbounded: its key space is the 24-benchmark table, not
// untrusted input.
func NewSTCache(cfg Config) *STCache {
	return &STCache{cfg: cfg, g: simcache.New[string, float64](0, 0, nil)}
}

// compute runs the reference simulation and publishes its result.
func (s *STCache) compute(benchmark string, c *simcache.Call[float64]) {
	res, err := RunSingle(s.cfg, benchmark)
	if err != nil {
		c.Fulfill(0, err)
		return
	}
	c.Fulfill(res.Threads[0].IPC, nil)
}

// IPC returns the single-thread IPC for a benchmark, computing and
// memoizing it on first use. Concurrent callers for the same benchmark
// block until the one computation finishes.
func (s *STCache) IPC(benchmark string) (float64, error) {
	c, created := s.g.Begin(benchmark) //lint:ctxflow STCache is a ctx-free memo by design: a reference run must complete into the memo even if one requester dies, so the computation is never tied to a caller's context
	if created {
		s.compute(benchmark, c)
	}
	//lint:ctxflow reference runs are bounded CPU-pure work; waiting uncancellably matches the memo contract above
	return c.Wait()
}

// Begin registers benchmark and returns the computation the caller must
// run (on a worker of its choosing) if it is the first requester, or nil
// when the reference is already computed or in flight. Worker pools use it
// to avoid parking a pool slot on a run some other worker owns.
func (s *STCache) Begin(benchmark string) func() {
	c, created := s.g.Begin(benchmark) //lint:ctxflow registration into the shared memo is deliberately context-free; cancellation belongs to the worker pool that runs the returned thunk
	if !created {
		return nil
	}
	return func() { s.compute(benchmark, c) }
}

// Prewarm computes the reference runs for all benchmarks concurrently,
// bounded by workers (<=0 selects GOMAXPROCS), and returns the first
// error. Results are memoized, so subsequent IPC and STVector calls are
// lookups. Duplicate names cost nothing: only first registrations occupy
// a worker.
func (s *STCache) Prewarm(benchmarks []string, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, b := range benchmarks {
		fn := s.Begin(b)
		if fn == nil {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn()
		}()
	}
	wg.Wait()
	for _, b := range benchmarks {
		if _, err := s.IPC(b); err != nil {
			return err
		}
	}
	return nil
}

// STVector returns the IPC_ST vector for a workload.
func (s *STCache) STVector(w workload.Workload) ([]float64, error) {
	out := make([]float64, 0, len(w.Benchmarks))
	for _, b := range w.Benchmarks {
		v, err := s.IPC(b)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
