package core

import (
	"fmt"
	"hash/fnv"
)

// Canonical returns a deterministic, human-readable encoding of every
// field of the configuration — pipeline geometry, memory hierarchy,
// runahead settings, policy, and measurement parameters. Two configs have
// equal canonical strings iff they are equal, so the string is a
// collision-free cache key: the experiment session's singleflight cache
// and the scenario engine key runs by (workload, Canonical) instead of
// the old (workload, policy, regs) triple, which made every other knob
// invisible to caching.
//
// Config is a tree of plain comparable structs (no pointers, slices or
// maps), so the %+v rendering is total and deterministic, and picks up
// new fields automatically as the machine description grows.
func (c Config) Canonical() string {
	return fmt.Sprintf("%+v", c)
}

// Fingerprint returns a short stable hex digest of Canonical, for result
// labelling (JSON/CSV output, logs). Use Canonical itself where collisions
// must be impossible (cache keys).
func (c Config) Fingerprint() string {
	h := fnv.New64a()
	h.Write([]byte(c.Canonical()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// ParsePolicy validates a policy name from user input (flags, scenario
// files) and returns it as a PolicyKind, with the valid names in the
// error. The empty string parses as ICOUNT, matching Run's default.
func ParsePolicy(name string) (PolicyKind, error) {
	k := PolicyKind(name)
	if _, _, err := buildPolicy(k); err != nil {
		return "", fmt.Errorf("unknown policy %q (valid: %s)", name, policyNames())
	}
	if k == "" {
		k = PolicyICount
	}
	return k, nil
}

// allPolicies lists every accepted policy, main evaluation set first.
func allPolicies() []PolicyKind {
	return append(Policies(),
		PolicyRR, PolicyRaTNoPrefetch, PolicyRaTNoFetch, PolicyRaTCache,
		PolicyRaTNoFPInv, PolicyMLP, PolicyRaTDCRA)
}

func policyNames() string {
	var s string
	for i, p := range allPolicies() {
		if i > 0 {
			s += ", "
		}
		s += string(p)
	}
	return s
}
