package core

import (
	"testing"

	"repro/internal/workload"
)

// TestDiagSingleThread prints per-benchmark single-thread behaviour under
// ICOUNT and RaT — the calibration dashboard (run with -v).
func TestDiagSingleThread(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	cfg := DefaultConfig()
	cfg.TraceLen = 12_000
	cfg.MaxCycles = 6_000_000

	for _, b := range []string{"art", "mcf", "swim", "twolf", "gzip", "eon", "gcc"} {
		for _, p := range []PolicyKind{PolicyICount, PolicyRaT} {
			c := cfg
			c.Policy = p
			w := workload.Workload{Group: "ST", Benchmarks: []string{b}}
			res, err := Run(c, w)
			if err != nil {
				t.Fatal(err)
			}
			tr := res.Threads[0]
			t.Logf("%-6s %-7s ipc=%.3f l2miss/kinst=%.1f episodes=%d pseudo=%d prefetch=%d cycles=%d",
				b, p, tr.IPC,
				1000*float64(tr.L2MissLoads)/float64(tr.Committed),
				tr.RunaheadEpisodes, tr.PseudoRetired, tr.PrefetchesIssued, res.Cycles)
		}
	}
}
