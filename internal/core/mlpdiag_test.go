package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// TestDiagMLPPolicy compares the related-work MLP-aware fetch policy with
// STALL and RaT on memory-bound workloads (dashboard; run with -v).
func TestDiagMLPPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	cfg := DefaultConfig()
	cfg.TraceLen = 10_000
	cfg.MaxCycles = 6_000_000
	for _, p := range []PolicyKind{PolicySTALL, PolicyMLP, PolicyRaT} {
		var thrus []float64
		for i, w := range workload.MustByGroup("MEM2") {
			if i%3 != 0 {
				continue
			}
			c := cfg
			c.Policy = p
			res, err := Run(c, w)
			if err != nil {
				t.Fatal(err)
			}
			thrus = append(thrus, metrics.Throughput(res.IPCs()))
		}
		t.Logf("MEM2 %-6s thru=%.3f", p, avg(thrus))
	}
}
