package core

import (
	"testing"

	"repro/internal/workload"
)

// TestDiagMix prints per-thread behaviour for one MIX2 workload under each
// policy (calibration dashboard; run with -v).
func TestDiagMix(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	cfg := DefaultConfig()
	cfg.TraceLen = 12_000
	cfg.MaxCycles = 6_000_000

	w := workload.MustByGroup("MIX2")[1] // art+gzip
	for _, p := range []PolicyKind{PolicyICount, PolicySTALL, PolicyFLUSH, PolicyRaT} {
		c := cfg
		c.Policy = p
		res, err := Run(c, w)
		if err != nil {
			t.Fatal(err)
		}
		for _, th := range res.Threads {
			t.Logf("%-14s %-6s ipc=%.3f l2m/ki=%.1f eps=%d pref=%d regsN=%.0f regsRA=%.0f raCyc=%d",
				p, th.Benchmark, th.IPC,
				1000*float64(th.L2MissLoads)/float64(th.Committed),
				th.RunaheadEpisodes, th.PrefetchesIssued, th.RegsNormal, th.RegsRunahead, th.CyclesInRunahead)
		}
	}
}
