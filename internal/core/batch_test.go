package core

import (
	"reflect"
	"testing"

	"repro/internal/tracestore"
	"repro/internal/workload"
)

// batchTestConfig keeps batch-equivalence runs short while still crossing
// both phases and some runahead activity.
func batchTestConfig(policy PolicyKind) Config {
	cfg := DefaultConfig()
	cfg.Policy = policy
	cfg.TraceLen = 2000
	cfg.MaxCycles = 2_000_000
	return cfg
}

// TestRunBatchMatchesRun is the core batching invariant: for every
// configuration in a batch, the batched result is deeply equal — every
// counter, cycle count and float — to a standalone Run of that
// configuration. The batch mixes policies and machine geometries so the
// round-robin interleaving crosses states in different phases.
func TestRunBatchMatchesRun(t *testing.T) {
	w := workload.Workload{Group: "MEM2", Benchmarks: []string{"art", "mcf"}}
	cfgs := []Config{
		batchTestConfig(PolicyICount),
		batchTestConfig(PolicyRaT),
		batchTestConfig(PolicyFLUSH),
		batchTestConfig(PolicyRaT),
	}
	cfgs[3].Pipeline.ROBSize = 128
	cfgs[3].Pipeline.IntRegs = 160
	cfgs[3].Pipeline.FPRegs = 160

	batched, err := RunBatch(cfgs, w, tracestore.New(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(cfgs) {
		t.Fatalf("%d results for %d configs", len(batched), len(cfgs))
	}
	for i, cfg := range cfgs {
		scalar, err := Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched[i], scalar) {
			t.Errorf("config %d (%s): batched result differs from scalar Run\nbatched: %+v\nscalar:  %+v",
				i, cfg.Policy, batched[i], scalar)
		}
	}
}

// TestRunBatchSingleton pins the K=1 degenerate case to the scalar path's
// exact output.
func TestRunBatchSingleton(t *testing.T) {
	w := workload.Workload{Group: "MIX2", Benchmarks: []string{"art", "gzip"}}
	cfg := batchTestConfig(PolicyRaT)
	batched, err := RunBatch([]Config{cfg}, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched[0], scalar) {
		t.Fatal("singleton batch differs from scalar Run")
	}
}

func TestRunBatchEmpty(t *testing.T) {
	out, err := RunBatch(nil, workload.Workload{Group: "X", Benchmarks: []string{"art"}}, nil)
	if err != nil || out != nil {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

func TestRunBatchRejectsMixedTraceIdentity(t *testing.T) {
	w := workload.Workload{Group: "MEM2", Benchmarks: []string{"art", "mcf"}}
	a, b := batchTestConfig(PolicyICount), batchTestConfig(PolicyICount)
	b.Seed = a.Seed + 1
	if _, err := RunBatch([]Config{a, b}, w, nil); err == nil {
		t.Fatal("no error for mixed seeds in one batch")
	}
	b = batchTestConfig(PolicyICount)
	b.TraceLen = a.TraceLen * 2
	if _, err := RunBatch([]Config{a, b}, w, nil); err == nil {
		t.Fatal("no error for mixed trace lengths in one batch")
	}
}

func TestRunBatchBadPolicyFailsBatch(t *testing.T) {
	w := workload.Workload{Group: "MEM2", Benchmarks: []string{"art", "mcf"}}
	cfgs := []Config{batchTestConfig(PolicyICount), batchTestConfig("no-such-policy")}
	if _, err := RunBatch(cfgs, w, nil); err == nil {
		t.Fatal("no error for unknown policy in batch")
	}
}

// TestRunBatchSharesTraces asserts the point of batching: a K-config
// batch generates each of the workload's trace identities exactly once.
func TestRunBatchSharesTraces(t *testing.T) {
	ts := tracestore.New(0)
	w := workload.Workload{Group: "MEM2", Benchmarks: []string{"art", "mcf"}}
	cfgs := []Config{
		batchTestConfig(PolicyICount),
		batchTestConfig(PolicyRaT),
		batchTestConfig(PolicyFLUSH),
	}
	if _, err := RunBatch(cfgs, w, ts); err != nil {
		t.Fatal(err)
	}
	if got := ts.Generated(); got != uint64(len(w.Benchmarks)) {
		t.Fatalf("batch of %d configs generated %d traces, want %d",
			len(cfgs), got, len(w.Benchmarks))
	}
}

// TestRunBatchObservedFinished: the Finished hook fires exactly once per
// configuration, with the same Result the batch returns, and never after
// an error (errors precede the first round).
func TestRunBatchObservedFinished(t *testing.T) {
	w := workload.Workload{Group: "MEM2", Benchmarks: []string{"art", "mcf"}}
	cfgs := []Config{
		batchTestConfig(PolicyICount),
		batchTestConfig(PolicyRaT),
		batchTestConfig(PolicyFLUSH),
	}
	finished := make(map[int]*Result)
	out, err := RunBatchObserved(cfgs, w, nil, BatchObserver{
		Finished: func(i int, r *Result) {
			if _, dup := finished[i]; dup {
				t.Errorf("Finished(%d) called twice", i)
			}
			finished[i] = r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(finished) != len(cfgs) {
		t.Fatalf("Finished fired %d times for %d configs", len(finished), len(cfgs))
	}
	for i := range cfgs {
		if finished[i] != out[i] {
			t.Errorf("config %d: Finished saw a different Result than the batch returned", i)
		}
	}

	bad := []Config{batchTestConfig("no-such-policy")}
	if _, err := RunBatchObserved(bad, w, nil, BatchObserver{
		Finished: func(int, *Result) { t.Error("Finished fired on a failed batch") },
	}); err == nil {
		t.Fatal("no error for unknown policy")
	}
}

// TestRunBatchObservedDrop: dropping a configuration mid-batch leaves
// its slot nil, skips its Finished call, and does not perturb the other
// machines — their results stay bit-identical to scalar runs.
func TestRunBatchObservedDrop(t *testing.T) {
	w := workload.Workload{Group: "MEM2", Benchmarks: []string{"art", "mcf"}}
	cfgs := []Config{
		batchTestConfig(PolicyICount),
		batchTestConfig(PolicyRaT),
		batchTestConfig(PolicyFLUSH),
	}
	dropped := false
	out, err := RunBatchObserved(cfgs, w, nil, BatchObserver{
		Finished: func(i int, r *Result) {
			if i == 1 {
				t.Error("Finished fired for the dropped config")
			}
		},
		Drop: func(i int) bool {
			if i == 1 && !dropped {
				dropped = true
				return true
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dropped {
		t.Fatal("Drop was never consulted")
	}
	if out[1] != nil {
		t.Error("dropped config produced a Result")
	}
	for _, i := range []int{0, 2} {
		scalar, err := Run(cfgs[i], w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out[i], scalar) {
			t.Errorf("config %d diverges from scalar Run after a mid-batch drop", i)
		}
	}
}
