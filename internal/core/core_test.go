package core

import (
	"testing"

	"repro/internal/workload"
)

func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.TraceLen = 4_000
	cfg.MaxCycles = 3_000_000
	return cfg
}

func TestRunBasics(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyRaT
	w := workload.MustByGroup("MIX2")[1]
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != w.Name() || res.Policy != PolicyRaT {
		t.Fatal("result identity wrong")
	}
	if res.Cycles == 0 || res.Truncated {
		t.Fatalf("cycles=%d truncated=%v", res.Cycles, res.Truncated)
	}
	if len(res.Threads) != 2 {
		t.Fatalf("threads = %d", len(res.Threads))
	}
	for i, th := range res.Threads {
		if th.Benchmark != w.Benchmarks[i] {
			t.Errorf("thread %d benchmark %q", i, th.Benchmark)
		}
		// FAME: every thread must have committed at least one full
		// measured trace iteration.
		if th.Committed < uint64(cfg.TraceLen) {
			t.Errorf("thread %d committed %d < trace length %d (FAME violated)",
				i, th.Committed, cfg.TraceLen)
		}
		if th.IPC <= 0 {
			t.Errorf("thread %d IPC %v", i, th.IPC)
		}
	}
	if res.CommittedTotal == 0 || res.ExecutedTotal == 0 {
		t.Fatal("zero totals")
	}
	if got := len(res.IPCs()); got != 2 {
		t.Fatalf("IPCs length %d", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyRaT
	w := workload.MustByGroup("MEM2")[1]
	a, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.CommittedTotal != b.CommittedTotal ||
		a.ExecutedTotal != b.ExecutedTotal {
		t.Fatalf("nondeterministic runs: %+v vs %+v", a, b)
	}
	for i := range a.Threads {
		if a.Threads[i] != b.Threads[i] {
			t.Fatalf("thread %d results differ", i)
		}
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	cfg := fastCfg()
	w := workload.MustByGroup("MEM2")[1]
	a, _ := Run(cfg, w)
	cfg.Seed = 99
	b, _ := Run(cfg, w)
	if a.Cycles == b.Cycles && a.ExecutedTotal == b.ExecutedTotal {
		t.Fatal("different seeds produced identical measurements (suspicious)")
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = "bogus"
	if _, err := Run(cfg, workload.MustByGroup("ILP2")[0]); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestAllPoliciesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("policy sweep")
	}
	w := workload.MustByGroup("MIX2")[1]
	kinds := append(Policies(),
		PolicyRR, PolicyRaTNoPrefetch, PolicyRaTNoFetch, PolicyRaTCache,
		PolicyRaTNoFPInv, PolicyRaTDCRA)
	for _, p := range kinds {
		cfg := fastCfg()
		cfg.Policy = p
		res, err := Run(cfg, w)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.CommittedTotal == 0 {
			t.Errorf("%s: nothing committed", p)
		}
	}
}

func TestRaTDCRAComposition(t *testing.T) {
	if testing.Short() {
		t.Skip("composition sweep")
	}
	// The future-work composition must still enter runahead (DCRA caps
	// must not suppress the mechanism).
	cfg := fastCfg()
	cfg.Policy = PolicyRaTDCRA
	res, err := Run(cfg, workload.MustByGroup("MEM2")[1])
	if err != nil {
		t.Fatal(err)
	}
	eps := uint64(0)
	for _, th := range res.Threads {
		eps += th.RunaheadEpisodes
	}
	if eps == 0 {
		t.Fatal("RaT+DCRA never entered runahead")
	}
}

func TestSTCacheMemoizes(t *testing.T) {
	st := NewSTCache(fastCfg())
	a, err := st.IPC("gzip")
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.IPC("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("memoized value changed")
	}
	if a <= 0 {
		t.Fatalf("gzip ST IPC = %v", a)
	}
	v, err := st.STVector(workload.Workload{Group: "x", Benchmarks: []string{"gzip", "gzip"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 2 || v[0] != v[1] {
		t.Fatalf("vector = %v", v)
	}
}

func TestTruncationReported(t *testing.T) {
	cfg := fastCfg()
	cfg.MaxCycles = 2_000 // absurdly small
	res, err := Run(cfg, workload.MustByGroup("MEM2")[1])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("truncation not reported")
	}
}

func TestRegisterOverrideApplied(t *testing.T) {
	cfg := fastCfg()
	cfg.Pipeline.IntRegs = 64
	cfg.Pipeline.FPRegs = 64
	cfg.Policy = PolicyRaT
	res, err := Run(cfg, workload.MustByGroup("MEM2")[1])
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range res.Threads {
		if th.RegsNormal > 128 || th.RegsRunahead > 128 {
			t.Fatalf("occupancy exceeds 64+64 files: %+v", th)
		}
	}
}
