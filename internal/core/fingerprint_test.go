package core

import (
	"strings"
	"testing"
)

func TestCanonicalDistinguishesEveryKnob(t *testing.T) {
	base := DefaultConfig()
	variants := []func(*Config){
		func(c *Config) { c.Policy = PolicyRaT },
		func(c *Config) { c.Pipeline.ROBSize = 256 },
		func(c *Config) { c.Pipeline.IntRegs = 192 },
		func(c *Config) { c.Pipeline.Width = 4 },
		func(c *Config) { c.Pipeline.Mem.L2.Latency = 30 },
		func(c *Config) { c.Pipeline.Mem.MemLatency = 200 },
		func(c *Config) { c.Pipeline.Runahead.Prefetch = true },
		func(c *Config) { c.Seed = 2 },
		func(c *Config) { c.TraceLen = 999 },
	}
	seen := map[string]int{base.Canonical(): -1}
	for i, mutate := range variants {
		c := base
		mutate(&c)
		canon := c.Canonical()
		if prev, dup := seen[canon]; dup {
			t.Errorf("variant %d collides with %d: %s", i, prev, canon)
		}
		seen[canon] = i
	}
}

func TestCanonicalDeterministic(t *testing.T) {
	a, b := DefaultConfig(), DefaultConfig()
	if a.Canonical() != b.Canonical() {
		t.Fatal("equal configs render different canonical strings")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal configs render different fingerprints")
	}
	if len(a.Fingerprint()) != 16 {
		t.Fatalf("fingerprint %q not 16 hex chars", a.Fingerprint())
	}
	c := a
	c.Pipeline.ROBSize++
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("ROB change did not change the fingerprint")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"ICOUNT", "RaT", "FLUSH", "DCRA", "HillClimbing", "RaT-noprefetch", "MLP"} {
		k, err := ParsePolicy(name)
		if err != nil || string(k) != name {
			t.Errorf("ParsePolicy(%q) = %q, %v", name, k, err)
		}
	}
	if k, err := ParsePolicy(""); err != nil || k != PolicyICount {
		t.Errorf("empty policy = %q, %v, want ICOUNT", k, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	} else if !strings.Contains(err.Error(), "RaT") {
		t.Errorf("error does not list valid policies: %v", err)
	}
}
