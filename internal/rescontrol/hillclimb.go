package rescontrol

import (
	"repro/internal/pipeline"
)

// HillClimbing is the Choi & Yeung learning-based resource distributor in
// its throughput-guided form ("Hill-Thru" — the variant the paper
// evaluates, since the others need offline single-thread IPCs). The
// machine's partitionable resources (ROB share, physical registers, issue
// queue entries) are divided by a per-thread share vector. Learning is
// epoch-based gradient ascent: each round tries boosting each thread's
// share by Delta for one epoch, measures throughput, then moves the base
// partition toward the best trial.
type HillClimbing struct {
	// EpochCycles is the trial epoch length.
	EpochCycles uint64
	// Delta is the share boost applied to the trial thread.
	Delta float64

	shares   []float64 // base partition, sums to 1
	trial    int       // thread whose share is boosted this epoch
	inEpoch  uint64    // cycles elapsed in the current epoch
	baseline uint64    // committed count at epoch start
	scores   []float64 // per-trial throughput of the current round
	started  bool
}

// NewHillClimbing returns the policy with the paper-scale parameters.
func NewHillClimbing() *HillClimbing {
	return &HillClimbing{EpochCycles: 16384, Delta: 0.10}
}

// Name implements pipeline.Policy.
func (*HillClimbing) Name() string { return "HillClimbing" }

// FetchPriority implements pipeline.Policy: ICOUNT priority order.
func (*HillClimbing) FetchPriority(c *pipeline.Core, buf []int) []int {
	return c.ThreadsByICount(buf)
}

// init sizes the share vector on first use.
func (h *HillClimbing) init(c *pipeline.Core) {
	if h.started {
		return
	}
	n := c.NumThreads()
	h.shares = make([]float64, n)
	for i := range h.shares {
		h.shares[i] = 1 / float64(n)
	}
	h.scores = make([]float64, n)
	h.baseline = c.CommittedTotal()
	h.started = true
	if h.EpochCycles == 0 {
		h.EpochCycles = 16384
	}
	if h.Delta <= 0 {
		h.Delta = 0.10
	}
}

// effectiveShare returns tid's share under the current trial.
func (h *HillClimbing) effectiveShare(c *pipeline.Core, tid int) float64 {
	h.init(c)
	n := len(h.shares)
	s := h.shares[tid]
	if n > 1 {
		if tid == h.trial {
			s += h.Delta
		} else {
			s -= h.Delta / float64(n-1)
		}
	}
	if s < 0.05 {
		s = 0.05
	}
	return s
}

// CanDispatch implements pipeline.Policy: enforce the partition on the
// ROB, the register files, and the issue queues.
func (h *HillClimbing) CanDispatch(c *pipeline.Core, tid int) bool {
	s := h.effectiveShare(c, tid)
	cfg := c.Config()
	if c.ROBOccupancy(tid) >= lim(s, cfg.ROBSize) {
		return false
	}
	if c.IntRegsHeld(tid) >= lim(s, cfg.IntRegs) {
		return false
	}
	if c.FPRegsHeld(tid) >= lim(s, cfg.FPRegs) {
		return false
	}
	if c.IQHeld(tid, pipeline.IQInt) >= lim(s, cfg.IntIQ) {
		return false
	}
	if c.IQHeld(tid, pipeline.IQFP) >= lim(s, cfg.FPIQ) {
		return false
	}
	if c.IQHeld(tid, pipeline.IQLS) >= lim(s, cfg.LSIQ) {
		return false
	}
	return true
}

// lim converts a fractional share into an entry allowance, floored at 8
// so a trial never starves a thread outright.
func lim(share float64, capacity int) int {
	l := int(share * float64(capacity))
	if l < 8 {
		l = 8
	}
	return l
}

// OnL2Miss implements pipeline.Policy.
func (*HillClimbing) OnL2Miss(*pipeline.Core, *pipeline.DynInst) {}

// Tick implements pipeline.Policy: epoch accounting and the gradient move.
func (h *HillClimbing) Tick(c *pipeline.Core) {
	h.init(c)
	h.inEpoch++
	if h.inEpoch < h.EpochCycles {
		return
	}
	// Epoch boundary: score the trial by committed throughput.
	committed := c.CommittedTotal()
	h.scores[h.trial] = float64(committed - h.baseline)
	h.baseline = committed
	h.inEpoch = 0
	h.trial++
	if h.trial < len(h.shares) {
		return
	}
	// Round complete: move the base partition toward the best trial.
	h.trial = 0
	best := 0
	for i, s := range h.scores {
		if s > h.scores[best] {
			best = i
		}
	}
	n := float64(len(h.shares))
	for i := range h.shares {
		if i == best {
			h.shares[i] += h.Delta / 2
		} else {
			h.shares[i] -= h.Delta / 2 / (n - 1)
		}
		if h.shares[i] < 0.05 {
			h.shares[i] = 0.05
		}
	}
	// Renormalize.
	var sum float64
	for _, s := range h.shares {
		sum += s
	}
	for i := range h.shares {
		h.shares[i] /= sum
	}
}

// Shares returns a copy of the current base partition (diagnostics).
func (h *HillClimbing) Shares() []float64 {
	out := make([]float64, len(h.shares))
	copy(out, h.shares)
	return out
}
