package rescontrol

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

func memTrace(n int) *trace.Trace {
	insts := make([]isa.Inst, n)
	for i := range insts {
		if i%8 == 0 {
			insts[i] = isa.Inst{
				PC: 0x400000 + uint64(4*(i%256)), Op: isa.OpLoad,
				Dst: isa.IntReg(1 + (i/8)%8), Src1: isa.IntReg(28),
				Addr: 0x10_0000_0000 + uint64(i)*4096,
			}
		} else {
			insts[i] = isa.Inst{
				PC: 0x400000 + uint64(4*(i%256)), Op: isa.OpIntAlu,
				Dst: isa.IntReg(10 + i%10), Src1: isa.IntReg(1 + (i/8)%8),
				Src2: isa.IntReg(29),
			}
		}
	}
	return trace.FromInsts("mem", trace.ClassMEM, insts)
}

func ilpTrace(n int) *trace.Trace {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{
			PC: 0x400000 + uint64(4*(i%256)), Op: isa.OpIntAlu,
			Dst: isa.IntReg(1 + i%20), Src1: isa.IntReg(28), Src2: isa.IntReg(29),
		}
	}
	return trace.FromInsts("ilp", trace.ClassILP, insts)
}

func runCore(t *testing.T, pol pipeline.Policy, traces []*trace.Trace, cycles int) *pipeline.Core {
	t.Helper()
	c, err := pipeline.New(pipeline.DefaultConfig(), traces, pol)
	if err != nil {
		t.Fatal(err)
	}
	c.WarmupICache()
	c.SetParanoid(true)
	for i := 0; i < cycles; i++ {
		c.Step()
	}
	return c
}

func TestDCRAName(t *testing.T) {
	if NewDCRA().Name() != "DCRA" {
		t.Fatal("name")
	}
	if NewHillClimbing().Name() != "HillClimbing" {
		t.Fatal("name")
	}
}

func TestDCRACapsHog(t *testing.T) {
	// Under DCRA, a MEM thread must not monopolize the INT issue queue:
	// the ILP partner should do better than under plain ICOUNT.
	traces := func() []*trace.Trace {
		return []*trace.Trace{ilpTrace(1000), memTrace(4000)}
	}
	icount := runCore(t, pipeline.ICount{}, traces(), 15000)
	dcra := runCore(t, NewDCRA(), traces(), 15000)
	if dcra.Committed(0) <= icount.Committed(0) {
		t.Fatalf("ILP partner under DCRA (%d) not better than ICOUNT (%d)",
			dcra.Committed(0), icount.Committed(0))
	}
}

func TestDCRASlowThreadGetsLargerShare(t *testing.T) {
	d := NewDCRA()
	c, err := pipeline.New(pipeline.DefaultConfig(),
		[]*trace.Trace{memTrace(4000), ilpTrace(500)}, d)
	if err != nil {
		t.Fatal(err)
	}
	c.WarmupICache()
	for i := 0; i < 5000; i++ {
		c.Step()
		if c.PendingL2Miss(0) && !c.PendingL2Miss(1) {
			w, total := d.weights(c)
			if w[0] != d.SlowWeight || w[1] != 1 {
				t.Fatalf("weights = %v", w[:2])
			}
			if total != d.SlowWeight+1 {
				t.Fatalf("total = %d", total)
			}
			return
		}
	}
	t.Fatal("never saw slow/fast classification split")
}

func TestDCRABothProgress(t *testing.T) {
	c := runCore(t, NewDCRA(), []*trace.Trace{memTrace(4000), memTrace(4000)}, 20000)
	if c.Committed(0) == 0 || c.Committed(1) == 0 {
		t.Fatal("starvation under DCRA")
	}
}

func TestHillClimbingSharesEvolve(t *testing.T) {
	h := NewHillClimbing()
	h.EpochCycles = 256 // fast epochs for the test
	c, err := pipeline.New(pipeline.DefaultConfig(),
		[]*trace.Trace{ilpTrace(1000), memTrace(4000)}, h)
	if err != nil {
		t.Fatal(err)
	}
	c.WarmupICache()
	for i := 0; i < 20000; i++ {
		c.Step()
	}
	shares := h.Shares()
	var sum float64
	for _, s := range shares {
		if s < 0.04 {
			t.Fatalf("share collapsed: %v", shares)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("shares do not sum to 1: %v (sum %v)", shares, sum)
	}
	// The ILP thread converts resources into throughput; hill climbing
	// should not leave the partition at exactly uniform.
	if math.Abs(shares[0]-0.5) < 1e-9 && math.Abs(shares[1]-0.5) < 1e-9 {
		t.Fatal("partition never moved")
	}
}

func TestHillClimbingBothProgress(t *testing.T) {
	h := NewHillClimbing()
	h.EpochCycles = 512
	c := runCore(t, h, []*trace.Trace{memTrace(4000), ilpTrace(1000)}, 20000)
	if c.Committed(0) == 0 || c.Committed(1) == 0 {
		t.Fatal("starvation under hill climbing")
	}
}

func TestHillClimbingSingleThread(t *testing.T) {
	// Degenerate single-thread case must not divide by zero or stall.
	h := NewHillClimbing()
	h.EpochCycles = 256
	c := runCore(t, h, []*trace.Trace{ilpTrace(1000)}, 5000)
	if c.Committed(0) == 0 {
		t.Fatal("single thread starved under hill climbing")
	}
}

func TestHillClimbingImprovesOverICountForMix(t *testing.T) {
	// Dynamic partitioning should beat plain ICOUNT for a MIX workload in
	// total throughput (the paper's Figure 2 ordering).
	traces := func() []*trace.Trace {
		return []*trace.Trace{ilpTrace(1000), memTrace(4000)}
	}
	icount := runCore(t, pipeline.ICount{}, traces(), 30000)
	h := NewHillClimbing()
	h.EpochCycles = 2048
	hill := runCore(t, h, traces(), 30000)
	ic, hc := icount.CommittedTotal(), hill.CommittedTotal()
	if float64(hc) < 0.95*float64(ic) {
		t.Fatalf("hill climbing total (%d) well below ICOUNT (%d)", hc, ic)
	}
}
