// Package rescontrol implements the paper's dynamic resource control
// comparators: DCRA (Cazorla et al., "Dynamically controlled resource
// allocation in SMT processors", MICRO 2004) and Hill Climbing (Choi &
// Yeung, "Learning-based SMT processor resource distribution via
// hill-climbing", ISCA 2006). Both plug into the pipeline as Policies
// whose CanDispatch hook enforces per-thread resource caps.
package rescontrol

import (
	"repro/internal/pipeline"
)

// DCRA monitors per-thread resource usage and grants memory-intensive
// ("slow") threads a larger share of the critical shared resources,
// gating any thread that exceeds its share. Classification follows the
// DCRA paper's spirit: a thread with an outstanding cache miss is slow;
// shares weight slow threads by SlowWeight.
type DCRA struct {
	// SlowWeight is the share multiplier for slow threads (the DCRA
	// paper's C parameter; 4 reproduces its "slow threads need roughly 4x
	// the registers" observation).
	SlowWeight int
}

// NewDCRA returns DCRA with the paper's weighting.
func NewDCRA() *DCRA { return &DCRA{SlowWeight: 4} }

// Name implements pipeline.Policy.
func (*DCRA) Name() string { return "DCRA" }

// FetchPriority implements pipeline.Policy: DCRA keeps ICOUNT fetch
// priority; its control is in the allocation caps.
func (*DCRA) FetchPriority(c *pipeline.Core, buf []int) []int {
	return c.ThreadsByICount(buf)
}

// weights returns each thread's share weight and the total.
func (d *DCRA) weights(c *pipeline.Core) (w [8]int, total int) {
	sw := d.SlowWeight
	if sw <= 0 {
		sw = 4
	}
	for tid := 0; tid < c.NumThreads(); tid++ {
		w[tid] = 1
		if c.PendingL2Miss(tid) || c.InRunahead(tid) {
			w[tid] = sw
		}
		total += w[tid]
	}
	return w, total
}

// share returns a thread's allowance of a capacity-limited resource given
// its weight, floored so no thread starves below a minimal allocation.
func share(capacity, weight, total int) int {
	s := capacity * weight / total
	if s < 4 {
		s = 4
	}
	return s
}

// CanDispatch implements pipeline.Policy: a thread may dispatch while its
// usage of every capped resource (physical registers and issue queue
// entries) stays within its weighted share.
func (d *DCRA) CanDispatch(c *pipeline.Core, tid int) bool {
	w, total := d.weights(c)
	cfg := c.Config()
	wt := w[tid]
	if c.IntRegsHeld(tid) >= share(cfg.IntRegs, wt, total) {
		return false
	}
	if c.FPRegsHeld(tid) >= share(cfg.FPRegs, wt, total) {
		return false
	}
	if c.IQHeld(tid, pipeline.IQInt) >= share(cfg.IntIQ, wt, total) {
		return false
	}
	if c.IQHeld(tid, pipeline.IQFP) >= share(cfg.FPIQ, wt, total) {
		return false
	}
	if c.IQHeld(tid, pipeline.IQLS) >= share(cfg.LSIQ, wt, total) {
		return false
	}
	return true
}

// OnL2Miss implements pipeline.Policy: classification is re-derived each
// cycle from pending-miss state, so nothing to do here.
func (*DCRA) OnL2Miss(*pipeline.Core, *pipeline.DynInst) {}

// Tick implements pipeline.Policy.
func (*DCRA) Tick(*pipeline.Core) {}
