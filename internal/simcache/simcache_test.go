package simcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

func TestSingleComputationManyWaiters(t *testing.T) {
	defer leakcheck.Check(t)
	g := New[string, int](0, 0, nil)
	var computed atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, created := g.Begin("k")
			if created {
				computed.Add(1)
				c.Fulfill(42, nil)
			}
			v, err := c.Wait()
			if v != 42 || err != nil {
				t.Errorf("Wait = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	st := g.Stats()
	if st.Misses != 1 || st.Hits != 31 {
		t.Fatalf("stats = %+v, want 1 miss + 31 hits", st)
	}
}

func TestErrorsMemoizedWhileCached(t *testing.T) {
	g := New[int, string](0, 0, nil)
	boom := errors.New("boom")
	c, created := g.Begin(7)
	if !created {
		t.Fatal("first Begin not created")
	}
	c.Fulfill("", boom)
	c2, created := g.Begin(7)
	if created {
		t.Fatal("second Begin re-created")
	}
	if _, err := c2.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// fill computes key -> val synchronously, returning whether it was a miss.
func fill(t *testing.T, g *Cache[string, int], key string, val int) bool {
	t.Helper()
	c, created := g.Begin(key)
	if created {
		c.Fulfill(val, nil)
	}
	v, err := c.Wait()
	if err != nil || v != val {
		t.Fatalf("Wait(%q) = %d, %v; want %d", key, v, err, val)
	}
	return created
}

func TestEntryBoundEvictsLRU(t *testing.T) {
	g := New[string, int](2, 0, nil)
	fill(t, g, "a", 1)
	fill(t, g, "b", 2)
	fill(t, g, "a", 1) // touch a: b is now LRU
	fill(t, g, "c", 3) // evicts b
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	if created := fill(t, g, "a", 1); created {
		t.Error("a was evicted; want b (LRU) evicted")
	}
	if created := fill(t, g, "b", 2); !created {
		t.Error("b survived; want b (LRU) evicted")
	}
	if st := g.Stats(); st.Evictions < 1 {
		t.Errorf("stats = %+v, want evictions >= 1", st)
	}
}

func TestByteBoundEvicts(t *testing.T) {
	g := New[string, int](0, 100, func(v int) int64 { return int64(v) })
	fill(t, g, "a", 60)
	fill(t, g, "b", 60) // 120 bytes > 100: evicts a
	st := g.Stats()
	if st.Entries != 1 || st.Bytes != 60 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 entry / 60 bytes / 1 eviction", st)
	}
	if created := fill(t, g, "b", 60); created {
		t.Error("b (just inserted) was evicted; want a")
	}
}

// TestInFlightNeverEvicted pins the safety property eviction relies on:
// a call some goroutine owns stays registered however far the bounds are
// exceeded, so a key never has two concurrent computations.
func TestInFlightNeverEvicted(t *testing.T) {
	g := New[string, int](1, 0, nil)
	slow, created := g.Begin("slow")
	if !created {
		t.Fatal("slow not created")
	}
	for i := 0; i < 8; i++ {
		fill(t, g, fmt.Sprintf("k%d", i), i)
	}
	if st := g.Stats(); st.InFlight != 1 {
		t.Fatalf("stats = %+v, want 1 in flight", st)
	}
	again, created := g.Begin("slow")
	if created {
		t.Fatal("in-flight call was evicted: second computation registered")
	}
	if again != slow {
		t.Fatal("Begin returned a different call for an in-flight key")
	}
	slow.Fulfill(99, nil)
	// Completing the over-bound in-flight entry trims back to the bound.
	if n := g.Len(); n != 1 {
		t.Fatalf("Len after settle = %d, want 1", n)
	}
	if v, err := again.Wait(); v != 99 || err != nil {
		t.Fatalf("Wait = %d, %v", v, err)
	}
}

// TestEvictedCallStillServesHolders: eviction forgets, it never
// invalidates — a waiter holding the call reads its value regardless.
func TestEvictedCallStillServesHolders(t *testing.T) {
	g := New[string, int](1, 0, nil)
	c, created := g.Begin("x")
	if !created {
		t.Fatal("x not created")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if v, err := c.Wait(); v != 5 || err != nil {
			t.Errorf("late waiter: %d, %v", v, err)
		}
	}()
	c.Fulfill(5, nil)
	fill(t, g, "y", 6) // evicts x
	<-done
	if created := fill(t, g, "x", 5); !created {
		t.Error("x still cached; want recomputed after eviction")
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	g := New[int, int](0, 0, func(int) int64 { return 1 << 20 })
	for i := 0; i < 256; i++ {
		c, created := g.Begin(i)
		if !created {
			t.Fatalf("key %d already present", i)
		}
		c.Fulfill(i, nil)
	}
	st := g.Stats()
	if st.Entries != 256 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 256 entries and no evictions", st)
	}
}

// TestWaitCtxCancelIsPerWaiter: a waiter's cancellation unblocks that
// waiter alone — the computation and every other waiter are untouched,
// and the fulfilled value still reaches anyone who stayed.
func TestWaitCtxCancelIsPerWaiter(t *testing.T) {
	defer leakcheck.Check(t)
	g := New[string, int](0, 0, nil)
	c, created := g.Begin("k")
	if !created {
		t.Fatal("first Begin not created")
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := c.WaitCtx(canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitCtx on canceled ctx = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("canceled WaitCtx blocked for %v", d)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		if v, err := c.WaitCtx(context.Background()); v != 9 || err != nil {
			t.Errorf("surviving waiter: %d, %v; want 9, nil", v, err)
		}
	}()
	c.Fulfill(9, nil)
	<-done
	if v, err := c.Wait(); v != 9 || err != nil {
		t.Fatalf("Wait after Fulfill = %d, %v", v, err)
	}
}

// TestAbandonDropsDeadCall: when every registered requester has
// canceled, Abandon unregisters the entry (a later request recomputes
// from scratch) and fails the call so no waiter can hang.
func TestAbandonDropsDeadCall(t *testing.T) {
	g := New[string, int](0, 0, nil)
	ctx, cancel := context.WithCancel(context.Background())
	c, created := g.BeginCtx(ctx, "k")
	if !created {
		t.Fatal("not created")
	}
	cancel()
	if !g.Abandon("k", c, context.Canceled) {
		t.Fatal("Abandon = false for a call whose only requester canceled")
	}
	if _, err := c.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned call Wait err = %v, want context.Canceled", err)
	}
	st := g.Stats()
	if st.Canceled != 1 || st.Entries != 0 || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want 1 canceled, empty cache", st)
	}
	// The key is free again: the singleflight contract survives.
	if created := fill(t, g, "k", 5); !created {
		t.Error("abandoned key did not register a fresh computation")
	}
}

// TestAbandonRefusedWhileAnyRequesterLives: one live joiner pins the
// computation, however many other requesters canceled.
func TestAbandonRefusedWhileAnyRequesterLives(t *testing.T) {
	g := New[string, int](0, 0, nil)
	dead, cancel := context.WithCancel(context.Background())
	c, created := g.BeginCtx(dead, "k")
	if !created {
		t.Fatal("not created")
	}
	live := context.Background()
	if _, created := g.BeginCtx(live, "k"); created {
		t.Fatal("join re-created")
	}
	cancel()
	if g.Abandon("k", c, context.Canceled) {
		t.Fatal("Abandon dropped a call a live requester still wants")
	}
	c.Fulfill(7, nil)
	if v, err := c.Wait(); v != 7 || err != nil {
		t.Fatalf("Wait = %d, %v", v, err)
	}
	if st := g.Stats(); st.Canceled != 0 {
		t.Fatalf("stats = %+v, want no cancellations", st)
	}
}

// TestAbandonRefusedWithoutContext: Begin (no context) pins the call to
// run unconditionally, and a settled call can never be abandoned.
func TestAbandonRefusedWithoutContext(t *testing.T) {
	g := New[string, int](0, 0, nil)
	c, _ := g.Begin("k")
	if g.Abandon("k", c, context.Canceled) {
		t.Fatal("Abandon dropped a background-context call")
	}
	c.Fulfill(1, nil)
	if g.Abandon("k", c, context.Canceled) {
		t.Fatal("Abandon dropped a settled call")
	}
	if g.Abandon("missing", c, context.Canceled) {
		t.Fatal("Abandon matched a key that was never registered")
	}
}

// TestConcurrentChurn exercises eviction racing Begin/Fulfill under -race.
func TestConcurrentChurn(t *testing.T) {
	defer leakcheck.Check(t)
	g := New[int, int](8, 0, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := (w*31 + i) % 40
				c, created := g.Begin(key)
				if created {
					c.Fulfill(key*2, nil)
				}
				if v, err := c.Wait(); err != nil || v != key*2 {
					t.Errorf("key %d: %d, %v", key, v, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := g.Len(); n > 8 {
		t.Fatalf("Len = %d, want <= 8", n)
	}
	st := g.Stats()
	if st.InFlight != 0 {
		t.Fatalf("stats = %+v, want no in-flight calls", st)
	}
}
