// Package simcache is the simulation result cache behind the experiment
// session and the smtsimd daemon: a singleflight-deduplicating LRU with
// configurable entry-count and approximate-byte bounds.
//
// It replaces the former internal/singleflight package, whose memoizing
// Group grew without bound for the life of the process — fine for a
// one-shot CLI regenerating figures, fatal for a long-running service
// sweeping arbitrary client scenarios. The singleflight contract is
// unchanged: the first requester of a key computes its value, every
// concurrent requester joins that computation, and a completed result is
// served from cache until evicted. Two properties make eviction safe
// under that contract:
//
//   - In-flight calls are never evicted. A computation some goroutine
//     owns (and others wait on) always stays registered, so one key never
//     has two concurrent computations and Fulfill always finds its entry.
//     The entry bound may therefore be exceeded transiently when more
//     calls are in flight than the cache admits entries.
//   - Eviction only forgets, it never invalidates. Waiters hold the
//     *Call pointer itself; a call evicted after completion still serves
//     its value to anyone who already held it. Re-requesting an evicted
//     key simply recomputes — results are deterministic, so the recomputed
//     value is the value that was evicted.
//
// Errors memoize like results while cached: an outcome is a pure function
// of the key, so retrying a failed key could never succeed.
package simcache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of cache effectiveness, shaped for
// direct JSON emission by the smtsimd /v1/metrics endpoint.
type Stats struct {
	// Hits counts Begin calls that joined an existing entry (completed or
	// in flight); Misses counts calls that had to register a computation.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts completed entries dropped to respect the bounds.
	Evictions uint64 `json:"evictions"`
	// Entries and InFlight describe the current population; Bytes is the
	// approximate retained result size reported by the size function.
	Entries  int   `json:"entries"`
	InFlight int   `json:"inflight"`
	Bytes    int64 `json:"bytes"`
	// MaxEntries and MaxBytes echo the configured bounds (0 = unbounded).
	MaxEntries int   `json:"maxEntries"`
	MaxBytes   int64 `json:"maxBytes"`
}

// Call is one key's in-flight or completed computation.
type Call[V any] struct {
	done   chan struct{}
	val    V
	err    error
	settle func() // cache accounting hook, set by Begin; nil once settled
}

// Fulfill publishes the result, waking all waiters. The creator of the
// call (the Begin caller that saw created=true) must call it exactly once.
func (c *Call[V]) Fulfill(v V, err error) {
	c.val, c.err = v, err
	if c.settle != nil {
		c.settle()
		c.settle = nil
	}
	close(c.done)
}

// Wait blocks until Fulfill and returns the published result.
func (c *Call[V]) Wait() (V, error) {
	<-c.done
	return c.val, c.err
}

// entry is one cache slot; it lives in both the LRU list and the key map.
type entry[K comparable, V any] struct {
	key      K
	call     *Call[V]
	inflight bool
	bytes    int64
}

// Cache coordinates and retains calls keyed by K under LRU bounds.
type Cache[K comparable, V any] struct {
	maxEntries int
	maxBytes   int64
	sizeOf     func(V) int64

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	m        map[K]*list.Element
	bytes    int64
	inflight int
	hits     uint64
	misses   uint64
	evicted  uint64
}

// New builds a cache. maxEntries bounds the number of retained entries
// and maxBytes the approximate retained result bytes as measured by
// sizeOf; zero disables the respective bound (and a nil sizeOf counts
// every result as zero bytes, leaving only the entry bound active).
func New[K comparable, V any](maxEntries int, maxBytes int64, sizeOf func(V) int64) *Cache[K, V] {
	return &Cache[K, V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		sizeOf:     sizeOf,
		ll:         list.New(),
		m:          map[K]*list.Element{},
	}
}

// Begin returns key's call, registering a new computation if absent.
// created reports whether this caller registered the call and therefore
// owns computing and Fulfilling it; all other callers just Wait. A hit
// (created=false) marks the entry most recently used.
func (c *Cache[K, V]) Begin(key K) (call *Call[V], created bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).call, false
	}
	c.misses++
	c.inflight++
	e := &entry[K, V]{key: key, call: &Call[V]{done: make(chan struct{})}, inflight: true}
	el := c.ll.PushFront(e)
	c.m[key] = el
	e.call.settle = func() { c.settle(el) }
	return e.call, true
}

// settle runs inside Fulfill, before waiters wake: the entry becomes
// evictable, its result bytes are accounted, and the bounds are enforced.
func (c *Cache[K, V]) settle(el *list.Element) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := el.Value.(*entry[K, V])
	e.inflight = false
	c.inflight--
	if c.sizeOf != nil && e.call.err == nil {
		e.bytes = c.sizeOf(e.call.val)
		c.bytes += e.bytes
	}
	c.evict()
}

// evict drops least-recently-used completed entries until both bounds
// hold (or only in-flight entries remain). Caller holds mu.
func (c *Cache[K, V]) evict() {
	over := func() bool {
		if c.maxEntries > 0 && c.ll.Len() > c.maxEntries {
			return true
		}
		return c.maxBytes > 0 && c.bytes > c.maxBytes
	}
	for el := c.ll.Back(); el != nil && over(); {
		prev := el.Prev()
		if e := el.Value.(*entry[K, V]); !e.inflight {
			c.ll.Remove(el)
			delete(c.m, e.key)
			c.bytes -= e.bytes
			c.evicted++
		}
		el = prev
	}
}

// Len returns the number of registered entries (in flight or completed).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a consistent snapshot of the counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evicted,
		Entries:    c.ll.Len(),
		InFlight:   c.inflight,
		Bytes:      c.bytes,
		MaxEntries: c.maxEntries,
		MaxBytes:   c.maxBytes,
	}
}
