// Package simcache is the simulation result cache behind the experiment
// session and the smtsimd daemon: a singleflight-deduplicating LRU with
// configurable entry-count and approximate-byte bounds.
//
// It replaces the former internal/singleflight package, whose memoizing
// Group grew without bound for the life of the process — fine for a
// one-shot CLI regenerating figures, fatal for a long-running service
// sweeping arbitrary client scenarios. The singleflight contract is
// unchanged: the first requester of a key computes its value, every
// concurrent requester joins that computation, and a completed result is
// served from cache until evicted. Two properties make eviction safe
// under that contract:
//
//   - In-flight calls are never evicted. A computation some goroutine
//     owns (and others wait on) always stays registered, so one key never
//     has two concurrent computations and Fulfill always finds its entry.
//     The entry bound may therefore be exceeded transiently when more
//     calls are in flight than the cache admits entries.
//   - Eviction only forgets, it never invalidates. Waiters hold the
//     *Call pointer itself; a call evicted after completion still serves
//     its value to anyone who already held it. Re-requesting an evicted
//     key simply recomputes — results are deterministic, so the recomputed
//     value is the value that was evicted.
//
// Errors memoize like results while cached: an outcome is a pure function
// of the key, so retrying a failed key could never succeed.
//
// # Cancellation
//
// Waiters cancel individually: Call.WaitCtx returns the waiter's own
// context error without disturbing the computation or other waiters.
// Creators cancel through Abandon: a worker that pops a queued call whose
// interested requesters (the contexts registered by BeginCtx) have all
// gone away may atomically unregister the entry and fail the call, so the
// computation is never started, no waiter can hang (anyone still able to
// hold the call pointer is already past its own WaitCtx cancellation),
// and a later request for the key registers a fresh computation — the
// singleflight contract survives because the check-and-remove happens
// under the same lock Begin uses to join calls.
package simcache

import (
	"container/list"
	"context"
	"sync"
)

// Stats is a point-in-time snapshot of cache effectiveness, shaped for
// direct JSON emission by the smtsimd /v1/metrics endpoint.
type Stats struct {
	// Hits counts Begin calls that joined an existing entry (completed or
	// in flight); Misses counts calls that had to register a computation.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts completed entries dropped to respect the bounds.
	Evictions uint64 `json:"evictions"`
	// Canceled counts calls abandoned before their computation started
	// because every interested requester's context was done.
	Canceled uint64 `json:"canceled"`
	// Entries and InFlight describe the current population; Bytes is the
	// approximate retained result size reported by the size function.
	Entries  int   `json:"entries"`
	InFlight int   `json:"inflight"`
	Bytes    int64 `json:"bytes"`
	// MaxEntries and MaxBytes echo the configured bounds (0 = unbounded).
	MaxEntries int   `json:"maxEntries"`
	MaxBytes   int64 `json:"maxBytes"`
}

// Call is one key's in-flight or completed computation.
type Call[V any] struct {
	done   chan struct{}
	val    V
	err    error
	settle func() // cache accounting hook, set by Begin; nil once settled
}

// Fulfill publishes the result, waking all waiters. The owner of the
// call (the Begin caller that saw created=true, or whoever it handed the
// call to) must call exactly one of Fulfill or Cache.Abandon.
func (c *Call[V]) Fulfill(v V, err error) {
	c.val, c.err = v, err
	if c.settle != nil {
		c.settle()
		c.settle = nil
	}
	close(c.done)
}

// abandon publishes err and wakes waiters without settling: the cache
// already unregistered the entry under its own lock.
func (c *Call[V]) abandon(err error) {
	c.err = err
	c.settle = nil
	close(c.done)
}

// Wait blocks until Fulfill and returns the published result.
func (c *Call[V]) Wait() (V, error) {
	<-c.done
	return c.val, c.err
}

// WaitCtx is Wait with a per-waiter escape hatch: it returns ctx's error
// as soon as ctx is done, leaving the computation (and every other
// waiter) untouched.
func (c *Call[V]) WaitCtx(ctx context.Context) (V, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		var zero V
		return zero, ctx.Err()
	}
}

// entry is one cache slot; it lives in both the LRU list and the key map.
type entry[K comparable, V any] struct {
	key      K
	call     *Call[V]
	inflight bool
	bytes    int64
	// interest holds the context of every requester that joined the call
	// while it was in flight (BeginCtx). Abandon may drop the call only
	// when all of them are done; cleared once the call settles.
	interest []context.Context
}

// Cache coordinates and retains calls keyed by K under LRU bounds.
type Cache[K comparable, V any] struct {
	maxEntries int
	maxBytes   int64
	sizeOf     func(V) int64

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	m        map[K]*list.Element
	bytes    int64
	inflight int
	hits     uint64
	misses   uint64
	evicted  uint64
	canceled uint64
}

// New builds a cache. maxEntries bounds the number of retained entries
// and maxBytes the approximate retained result bytes as measured by
// sizeOf; zero disables the respective bound (and a nil sizeOf counts
// every result as zero bytes, leaving only the entry bound active).
func New[K comparable, V any](maxEntries int, maxBytes int64, sizeOf func(V) int64) *Cache[K, V] {
	return &Cache[K, V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		sizeOf:     sizeOf,
		ll:         list.New(),
		m:          map[K]*list.Element{},
	}
}

// Begin returns key's call, registering a new computation if absent.
// created reports whether this caller registered the call and therefore
// owns computing and Fulfilling it; all other callers just Wait. A hit
// (created=false) marks the entry most recently used. Calls begun without
// a context are never abandonable: the computation always runs.
func (c *Cache[K, V]) Begin(key K) (call *Call[V], created bool) {
	return c.BeginCtx(context.Background(), key)
}

// BeginCtx is Begin with cancellation interest: ctx is recorded against
// the call while it is in flight, and Abandon may drop the computation
// only once every recorded context is done. A background (non-cancelable)
// context pins the call to run unconditionally.
func (c *Cache[K, V]) BeginCtx(ctx context.Context, key K) (call *Call[V], created bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		e := el.Value.(*entry[K, V])
		if e.inflight {
			e.interest = append(e.interest, ctx)
		}
		return e.call, false
	}
	c.misses++
	c.inflight++
	e := &entry[K, V]{
		key:      key,
		call:     &Call[V]{done: make(chan struct{})},
		inflight: true,
		interest: []context.Context{ctx},
	}
	el := c.ll.PushFront(e)
	c.m[key] = el
	e.call.settle = func() { c.settle(el) }
	return e.call, true
}

// Abandon drops an in-flight call whose interested requesters have all
// canceled, instead of computing it: the entry is unregistered (a later
// request registers a fresh computation) and the call fails with err,
// waking any waiter that has not noticed its own cancellation yet. It
// reports whether it abandoned; false — the call settled already, or some
// registered context is still live (a background context always is) —
// means the caller still owns the computation and must run and Fulfill
// it. Abandon and Fulfill are alternatives: the owner calls exactly one.
func (c *Cache[K, V]) Abandon(key K, call *Call[V], err error) bool {
	c.mu.Lock()
	el, ok := c.m[key]
	if !ok {
		c.mu.Unlock()
		return false
	}
	e := el.Value.(*entry[K, V])
	if e.call != call || !e.inflight {
		c.mu.Unlock()
		return false
	}
	for _, ctx := range e.interest {
		if ctx.Done() == nil || ctx.Err() == nil {
			c.mu.Unlock()
			return false
		}
	}
	c.ll.Remove(el)
	delete(c.m, key)
	c.inflight--
	c.canceled++
	c.mu.Unlock()
	call.abandon(err)
	return true
}

// settle runs inside Fulfill, before waiters wake: the entry becomes
// evictable, its result bytes are accounted, and the bounds are enforced.
func (c *Cache[K, V]) settle(el *list.Element) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := el.Value.(*entry[K, V])
	e.inflight = false
	e.interest = nil
	c.inflight--
	if c.sizeOf != nil && e.call.err == nil {
		e.bytes = c.sizeOf(e.call.val)
		c.bytes += e.bytes
	}
	c.evict()
}

// evict drops least-recently-used completed entries until both bounds
// hold (or only in-flight entries remain). Caller holds mu.
func (c *Cache[K, V]) evict() {
	over := func() bool {
		if c.maxEntries > 0 && c.ll.Len() > c.maxEntries {
			return true
		}
		return c.maxBytes > 0 && c.bytes > c.maxBytes
	}
	for el := c.ll.Back(); el != nil && over(); {
		prev := el.Prev()
		if e := el.Value.(*entry[K, V]); !e.inflight {
			c.ll.Remove(el)
			delete(c.m, e.key)
			c.bytes -= e.bytes
			c.evicted++
		}
		el = prev
	}
}

// Len returns the number of registered entries (in flight or completed).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a consistent snapshot of the counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evicted,
		Canceled:   c.canceled,
		Entries:    c.ll.Len(),
		InFlight:   c.inflight,
		Bytes:      c.bytes,
		MaxEntries: c.maxEntries,
		MaxBytes:   c.maxBytes,
	}
}
