// Package tracestore is the shared trace tier: a concurrency-safe,
// singleflight-deduplicated, byte-bounded LRU of generated trace.Trace
// values, keyed by the full identity a trace is a pure function of —
// (benchmark, length, seed, data base, code base). Traces are immutable
// after generation and the pipeline only ever reads them, so one stored
// trace can feed any number of concurrent simulations; a sweep that runs
// dozens of configurations over one workload pays trace generation once
// instead of once per cell, and a workload's fairness references reuse the
// exact trace objects its SMT run generated.
//
// The in-memory tier is always present. An optional on-disk tier (Open
// with a directory) persists encoded traces across process restarts in the
// same format discipline as internal/resultstore: versioned, checksummed,
// atomically renamed into place, with every defect reading as a clean miss
// that deletes the damaged entry. A damaged or stale store only ever costs
// regeneration, never a wrong trace.
package tracestore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simcache"
	"repro/internal/trace"
)

// Key is the full generation identity of a trace. Two Generate calls with
// equal keys produce bit-identical traces, so equal keys may share one
// trace object. Every field matters: workloads derive per-context seeds
// from one base seed, and two different base seeds can collide on a
// derived seed at different context indexes — where the address bases
// differ — so the bases are part of the identity, not an implementation
// detail.
type Key struct {
	Benchmark string
	Len       int
	Seed      uint64
	DataBase  uint64
	CodeBase  uint64
}

// Stats is a point-in-time snapshot of trace-tier effectiveness, shaped
// for direct JSON emission by the smtsimd /v1/metrics endpoint.
type Stats struct {
	// Hits counts Generate calls served by (or joined onto) an existing
	// in-memory entry; Misses counts calls that had to materialize one.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts in-memory entries dropped to respect the byte bound.
	Evictions uint64 `json:"evictions"`
	// Entries and Bytes describe the resident population; MaxBytes echoes
	// the configured bound (0 = unbounded).
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"maxBytes"`
	// Generated counts actual trace.Generate runs — the work every other
	// counter exists to avoid. A warm tier serves a whole sweep with zero.
	Generated uint64 `json:"generated"`
	// Disk* describe the optional persistent tier; all zero when absent.
	DiskHits        uint64 `json:"diskHits"`
	DiskMisses      uint64 `json:"diskMisses"`
	DiskFiles       int    `json:"diskFiles"`
	DiskBytes       int64  `json:"diskBytes"`
	DiskEvictions   uint64 `json:"diskEvictions"`
	DiskWriteErrors uint64 `json:"diskWriteErrors"`
}

// DefaultMemBytes bounds the process-wide default store: enough for
// hundreds of sweep-sized traces while capping worst-case growth of a
// long-running daemon.
const DefaultMemBytes = 256 << 20

// Store is the trace tier. All methods are safe for concurrent use.
type Store struct {
	mem       *simcache.Cache[Key, *trace.Trace]
	disk      *diskTier // nil without a persistent tier
	generated atomic.Uint64
}

// New builds an in-memory-only store bounded to memBytes of resident
// trace data (0 = unbounded).
func New(memBytes int64) *Store {
	return &Store{mem: simcache.New[Key](0, memBytes, (*trace.Trace).SizeBytes)}
}

// Open builds a store with a persistent tier rooted at dir, bounded to
// diskBytes of entry files (0 = unbounded). Stale temp files are swept
// and existing entries adopted with file modification times as recency,
// exactly as resultstore does.
func Open(memBytes int64, dir string, diskBytes int64) (*Store, error) {
	d, err := openDisk(dir, diskBytes)
	if err != nil {
		return nil, err
	}
	s := New(memBytes)
	s.disk = d
	return s, nil
}

var defaultStore = sync.OnceValue(func() *Store { return New(DefaultMemBytes) })

// Default returns the process-wide shared store (in-memory only, bounded
// to DefaultMemBytes). workload.Traces routes through it so that every
// caller in the process — figures, scenarios, references, tests — shares
// one trace per identity by default.
func Default() *Store { return defaultStore() }

// Generate returns the trace for benchmark name under opt, generating it
// only if no equivalent trace is resident (or, with a persistent tier, on
// disk). Concurrent calls for one identity share a single generation.
// The returned trace is shared and must be treated as read-only — which
// is the only way the simulator uses traces.
func (s *Store) Generate(name string, opt trace.Options) (*trace.Trace, error) {
	p, err := trace.Find(name)
	if err != nil {
		return nil, err
	}
	opt = opt.Normalized()
	key := Key{Benchmark: p.Name, Len: opt.Len, Seed: opt.Seed, DataBase: opt.DataBase, CodeBase: opt.CodeBase}
	call, created := s.mem.Begin(key) //lint:ctxflow trace generation is bounded CPU-pure work that must complete into the shared cache regardless of requester death (the same contract running cells have), so it is never bound to one caller's context
	if !created {
		//lint:ctxflow joining an in-flight generation waits on the same uncancellable contract as owning it
		return call.Wait()
	}
	if t, ok := s.disk.get(key); ok {
		call.Fulfill(t, nil)
		return t, nil
	}
	t, err := trace.Generate(p, opt)
	if err == nil {
		s.generated.Add(1)
		s.disk.put(key, t)
	}
	call.Fulfill(t, err)
	return t, err
}

// Generated returns the number of actual trace generations this store has
// performed.
func (s *Store) Generated() uint64 { return s.generated.Load() }

// Stats returns a consistent snapshot of the counters.
func (s *Store) Stats() Stats {
	m := s.mem.Stats()
	st := Stats{
		Hits:      m.Hits,
		Misses:    m.Misses,
		Evictions: m.Evictions,
		Entries:   m.Entries,
		Bytes:     m.Bytes,
		MaxBytes:  m.MaxBytes,
		Generated: s.generated.Load(),
	}
	if s.disk != nil {
		d := s.disk.stats()
		st.DiskHits = d.hits
		st.DiskMisses = d.misses
		st.DiskFiles = d.files
		st.DiskBytes = d.bytes
		st.DiskEvictions = d.evicted
		st.DiskWriteErrors = d.werrs
	}
	return st
}

// ---- persistent tier ----

const (
	// diskMagic opens every entry file.
	diskMagic = "SMTT"
	// diskSchemaVersion names the entry envelope this package writes; the
	// header additionally carries trace.CodecVersion for the payload.
	// Readers treat any other version of either as a miss.
	diskSchemaVersion uint16 = 1
	// diskSuffix names entry files; anything else in the directory is
	// ignored.
	diskSuffix = ".smttr"
	// diskTmpPrefix names in-progress writes; stale ones are swept at Open.
	diskTmpPrefix = ".tmp-"
)

// diskStats mirrors the resultstore counter set for the persistent tier.
type diskStats struct {
	hits    uint64
	misses  uint64
	evicted uint64
	werrs   uint64
	files   int
	bytes   int64
}

// diskEntry is the in-memory accounting for one entry file.
type diskEntry struct {
	size int64
	seq  uint64 // logical access clock; highest = most recently used
}

// diskTier is the on-disk store. A nil *diskTier is a valid no-op tier:
// get always misses and put does nothing, so the memory-only path never
// branches on configuration.
type diskTier struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*diskEntry
	bytes   int64
	seq     uint64
	hits    uint64
	misses  uint64
	evicted uint64
	werrs   uint64
}

// openDisk opens (creating if needed) the persistent tier rooted at dir,
// sweeping stale temp files and adopting existing entries oldest-first so
// eviction order matches on-disk recency.
func openDisk(dir string, maxBytes int64) (*diskTier, error) {
	if dir == "" {
		return nil, fmt.Errorf("tracestore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	d := &diskTier{dir: dir, maxBytes: maxBytes, entries: map[string]*diskEntry{}}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	type adopted struct {
		name  string
		size  int64
		mtime time.Time
	}
	var found []adopted
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(de.Name(), diskTmpPrefix) {
			os.Remove(filepath.Join(dir, de.Name()))
			continue
		}
		if !strings.HasSuffix(de.Name(), diskSuffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a sharing process's eviction
		}
		found = append(found, adopted{de.Name(), info.Size(), info.ModTime()})
	}
	sort.Slice(found, func(i, j int) bool {
		if !found[i].mtime.Equal(found[j].mtime) {
			return found[i].mtime.Before(found[j].mtime)
		}
		return found[i].name < found[j].name
	})
	for _, f := range found {
		d.seq++
		d.entries[f.name] = &diskEntry{size: f.size, seq: d.seq}
		d.bytes += f.size
	}
	d.mu.Lock()
	d.evict()
	d.mu.Unlock()
	return d, nil
}

// fileName derives the entry file for a key: content addressing by the
// SHA-256 of the full identity, so distinct keys never share a file.
func fileName(k Key) string {
	h := sha256.New()
	h.Write([]byte(k.Benchmark))
	var fixed [8 * 4]byte
	binary.LittleEndian.PutUint64(fixed[0:], uint64(k.Len))
	binary.LittleEndian.PutUint64(fixed[8:], k.Seed)
	binary.LittleEndian.PutUint64(fixed[16:], k.DataBase)
	binary.LittleEndian.PutUint64(fixed[24:], k.CodeBase)
	h.Write(fixed[:])
	return hex.EncodeToString(h.Sum(nil)) + diskSuffix
}

// get probes the tier for a stored trace. Every failure mode — absent,
// unreadable, wrong magic or version, checksum mismatch, key mismatch,
// undecodable payload — is a miss, and defective entries are deleted so
// the post-regenerate rewrite starts clean.
func (d *diskTier) get(k Key) (*trace.Trace, bool) {
	if d == nil {
		return nil, false
	}
	name := fileName(k)
	path := filepath.Join(d.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		d.mu.Lock()
		d.misses++
		d.forget(name)
		d.mu.Unlock()
		return nil, false
	}
	t, err := decodeDiskEntry(data, k)
	if err != nil {
		os.Remove(path)
		d.mu.Lock()
		d.misses++
		d.forget(name)
		d.mu.Unlock()
		return nil, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) // persist recency; best-effort
	d.mu.Lock()
	d.hits++
	d.seq++
	if e, ok := d.entries[name]; ok {
		e.seq = d.seq
	} else {
		// Written by a sharing process: adopt, then re-enforce the bound.
		d.entries[name] = &diskEntry{size: int64(len(data)), seq: d.seq}
		d.bytes += int64(len(data))
		d.evict()
	}
	d.mu.Unlock()
	return t, true
}

// put stores a trace atomically (temp file + rename) and enforces the
// byte bound. Persistence is best-effort: failures are counted, and the
// caller proceeds with the in-memory trace either way.
func (d *diskTier) put(k Key, t *trace.Trace) {
	if d == nil {
		return
	}
	name := fileName(k)
	data := encodeDiskEntry(diskSchemaVersion, uint16(trace.CodecVersion), k, t)
	fail := func() {
		d.mu.Lock()
		d.werrs++
		d.mu.Unlock()
	}
	tmp, err := os.CreateTemp(d.dir, diskTmpPrefix+"*")
	if err != nil {
		fail()
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		fail()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		fail()
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(d.dir, name)); err != nil {
		os.Remove(tmp.Name())
		fail()
		return
	}
	d.mu.Lock()
	d.forget(name)
	d.seq++
	d.entries[name] = &diskEntry{size: int64(len(data)), seq: d.seq}
	d.bytes += int64(len(data))
	d.evict()
	d.mu.Unlock()
}

// forget drops an entry's accounting without touching the file or the
// eviction counter. Caller holds mu.
func (d *diskTier) forget(name string) {
	if e, ok := d.entries[name]; ok {
		d.bytes -= e.size
		delete(d.entries, name)
	}
}

// evict deletes least-recently-accessed entries until the byte bound
// holds. Caller holds mu.
func (d *diskTier) evict() {
	for d.maxBytes > 0 && d.bytes > d.maxBytes && len(d.entries) > 0 {
		victim, min := "", uint64(1<<63)
		//lint:deterministic victim selection minimizes seq, a per-store monotonic counter that is unique across entries, so iteration order cannot change which entry wins
		for name, e := range d.entries {
			if victim == "" || e.seq < min {
				victim, min = name, e.seq
			}
		}
		d.forget(victim)
		d.evicted++
		os.Remove(filepath.Join(d.dir, victim))
	}
}

// stats snapshots the counters. Safe on a nil tier (all zero).
func (d *diskTier) stats() diskStats {
	if d == nil {
		return diskStats{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return diskStats{
		hits:    d.hits,
		misses:  d.misses,
		evicted: d.evicted,
		werrs:   d.werrs,
		files:   len(d.entries),
		bytes:   d.bytes,
	}
}

// encodeDiskEntry renders one entry file:
//
//	magic "SMTT" | schema version | codec version | key echo | trace
//	payload | CRC-32
//
// The header repeats the full key so a hash collision (or a file renamed
// by hand) can never serve the wrong trace, and the trailer checksums
// everything before it. The versions are parameters so compatibility
// tests can write stale entries.
func encodeDiskEntry(schema, codec uint16, k Key, t *trace.Trace) []byte {
	b := make([]byte, 0, len(diskMagic)+2+2+4+len(k.Benchmark)+8*4+t.EncodedSize()+4)
	b = append(b, diskMagic...)
	b = binary.LittleEndian.AppendUint16(b, schema)
	b = binary.LittleEndian.AppendUint16(b, codec)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(k.Benchmark)))
	b = append(b, k.Benchmark...)
	b = binary.LittleEndian.AppendUint64(b, uint64(k.Len))
	b = binary.LittleEndian.AppendUint64(b, k.Seed)
	b = binary.LittleEndian.AppendUint64(b, k.DataBase)
	b = binary.LittleEndian.AppendUint64(b, k.CodeBase)
	b = t.AppendBinary(b)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// decodeDiskEntry parses and verifies one entry file against the key
// being looked up. Every defect returns an error — get maps them all to
// a miss.
func decodeDiskEntry(data []byte, k Key) (*trace.Trace, error) {
	headerLen := len(diskMagic) + 2 + 2 + 4 + len(k.Benchmark) + 8*4
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("tracestore: entry too short (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("tracestore: checksum mismatch")
	}
	if string(body[:len(diskMagic)]) != diskMagic {
		return nil, fmt.Errorf("tracestore: bad magic")
	}
	off := len(diskMagic)
	if v := binary.LittleEndian.Uint16(body[off:]); v != diskSchemaVersion {
		return nil, fmt.Errorf("tracestore: schema version %d, want %d", v, diskSchemaVersion)
	}
	off += 2
	if v := binary.LittleEndian.Uint16(body[off:]); v != uint16(trace.CodecVersion) {
		return nil, fmt.Errorf("tracestore: codec version %d, want %d", v, trace.CodecVersion)
	}
	off += 2
	n := binary.LittleEndian.Uint32(body[off:])
	off += 4
	if uint64(n) != uint64(len(k.Benchmark)) || off+int(n) > len(body) ||
		string(body[off:off+int(n)]) != k.Benchmark {
		return nil, fmt.Errorf("tracestore: benchmark mismatch")
	}
	off += int(n)
	if len(body)-off < 8*4 {
		return nil, fmt.Errorf("tracestore: truncated key echo")
	}
	if binary.LittleEndian.Uint64(body[off:]) != uint64(k.Len) ||
		binary.LittleEndian.Uint64(body[off+8:]) != k.Seed ||
		binary.LittleEndian.Uint64(body[off+16:]) != k.DataBase ||
		binary.LittleEndian.Uint64(body[off+24:]) != k.CodeBase {
		return nil, fmt.Errorf("tracestore: key mismatch")
	}
	off += 8 * 4
	t, err := trace.DecodeBinary(body[off:])
	if err != nil {
		return nil, err
	}
	if t.Name != k.Benchmark || t.Len() != k.Len {
		return nil, fmt.Errorf("tracestore: payload identity mismatch")
	}
	return t, nil
}
