package tracestore

import (
	"os"
	"testing"

	"repro/internal/leakcheck"
)

// TestMain gates the whole suite on goroutine hygiene: any goroutine
// this package's tests start and fail to reap turns a green run red.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
