package tracestore

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/leakcheck"
	"repro/internal/trace"
)

func TestGenerateDedupes(t *testing.T) {
	s := New(0)
	opt := trace.Options{Len: 500, Seed: 3}
	a, err := s.Generate("art", opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Generate("art", opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same identity returned distinct trace objects")
	}
	if got := s.Generated(); got != 1 {
		t.Fatalf("generated %d traces, want 1", got)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestGenerateNormalizesOptions(t *testing.T) {
	s := New(0)
	a, err := s.Generate("gzip", trace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Explicitly spelling out the defaults must land on the same entry.
	b, err := s.Generate("gzip", trace.Options{
		Len: trace.DefaultLen, DataBase: 0x1000_0000, CodeBase: 0x0040_0000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("zero options and explicit defaults produced distinct entries")
	}
}

func TestKeyIncludesAddressBases(t *testing.T) {
	s := New(0)
	a, err := s.Generate("art", trace.Options{Len: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Generate("art", trace.Options{Len: 300, Seed: 9, DataBase: 0x5000_0000})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different data bases shared one trace")
	}
	if got := s.Generated(); got != 2 {
		t.Fatalf("generated %d traces, want 2", got)
	}
}

func TestConcurrentSingleflight(t *testing.T) {
	defer leakcheck.Check(t)
	s := New(0)
	const n = 16
	traces := make([]*trace.Trace, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := s.Generate("mcf", trace.Options{Len: 2000, Seed: 1})
			if err != nil {
				t.Error(err)
			}
			traces[i] = tr
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if traces[i] != traces[0] {
			t.Fatal("concurrent requesters got distinct trace objects")
		}
	}
	if got := s.Generated(); got != 1 {
		t.Fatalf("%d concurrent requesters generated %d traces, want 1", n, got)
	}
}

func TestByteBoundEvicts(t *testing.T) {
	one, err := New(0).Generate("art", trace.Options{Len: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Admit roughly one trace at a time.
	s := New(one.SizeBytes() + 1)
	if _, err := s.Generate("art", trace.Options{Len: 500, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Generate("art", trace.Options{Len: 500, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions with bound %d after two traces", one.SizeBytes()+1)
	}
	// The evicted identity regenerates on demand.
	if _, err := s.Generate("art", trace.Options{Len: 500, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if got := s.Generated(); got != 3 {
		t.Fatalf("generated %d traces, want 3 (two distinct + one regeneration)", got)
	}
}

func TestGenerateErrors(t *testing.T) {
	s := New(0)
	if _, err := s.Generate("no-such-benchmark", trace.Options{}); err == nil {
		t.Fatal("no error for unknown benchmark")
	}
	if _, err := s.Generate("art", trace.Options{Len: -4}); err == nil {
		t.Fatal("no error for negative length")
	}
	if got := s.Generated(); got != 0 {
		t.Fatalf("errors generated %d traces", got)
	}
}

func TestDefaultIsShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default returned distinct stores")
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opt := trace.Options{Len: 800, Seed: 5}

	a, err := Open(0, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := a.Generate("swim", opt)
	if err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.DiskMisses != 1 || st.DiskFiles != 1 {
		t.Fatalf("after first generate: diskMisses=%d diskFiles=%d, want 1/1", st.DiskMisses, st.DiskFiles)
	}

	// A fresh store over the same directory serves the trace from disk
	// without generating.
	b, err := Open(0, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Generate("swim", opt)
	if err != nil {
		t.Fatal(err)
	}
	if b.Generated() != 0 {
		t.Fatalf("reopened store generated %d traces, want 0", b.Generated())
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("trace decoded from disk differs from the generated original")
	}
	if st := b.Stats(); st.DiskHits != 1 {
		t.Fatalf("diskHits=%d, want 1", st.DiskHits)
	}
}

// entryFiles lists the store's entry files (ignoring temp files).
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range des {
		if strings.HasSuffix(de.Name(), diskSuffix) {
			out = append(out, filepath.Join(dir, de.Name()))
		}
	}
	return out
}

func TestDiskCorruptionReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	opt := trace.Options{Len: 400, Seed: 2}
	a, err := Open(0, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Generate("art", opt); err != nil {
		t.Fatal(err)
	}
	files := entryFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d entry files, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := Open(0, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Generate("art", opt); err != nil {
		t.Fatal(err)
	}
	if b.Generated() != 1 {
		t.Fatalf("corrupt entry served without regeneration (generated=%d)", b.Generated())
	}
	st := b.Stats()
	if st.DiskHits != 0 || st.DiskMisses != 1 {
		t.Fatalf("diskHits=%d diskMisses=%d, want 0/1", st.DiskHits, st.DiskMisses)
	}
}

func TestDiskVersionMismatchReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	opt := trace.Options{Len: 300, Seed: 4}.Normalized()
	tr, err := New(0).Generate("gzip", opt)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Benchmark: "gzip", Len: opt.Len, Seed: opt.Seed, DataBase: opt.DataBase, CodeBase: opt.CodeBase}
	for name, entry := range map[string][]byte{
		"schema": encodeDiskEntry(diskSchemaVersion+1, uint16(trace.CodecVersion), k, tr),
		"codec":  encodeDiskEntry(diskSchemaVersion, uint16(trace.CodecVersion)+1, k, tr),
	} {
		if err := os.WriteFile(filepath.Join(dir, fileName(k)), entry, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(0, dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Generate("gzip", opt); err != nil {
			t.Fatal(err)
		}
		if s.Generated() != 1 {
			t.Fatalf("%s-version mismatch served without regeneration", name)
		}
	}
}

func TestDiskSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, diskTmpPrefix+"dead")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(0, dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived Open")
	}
}

func TestDiskByteBoundEvicts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(0, dir, 1) // absurdly tight: every write evicts
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Generate("art", trace.Options{Len: 300, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Generate("art", trace.Options{Len: 300, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DiskEvictions == 0 {
		t.Fatal("no disk evictions under a 1-byte bound")
	}
	if st.DiskBytes > 1 && st.DiskFiles > 0 {
		t.Fatalf("bound not enforced: %d files, %d bytes", st.DiskFiles, st.DiskBytes)
	}
}

// TestDiskEvictionDeterministic locks the claim behind the
// //lint:deterministic directive on diskTier.evict(): the victim is
// the entry with the unique minimum access seq, so two stores driven
// through an identical generation history shed exactly the same files,
// whatever order their accounting maps happen to iterate in.
func TestDiskEvictionDeterministic(t *testing.T) {
	opt := func(i int) trace.Options { return trace.Options{Len: 300, Seed: uint64(1 + i)} }

	// Size one entry to bound the real runs at four.
	probe := t.TempDir()
	ps, err := Open(0, probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Generate("art", opt(0)); err != nil {
		t.Fatal(err)
	}
	entrySize := ps.Stats().DiskBytes
	if entrySize == 0 {
		t.Fatal("probe wrote no bytes")
	}

	history := func(t *testing.T) []string {
		dir := t.TempDir()
		// A 1-byte mem tier keeps nothing resident, so every reread goes
		// back through the disk tier and bumps its access recency.
		s, err := Open(1, dir, 4*entrySize)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := s.Generate("art", opt(i)); err != nil {
				t.Fatal(err)
			}
			// Interleaved rereads decouple recency from insertion order.
			if i%3 == 0 {
				if _, err := s.Generate("art", opt(i/2)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if st := s.Stats(); st.DiskEvictions == 0 {
			t.Fatalf("history produced no disk evictions: %+v", st)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		sort.Strings(names)
		return names
	}
	a, b := history(t), history(t)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical histories left different survivors:\n a: %v\n b: %v", a, b)
	}
}
