package trace

import (
	"reflect"
	"testing"

	"repro/internal/isa"
)

func TestCodecRoundTrip(t *testing.T) {
	for _, name := range []string{"art", "gzip", "mcf"} {
		orig := MustGenerate(MustLookup(name), Options{Len: 2000, Seed: 7, DataBase: 0x5000_0000})
		data := orig.AppendBinary(nil)
		if len(data) != orig.EncodedSize() {
			t.Fatalf("%s: encoded %d bytes, EncodedSize says %d", name, len(data), orig.EncodedSize())
		}
		got, err := DecodeBinary(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(orig, got) {
			t.Fatalf("%s: decoded trace differs from original", name)
		}
	}
}

func TestCodecRoundTripHandBuilt(t *testing.T) {
	orig := FromInsts("custom", ClassILP, []isa.Inst{
		{Op: isa.OpLoad, Dst: isa.IntReg(3), Src1: isa.RegNone, Addr: 0x1234, AddrDependsOnLoad: true},
		{Op: isa.OpBranch, Src1: isa.IntReg(3), Taken: true, Target: 0x40_0000},
	})
	got, err := DecodeBinary(orig.AppendBinary(nil))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("decoded hand-built trace differs from original")
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	data := MustGenerate(MustLookup("art"), Options{Len: 100, Seed: 1}).AppendBinary(nil)
	for _, n := range []int{0, 1, 3, 10, len(data) / 2, len(data) - 1} {
		if _, err := DecodeBinary(data[:n]); err == nil {
			t.Fatalf("no error decoding %d of %d bytes", n, len(data))
		}
	}
}

func TestCodecRejectsTrailingGarbage(t *testing.T) {
	data := MustGenerate(MustLookup("art"), Options{Len: 100, Seed: 1}).AppendBinary(nil)
	if _, err := DecodeBinary(append(data, 0xff)); err == nil {
		t.Fatal("no error for trailing garbage")
	}
}

func TestCodecRejectsBadBool(t *testing.T) {
	tr := FromInsts("x", ClassILP, []isa.Inst{{Op: isa.OpIntAlu}})
	data := tr.AppendBinary(nil)
	data[len(data)-1] = 7 // AddrDependsOnLoad byte of the last instruction
	if _, err := DecodeBinary(data); err == nil {
		t.Fatal("no error for out-of-range bool byte")
	}
}

// TestCodecCoversInstSchema pins the isa.Inst field set the codec was
// written against. If it fails, a field was added, removed or retyped:
// update AppendBinary/DecodeBinary/EncodedSize to carry the new shape,
// bump CodecVersion so persisted traces from older builds read as a
// version-mismatch miss, and then update this table.
func TestCodecCoversInstSchema(t *testing.T) {
	want := map[string]string{
		"Seq":               "uint64",
		"PC":                "uint64",
		"Op":                "isa.Op",
		"Dst":               "isa.Reg",
		"Src1":              "isa.Reg",
		"Src2":              "isa.Reg",
		"Addr":              "uint64",
		"Taken":             "bool",
		"Target":            "uint64",
		"AddrDependsOnLoad": "bool",
	}
	typ := reflect.TypeOf(isa.Inst{})
	if typ.NumField() != len(want) {
		t.Fatalf("isa.Inst has %d fields, codec encodes %d: bump trace.CodecVersion and extend the codec",
			typ.NumField(), len(want))
	}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if got := f.Type.String(); want[f.Name] != got {
			t.Fatalf("isa.Inst.%s is %s, codec expects %q: bump trace.CodecVersion and extend the codec",
				f.Name, got, want[f.Name])
		}
	}
}
