// Package trace generates the synthetic instruction traces that stand in
// for the paper's SPEC CPU2000 Alpha binaries.
//
// The paper runs 300M-instruction SimPoint intervals of 24 SPEC benchmarks
// on an SMTSIM derivative. We have neither the binaries nor the inputs, so
// each benchmark is replaced by a *profile*: a statistical description of
// the properties the SMT/runahead machinery actually reacts to — the
// instruction-class mix, the memory footprint and access pattern (which set
// the L2 miss rate and the memory-level parallelism), the register
// dependence structure (which sets the exploitable ILP), and the branch
// behaviour (which sets the predictor's accuracy and the icache footprint).
//
// Profiles are calibrated so the single-thread behaviour of each synthetic
// benchmark lands in the band that motivates the paper's ILP/MIX/MEM
// classification: art and mcf miss in the L2 constantly, mcf chases
// pointers (low MLP) while art and swim stream (high MLP), and eon or gzip
// almost never leave the L1. Everything is deterministic: a (profile,
// seed) pair always generates the identical trace.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Class is the paper's benchmark classification, derived from the L2 miss
// rate of the program running alone (§4).
type Class uint8

const (
	// ClassILP marks a high instruction-level-parallelism benchmark with a
	// small cache footprint.
	ClassILP Class = iota
	// ClassMEM marks a memory-bound benchmark with a high L2 miss rate.
	ClassMEM
)

// String names the class as in the paper.
func (c Class) String() string {
	if c == ClassMEM {
		return "MEM"
	}
	return "ILP"
}

// Mix gives the probability of each instruction class at generation time.
// The remaining probability mass (1 - sum) is integer ALU.
type Mix struct {
	Load    float64 // integer loads
	Store   float64 // integer stores
	FPLoad  float64 // FP loads (addresses still computed on the INT side)
	FPStore float64
	Branch  float64
	IntMul  float64
	FPAlu   float64
	FPMul   float64
	FPDiv   float64
}

// sum returns the total probability mass assigned to non-IntAlu classes.
func (m Mix) sum() float64 {
	return m.Load + m.Store + m.FPLoad + m.FPStore + m.Branch +
		m.IntMul + m.FPAlu + m.FPMul + m.FPDiv
}

// Profile statistically describes one benchmark.
type Profile struct {
	// Name is the SPEC benchmark name (e.g. "mcf").
	Name string
	// Class is the paper's ILP/MEM classification.
	Class Class
	// Mix is the instruction-class mix.
	Mix Mix

	// WorkingSet is the data footprint in bytes. Footprints larger than
	// the 1MB L2 produce steady-state L2 misses.
	WorkingSet uint64
	// HotBytes is the size of the hot data region (stack, globals) that
	// absorbs HotFrac of all accesses and stays cache-resident.
	HotBytes uint64
	// HotFrac is the fraction of memory accesses that go to the hot region.
	HotFrac float64
	// StreamFrac is the fraction of *cold* accesses that walk sequential
	// streams (high spatial locality, high MLP when they miss); the rest
	// are uniform over the working set.
	StreamFrac float64
	// Streams is the number of concurrent sequential streams.
	Streams int
	// StrideBytes is the stream advance per access.
	StrideBytes uint64
	// ChaseFrac is the fraction of loads whose address depends on the value
	// of an earlier load (pointer chasing). Chased loads cannot be
	// prefetched by runahead when their producer is invalid, which is what
	// caps mcf's MLP.
	ChaseFrac float64

	// DepP is the geometric parameter for register dependence distance:
	// an operand reads the destination of the instruction d+1 earlier,
	// d ~ Geometric(DepP). Larger DepP means tighter dependence chains and
	// lower ILP.
	DepP float64
	// FarFrac is the fraction of source operands that read long-dead values
	// (always ready), modelling immediates and loop invariants.
	FarFrac float64

	// StrongBiasFrac is the fraction of static branches that are strongly
	// biased (easy to predict); the rest are weakly biased.
	StrongBiasFrac float64
	// TakenRate is the mean taken probability of biased branches.
	TakenRate float64
	// CodeBytes is the instruction footprint, which sets icache behaviour.
	CodeBytes uint64
}

// profiles is the registry of the 24 SPEC CPU2000 benchmarks named in
// Table 2 of the paper. Calibration notes:
//
//   - L2-miss-per-instruction targets (single-thread, steady state):
//     art/mcf ≈ 0.02–0.03, swim/equake/lucas ≈ 0.01–0.02,
//     twolf/vpr/parser/applu ≈ 0.004–0.01, ILP group < 0.001.
//   - mcf gets ChaseFrac 0.75: its misses are dependent, so runahead gains
//     less MLP from it (matching the paper's moderate mcf speedups).
//   - art/swim/applu/lucas stream: independent misses, big MLP for RaT.
//   - FP benchmarks get the FP-heavy mixes that make §3.3's FP
//     invalidation matter.
var profiles = map[string]Profile{
	// ---- Memory-bound group -------------------------------------------
	"art": {
		Name: "art", Class: ClassMEM,
		Mix:        Mix{Load: 0.22, Store: 0.06, FPLoad: 0.08, FPStore: 0.02, Branch: 0.10, FPAlu: 0.16, FPMul: 0.08},
		WorkingSet: 6 << 20, HotBytes: 16 << 10, HotFrac: 0.45,
		StreamFrac: 0.85, Streams: 6, StrideBytes: 16, ChaseFrac: 0.05,
		DepP: 0.48, FarFrac: 0.12,
		StrongBiasFrac: 0.95, TakenRate: 0.65, CodeBytes: 24 << 10,
	},
	"mcf": {
		Name: "mcf", Class: ClassMEM,
		Mix:        Mix{Load: 0.30, Store: 0.09, Branch: 0.16, IntMul: 0.01},
		WorkingSet: 8 << 20, HotBytes: 24 << 10, HotFrac: 0.80,
		StreamFrac: 0.10, Streams: 2, StrideBytes: 32, ChaseFrac: 0.75,
		DepP: 0.48, FarFrac: 0.12,
		StrongBiasFrac: 0.72, TakenRate: 0.55, CodeBytes: 16 << 10,
	},
	"swim": {
		Name: "swim", Class: ClassMEM,
		Mix:        Mix{Load: 0.18, Store: 0.07, FPLoad: 0.10, FPStore: 0.04, Branch: 0.03, FPAlu: 0.24, FPMul: 0.12},
		WorkingSet: 12 << 20, HotBytes: 16 << 10, HotFrac: 0.55,
		StreamFrac: 0.95, Streams: 8, StrideBytes: 8, ChaseFrac: 0.0,
		DepP: 0.40, FarFrac: 0.18,
		StrongBiasFrac: 0.99, TakenRate: 0.85, CodeBytes: 12 << 10,
	},
	"twolf": {
		Name: "twolf", Class: ClassMEM,
		Mix:        Mix{Load: 0.26, Store: 0.09, Branch: 0.14, IntMul: 0.02},
		WorkingSet: 3 << 21 >> 1, HotBytes: 32 << 10, HotFrac: 0.85,
		StreamFrac: 0.15, Streams: 2, StrideBytes: 32, ChaseFrac: 0.35,
		DepP: 0.48, FarFrac: 0.12,
		StrongBiasFrac: 0.70, TakenRate: 0.55, CodeBytes: 48 << 10,
	},
	"equake": {
		Name: "equake", Class: ClassMEM,
		Mix:        Mix{Load: 0.20, Store: 0.06, FPLoad: 0.12, FPStore: 0.03, Branch: 0.08, FPAlu: 0.20, FPMul: 0.10},
		WorkingSet: 5 << 20, HotBytes: 24 << 10, HotFrac: 0.68,
		StreamFrac: 0.70, Streams: 4, StrideBytes: 8, ChaseFrac: 0.20,
		DepP: 0.46, FarFrac: 0.14,
		StrongBiasFrac: 0.92, TakenRate: 0.70, CodeBytes: 24 << 10,
	},
	"lucas": {
		Name: "lucas", Class: ClassMEM,
		Mix:        Mix{Load: 0.14, Store: 0.06, FPLoad: 0.12, FPStore: 0.05, Branch: 0.02, FPAlu: 0.26, FPMul: 0.16},
		WorkingSet: 10 << 20, HotBytes: 16 << 10, HotFrac: 0.60,
		StreamFrac: 0.90, Streams: 4, StrideBytes: 8, ChaseFrac: 0.0,
		DepP: 0.40, FarFrac: 0.18,
		StrongBiasFrac: 0.99, TakenRate: 0.90, CodeBytes: 12 << 10,
	},
	"parser": {
		Name: "parser", Class: ClassMEM,
		Mix:        Mix{Load: 0.27, Store: 0.10, Branch: 0.17},
		WorkingSet: 2 << 20, HotBytes: 48 << 10, HotFrac: 0.85,
		StreamFrac: 0.20, Streams: 2, StrideBytes: 32, ChaseFrac: 0.40,
		DepP: 0.48, FarFrac: 0.12,
		StrongBiasFrac: 0.70, TakenRate: 0.58, CodeBytes: 64 << 10,
	},
	"vpr": {
		Name: "vpr", Class: ClassMEM,
		Mix:        Mix{Load: 0.25, Store: 0.08, Branch: 0.13, FPAlu: 0.06},
		WorkingSet: 3 << 21 >> 1, HotBytes: 40 << 10, HotFrac: 0.85,
		StreamFrac: 0.25, Streams: 2, StrideBytes: 32, ChaseFrac: 0.30,
		DepP: 0.48, FarFrac: 0.12,
		StrongBiasFrac: 0.72, TakenRate: 0.55, CodeBytes: 48 << 10,
	},
	"applu": {
		Name: "applu", Class: ClassMEM,
		Mix:        Mix{Load: 0.16, Store: 0.06, FPLoad: 0.12, FPStore: 0.04, Branch: 0.03, FPAlu: 0.24, FPMul: 0.14, FPDiv: 0.01},
		WorkingSet: 8 << 20, HotBytes: 16 << 10, HotFrac: 0.65,
		StreamFrac: 0.88, Streams: 6, StrideBytes: 8, ChaseFrac: 0.0,
		DepP: 0.40, FarFrac: 0.18,
		StrongBiasFrac: 0.99, TakenRate: 0.88, CodeBytes: 24 << 10,
	},

	// ---- ILP group -----------------------------------------------------
	"gzip": {
		Name: "gzip", Class: ClassILP,
		Mix:        Mix{Load: 0.22, Store: 0.08, Branch: 0.15, IntMul: 0.01},
		WorkingSet: 192 << 10, HotBytes: 64 << 10, HotFrac: 0.86,
		StreamFrac: 0.70, Streams: 2, StrideBytes: 8, ChaseFrac: 0.05,
		DepP: 0.30, FarFrac: 0.34,
		StrongBiasFrac: 0.88, TakenRate: 0.60, CodeBytes: 16 << 10,
	},
	"bzip2": {
		Name: "bzip2", Class: ClassILP,
		Mix:        Mix{Load: 0.24, Store: 0.09, Branch: 0.13, IntMul: 0.01},
		WorkingSet: 512 << 10, HotBytes: 64 << 10, HotFrac: 0.84,
		StreamFrac: 0.65, Streams: 2, StrideBytes: 8, ChaseFrac: 0.06,
		DepP: 0.31, FarFrac: 0.33,
		StrongBiasFrac: 0.86, TakenRate: 0.58, CodeBytes: 20 << 10,
	},
	"eon": {
		Name: "eon", Class: ClassILP,
		Mix:        Mix{Load: 0.22, Store: 0.10, Branch: 0.11, FPAlu: 0.10, FPMul: 0.05},
		WorkingSet: 96 << 10, HotBytes: 48 << 10, HotFrac: 0.90,
		StreamFrac: 0.40, Streams: 2, StrideBytes: 8, ChaseFrac: 0.08,
		DepP: 0.28, FarFrac: 0.36,
		StrongBiasFrac: 0.92, TakenRate: 0.55, CodeBytes: 96 << 10,
	},
	"gcc": {
		Name: "gcc", Class: ClassILP,
		Mix:        Mix{Load: 0.25, Store: 0.11, Branch: 0.16},
		WorkingSet: 768 << 10, HotBytes: 96 << 10, HotFrac: 0.84,
		StreamFrac: 0.45, Streams: 3, StrideBytes: 16, ChaseFrac: 0.12,
		DepP: 0.33, FarFrac: 0.30,
		StrongBiasFrac: 0.82, TakenRate: 0.57, CodeBytes: 192 << 10,
	},
	"crafty": {
		Name: "crafty", Class: ClassILP,
		Mix:        Mix{Load: 0.27, Store: 0.07, Branch: 0.12, IntMul: 0.02},
		WorkingSet: 256 << 10, HotBytes: 96 << 10, HotFrac: 0.88,
		StreamFrac: 0.30, Streams: 2, StrideBytes: 8, ChaseFrac: 0.05,
		DepP: 0.26, FarFrac: 0.38,
		StrongBiasFrac: 0.87, TakenRate: 0.52, CodeBytes: 64 << 10,
	},
	"vortex": {
		Name: "vortex", Class: ClassILP,
		Mix:        Mix{Load: 0.26, Store: 0.13, Branch: 0.14},
		WorkingSet: 640 << 10, HotBytes: 96 << 10, HotFrac: 0.85,
		StreamFrac: 0.45, Streams: 2, StrideBytes: 16, ChaseFrac: 0.10,
		DepP: 0.29, FarFrac: 0.34,
		StrongBiasFrac: 0.90, TakenRate: 0.56, CodeBytes: 128 << 10,
	},
	"gap": {
		Name: "gap", Class: ClassILP,
		Mix:        Mix{Load: 0.24, Store: 0.10, Branch: 0.12, IntMul: 0.03},
		WorkingSet: 384 << 10, HotBytes: 64 << 10, HotFrac: 0.86,
		StreamFrac: 0.50, Streams: 2, StrideBytes: 16, ChaseFrac: 0.08,
		DepP: 0.30, FarFrac: 0.34,
		StrongBiasFrac: 0.88, TakenRate: 0.58, CodeBytes: 48 << 10,
	},
	"perl": {
		Name: "perl", Class: ClassILP,
		Mix:        Mix{Load: 0.26, Store: 0.11, Branch: 0.15},
		WorkingSet: 320 << 10, HotBytes: 80 << 10, HotFrac: 0.86,
		StreamFrac: 0.40, Streams: 2, StrideBytes: 8, ChaseFrac: 0.10,
		DepP: 0.32, FarFrac: 0.31,
		StrongBiasFrac: 0.86, TakenRate: 0.56, CodeBytes: 96 << 10,
	},
	"apsi": {
		Name: "apsi", Class: ClassILP,
		Mix:        Mix{Load: 0.16, Store: 0.06, FPLoad: 0.10, FPStore: 0.04, Branch: 0.05, FPAlu: 0.22, FPMul: 0.12, FPDiv: 0.005},
		WorkingSet: 384 << 10, HotBytes: 64 << 10, HotFrac: 0.82,
		StreamFrac: 0.85, Streams: 4, StrideBytes: 8, ChaseFrac: 0.0,
		DepP: 0.26, FarFrac: 0.38,
		StrongBiasFrac: 0.96, TakenRate: 0.78, CodeBytes: 48 << 10,
	},
	"fma3d": {
		Name: "fma3d", Class: ClassILP,
		Mix:        Mix{Load: 0.17, Store: 0.07, FPLoad: 0.10, FPStore: 0.04, Branch: 0.06, FPAlu: 0.22, FPMul: 0.11},
		WorkingSet: 512 << 10, HotBytes: 64 << 10, HotFrac: 0.80,
		StreamFrac: 0.80, Streams: 4, StrideBytes: 8, ChaseFrac: 0.02,
		DepP: 0.27, FarFrac: 0.36,
		StrongBiasFrac: 0.94, TakenRate: 0.74, CodeBytes: 96 << 10,
	},
	"mesa": {
		Name: "mesa", Class: ClassILP,
		Mix:        Mix{Load: 0.20, Store: 0.08, FPLoad: 0.06, FPStore: 0.03, Branch: 0.08, FPAlu: 0.16, FPMul: 0.09},
		WorkingSet: 256 << 10, HotBytes: 64 << 10, HotFrac: 0.86,
		StreamFrac: 0.70, Streams: 3, StrideBytes: 8, ChaseFrac: 0.03,
		DepP: 0.27, FarFrac: 0.37,
		StrongBiasFrac: 0.93, TakenRate: 0.68, CodeBytes: 64 << 10,
	},
	"mgrid": {
		Name: "mgrid", Class: ClassILP,
		Mix:        Mix{Load: 0.15, Store: 0.05, FPLoad: 0.12, FPStore: 0.04, Branch: 0.02, FPAlu: 0.26, FPMul: 0.14},
		WorkingSet: 640 << 10, HotBytes: 48 << 10, HotFrac: 0.76,
		StreamFrac: 0.95, Streams: 6, StrideBytes: 8, ChaseFrac: 0.0,
		DepP: 0.24, FarFrac: 0.40,
		StrongBiasFrac: 0.99, TakenRate: 0.90, CodeBytes: 16 << 10,
	},
	"galgel": {
		Name: "galgel", Class: ClassILP,
		Mix:        Mix{Load: 0.16, Store: 0.06, FPLoad: 0.10, FPStore: 0.03, Branch: 0.04, FPAlu: 0.24, FPMul: 0.13},
		WorkingSet: 448 << 10, HotBytes: 64 << 10, HotFrac: 0.80,
		StreamFrac: 0.90, Streams: 4, StrideBytes: 8, ChaseFrac: 0.0,
		DepP: 0.25, FarFrac: 0.39,
		StrongBiasFrac: 0.97, TakenRate: 0.82, CodeBytes: 32 << 10,
	},
	"wupwise": {
		Name: "wupwise", Class: ClassILP,
		Mix:        Mix{Load: 0.16, Store: 0.06, FPLoad: 0.10, FPStore: 0.04, Branch: 0.03, FPAlu: 0.24, FPMul: 0.14},
		WorkingSet: 512 << 10, HotBytes: 48 << 10, HotFrac: 0.78,
		StreamFrac: 0.92, Streams: 4, StrideBytes: 8, ChaseFrac: 0.0,
		DepP: 0.25, FarFrac: 0.39,
		StrongBiasFrac: 0.98, TakenRate: 0.86, CodeBytes: 24 << 10,
	},
	"ammp": {
		Name: "ammp", Class: ClassILP,
		Mix:        Mix{Load: 0.19, Store: 0.07, FPLoad: 0.09, FPStore: 0.03, Branch: 0.07, FPAlu: 0.20, FPMul: 0.11, FPDiv: 0.005},
		WorkingSet: 768 << 10, HotBytes: 64 << 10, HotFrac: 0.80,
		StreamFrac: 0.60, Streams: 3, StrideBytes: 16, ChaseFrac: 0.10,
		DepP: 0.29, FarFrac: 0.34,
		StrongBiasFrac: 0.92, TakenRate: 0.66, CodeBytes: 48 << 10,
	},
}

// Lookup returns the profile for a SPEC benchmark name. The second result
// is false if the benchmark is unknown.
func Lookup(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// Find returns the profile for a SPEC benchmark name, reporting an
// unknown name — which can arrive straight from a user's flag, scenario
// file, or HTTP request — as an error listing the valid names, never a
// panic.
func Find(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown benchmark %q (valid benchmarks: %s)",
			name, strings.Join(Names(), ", "))
	}
	return p, nil
}

// MustLookup returns the profile for name or panics with Find's error.
// Workload tables are static data, so a missing profile is a programming
// error; dynamic lookups use Find (or Lookup) instead.
func MustLookup(name string) Profile {
	p, err := Find(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns all registered benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
