package trace

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/isa"
)

// CodecVersion identifies the binary trace encoding produced by
// AppendBinary. Any change to the field set or layout of the encoding —
// including growing isa.Inst — must bump it, so that persisted traces from
// an older build decode as a version mismatch rather than as garbage.
const CodecVersion = 1

// AppendBinary appends a deterministic little-endian encoding of the trace
// to buf and returns the extended slice. The encoding captures every field
// the simulator can observe (identity, geometry, and the full instruction
// sequence), so DecodeBinary reconstructs a trace indistinguishable from
// the original.
func (t *Trace) AppendBinary(buf []byte) []byte {
	buf = appendString(buf, t.Name)
	buf = append(buf, byte(t.Class))
	buf = binary.LittleEndian.AppendUint64(buf, t.coldBase)
	buf = binary.LittleEndian.AppendUint64(buf, t.coldSpan)
	buf = binary.LittleEndian.AppendUint64(buf, t.shiftStep)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(t.insts)))
	for i := range t.insts {
		in := &t.insts[i]
		buf = binary.LittleEndian.AppendUint64(buf, in.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, in.PC)
		buf = append(buf, byte(in.Op))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(in.Dst))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(in.Src1))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(in.Src2))
		buf = binary.LittleEndian.AppendUint64(buf, in.Addr)
		buf = appendBool(buf, in.Taken)
		buf = binary.LittleEndian.AppendUint64(buf, in.Target)
		buf = appendBool(buf, in.AddrDependsOnLoad)
	}
	return buf
}

// EncodedSize returns the exact byte length AppendBinary will produce,
// letting callers size the destination buffer in one allocation.
func (t *Trace) EncodedSize() int {
	const perInst = 8 + 8 + 1 + 2 + 2 + 2 + 8 + 1 + 8 + 1
	return 4 + len(t.Name) + 1 + 3*8 + 8 + len(t.insts)*perInst
}

// DecodeBinary reconstructs a trace from an AppendBinary encoding. Any
// truncation, trailing garbage, or structurally impossible value is
// reported as an error — callers treat a failed decode as a cache miss,
// never as a crash.
func DecodeBinary(data []byte) (*Trace, error) {
	d := codecReader{data: data}
	t := &Trace{}
	t.Name = d.str()
	t.Class = Class(d.u8())
	t.coldBase = d.u64()
	t.coldSpan = d.u64()
	t.shiftStep = d.u64()
	n := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if n == 0 || n > math.MaxInt32 {
		return nil, fmt.Errorf("trace: decode: impossible instruction count %d", n)
	}
	const perInst = 41
	if remaining := len(d.data) - d.off; uint64(remaining) != n*perInst {
		return nil, fmt.Errorf("trace: decode: %d bytes of instructions for count %d", remaining, n)
	}
	t.insts = make([]isa.Inst, n)
	for i := range t.insts {
		in := &t.insts[i]
		in.Seq = d.u64()
		in.PC = d.u64()
		in.Op = isa.Op(d.u8())
		in.Dst = isa.Reg(int16(d.u16()))
		in.Src1 = isa.Reg(int16(d.u16()))
		in.Src2 = isa.Reg(int16(d.u16()))
		in.Addr = d.u64()
		in.Taken = d.bool()
		in.Target = d.u64()
		in.AddrDependsOnLoad = d.bool()
	}
	if d.err != nil {
		return nil, d.err
	}
	return t, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// codecReader is a bounds-checked cursor over encoded bytes. The first
// out-of-bounds read latches err and every later read returns zero, so
// decode loops stay straight-line and check err once.
type codecReader struct {
	data []byte
	off  int
	err  error
}

func (d *codecReader) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("trace: decode: truncated at offset %d", d.off)
	}
}

func (d *codecReader) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.data) {
		d.fail()
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *codecReader) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *codecReader) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *codecReader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *codecReader) bool() bool {
	v := d.u8()
	if v > 1 && d.err == nil {
		d.err = fmt.Errorf("trace: decode: bool byte %d at offset %d", v, d.off-1)
	}
	return v == 1
}

func (d *codecReader) str() string {
	b := d.take(4)
	if b == nil {
		return ""
	}
	n := binary.LittleEndian.Uint32(b)
	if n > 1<<20 {
		d.fail()
		return ""
	}
	s := d.take(int(n))
	return string(s)
}
