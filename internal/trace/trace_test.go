package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestLookup(t *testing.T) {
	if _, ok := Lookup("mcf"); !ok {
		t.Fatal("mcf missing from registry")
	}
	if _, ok := Lookup("nonexistent"); ok {
		t.Fatal("bogus benchmark found")
	}
}

// TestFindErrorListsValidNames: the error-returning lookup names every
// valid benchmark, so a typo in a flag, scenario file or HTTP request is
// self-correcting instead of a panic.
func TestFindErrorListsValidNames(t *testing.T) {
	if _, err := Find("mcf"); err != nil {
		t.Fatalf("Find(mcf) = %v", err)
	}
	_, err := Find("nope")
	if err == nil {
		t.Fatal("Find on unknown benchmark returned no error")
	}
	for _, want := range []string{`"nope"`, "mcf", "wupwise"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Find error %q does not mention %s", err, want)
		}
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustLookup on unknown benchmark did not panic")
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "valid benchmarks") {
			t.Fatalf("MustLookup panic %v does not carry Find's name-listing error", r)
		}
	}()
	MustLookup("nope")
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 24 {
		t.Fatalf("registry has %d benchmarks, want the paper's 24", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestAllTable2BenchmarksPresent(t *testing.T) {
	// Every benchmark named in Table 2 of the paper must have a profile.
	table2 := []string{
		"ammp", "applu", "apsi", "art", "bzip2", "crafty", "eon", "equake",
		"fma3d", "galgel", "gap", "gcc", "gzip", "lucas", "mcf", "mesa",
		"mgrid", "parser", "perl", "swim", "twolf", "vortex", "vpr", "wupwise",
	}
	for _, n := range table2 {
		if _, ok := Lookup(n); !ok {
			t.Errorf("Table 2 benchmark %q has no profile", n)
		}
	}
}

func TestProfileMixesValid(t *testing.T) {
	for _, n := range Names() {
		p := MustLookup(n)
		if s := p.Mix.sum(); s <= 0 || s > 1 {
			t.Errorf("%s: mix mass %v outside (0,1]", n, s)
		}
		if p.WorkingSet < p.HotBytes {
			t.Errorf("%s: working set %d smaller than hot region %d", n, p.WorkingSet, p.HotBytes)
		}
		if p.HotFrac < 0 || p.HotFrac > 1 || p.StreamFrac < 0 || p.StreamFrac > 1 {
			t.Errorf("%s: fractions out of range", n)
		}
		if p.DepP <= 0 || p.DepP >= 1 {
			t.Errorf("%s: DepP %v outside (0,1)", n, p.DepP)
		}
	}
}

func TestMEMClassHasBigFootprints(t *testing.T) {
	// MEM benchmarks must have working sets well beyond the 1MB L2; ILP
	// benchmarks must fit.
	const l2 = 1 << 20
	for _, n := range Names() {
		p := MustLookup(n)
		switch p.Class {
		case ClassMEM:
			if p.WorkingSet <= l2 {
				t.Errorf("MEM benchmark %s has working set %d <= L2", n, p.WorkingSet)
			}
		case ClassILP:
			if p.WorkingSet > l2 {
				t.Errorf("ILP benchmark %s has working set %d > L2", n, p.WorkingSet)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := MustLookup("mcf")
	a := MustGenerate(p, Options{Len: 5000, Seed: 9})
	b := MustGenerate(p, Options{Len: 5000, Seed: 9})
	for i := uint64(0); i < 5000; i++ {
		if *a.At(i) != *b.At(i) {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a.At(i), b.At(i))
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p := MustLookup("art")
	a := MustGenerate(p, Options{Len: 2000, Seed: 1})
	b := MustGenerate(p, Options{Len: 2000, Seed: 2})
	same := 0
	for i := uint64(0); i < 2000; i++ {
		if a.At(i).Addr == b.At(i).Addr && a.At(i).Op == b.At(i).Op {
			same++
		}
	}
	if same > 1000 {
		t.Fatalf("different seeds produced %d/2000 identical (op,addr) pairs", same)
	}
}

func TestTraceWrapsModulo(t *testing.T) {
	p := MustLookup("gzip")
	tr := MustGenerate(p, Options{Len: 100, Seed: 1})
	if tr.At(0) != tr.At(100) || tr.At(5) != tr.At(205) {
		t.Fatal("At does not wrap modulo trace length")
	}
}

func TestMixMatchesProfile(t *testing.T) {
	// The empirical instruction mix must track the profile probabilities.
	for _, name := range []string{"mcf", "art", "gzip", "swim"} {
		p := MustLookup(name)
		tr := MustGenerate(p, Options{Len: 50000, Seed: 3})
		s := tr.Summarize()
		wantLoads := p.Mix.Load + p.Mix.FPLoad
		gotLoads := float64(s.Loads) / float64(s.Total)
		if math.Abs(gotLoads-wantLoads) > 0.02 {
			t.Errorf("%s: load fraction %v, want ~%v", name, gotLoads, wantLoads)
		}
		wantBr := p.Mix.Branch
		gotBr := float64(s.Branches) / float64(s.Total)
		if math.Abs(gotBr-wantBr) > 0.02 {
			t.Errorf("%s: branch fraction %v, want ~%v", name, gotBr, wantBr)
		}
	}
}

func TestChasedLoadsOnlyWhereProfiled(t *testing.T) {
	mcf := MustGenerate(MustLookup("mcf"), Options{Len: 30000, Seed: 1})
	swim := MustGenerate(MustLookup("swim"), Options{Len: 30000, Seed: 1})
	sm, ss := mcf.Summarize(), swim.Summarize()
	if sm.ChasedLoads == 0 {
		t.Error("mcf generated no pointer-chased loads")
	}
	if ss.ChasedLoads != 0 {
		t.Errorf("swim (ChaseFrac 0) generated %d chased loads", ss.ChasedLoads)
	}
	// Chased fraction should be near the profile value among eligible loads.
	frac := float64(sm.ChasedLoads) / float64(sm.Loads)
	if frac < 0.3 {
		t.Errorf("mcf chased fraction %v unexpectedly low", frac)
	}
}

func TestChasedLoadSourcesAreLoadDests(t *testing.T) {
	tr := MustGenerate(MustLookup("mcf"), Options{Len: 20000, Seed: 5})
	// Walk the trace; for every chased load, its Src1 must match the Dst of
	// a recent earlier integer load.
	recent := make(map[isa.Reg]int) // multiset: reg -> count in window
	var order []isa.Reg
	for i := 0; i < tr.Len(); i++ {
		in := tr.At(uint64(i))
		if in.AddrDependsOnLoad {
			if recent[in.Src1] == 0 {
				t.Fatalf("inst %d chases register %v with no recent load producer", i, in.Src1)
			}
		}
		if in.Op == isa.OpLoad {
			recent[in.Dst]++
			order = append(order, in.Dst)
			if len(order) > 64 {
				recent[order[0]]--
				order = order[1:]
			}
		}
	}
}

func TestRegistersWellFormed(t *testing.T) {
	for _, name := range []string{"mcf", "swim", "eon"} {
		tr := MustGenerate(MustLookup(name), Options{Len: 20000, Seed: 7})
		for i := 0; i < tr.Len(); i++ {
			in := tr.At(uint64(i))
			if in.Dst != isa.RegNone && !in.Dst.Valid() {
				t.Fatalf("%s inst %d: invalid dst %v", name, i, in.Dst)
			}
			for _, src := range []isa.Reg{in.Src1, in.Src2} {
				if src != isa.RegNone && !src.Valid() {
					t.Fatalf("%s inst %d: invalid src %v", name, i, src)
				}
			}
			switch in.Op {
			case isa.OpLoad, isa.OpIntAlu, isa.OpIntMul:
				if !in.Dst.IsInt() {
					t.Fatalf("%s inst %d: %v writes %v (want int reg)", name, i, in.Op, in.Dst)
				}
			case isa.OpFpLoad, isa.OpFpAlu, isa.OpFpMul, isa.OpFpDiv:
				if !in.Dst.IsFP() {
					t.Fatalf("%s inst %d: %v writes %v (want fp reg)", name, i, in.Op, in.Dst)
				}
			case isa.OpStore, isa.OpFpStore, isa.OpBranch:
				if in.Dst != isa.RegNone {
					t.Fatalf("%s inst %d: %v has dst %v", name, i, in.Op, in.Dst)
				}
			}
			if in.Op.IsMem() {
				if !in.Src1.IsInt() {
					t.Fatalf("%s inst %d: mem op base reg %v not integer", name, i, in.Src1)
				}
				if in.Addr == 0 {
					t.Fatalf("%s inst %d: mem op with zero address", name, i)
				}
			}
		}
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	p := MustLookup("art")
	opt := Options{Len: 30000, Seed: 1, DataBase: 0x4000_0000}
	tr := MustGenerate(p, opt)
	lo, hi := opt.DataBase, opt.DataBase+p.WorkingSet+4096
	for i := 0; i < tr.Len(); i++ {
		in := tr.At(uint64(i))
		if !in.Op.IsMem() {
			continue
		}
		if in.Addr < lo || in.Addr >= hi {
			t.Fatalf("inst %d address %#x outside [%#x,%#x)", i, in.Addr, lo, hi)
		}
	}
}

func TestPCStaysInCodeRegion(t *testing.T) {
	p := MustLookup("gcc")
	opt := Options{Len: 30000, Seed: 2, CodeBase: 0x0100_0000}
	tr := MustGenerate(p, opt)
	lo := opt.CodeBase
	hi := opt.CodeBase + p.CodeBytes + uint64(4*tr.Len())
	for i := 0; i < tr.Len(); i++ {
		in := tr.At(uint64(i))
		if in.PC < lo || in.PC >= hi {
			t.Fatalf("inst %d PC %#x outside code region", i, in.PC)
		}
	}
}

func TestBranchTargetsStaticPerPC(t *testing.T) {
	// Two dynamic instances of the same static branch should mostly share a
	// target (static CFG), modulo the small indirect fraction.
	tr := MustGenerate(MustLookup("gzip"), Options{Len: 50000, Seed: 4})
	targets := map[uint64]map[uint64]int{}
	for i := 0; i < tr.Len(); i++ {
		in := tr.At(uint64(i))
		if !in.Op.IsBranch() {
			continue
		}
		if targets[in.PC] == nil {
			targets[in.PC] = map[uint64]int{}
		}
		targets[in.PC][in.Target]++
	}
	multi, total := 0, 0
	for _, m := range targets {
		n := 0
		for _, c := range m {
			n += c
		}
		if n < 5 {
			continue
		}
		total++
		if len(m) > 2 { // fixed target plus occasional indirect draws
			multi++
		}
	}
	if total == 0 {
		t.Skip("no hot static branches in window")
	}
	if frac := float64(multi) / float64(total); frac > 0.5 {
		t.Fatalf("%.0f%% of hot static branches have >2 targets; CFG not static enough", frac*100)
	}
}

func TestMEMTracesTouchMoreUniqueLines(t *testing.T) {
	uniqueLines := func(name string) int {
		tr := MustGenerate(MustLookup(name), Options{Len: 40000, Seed: 6})
		lines := map[uint64]bool{}
		for i := 0; i < tr.Len(); i++ {
			in := tr.At(uint64(i))
			if in.Op.IsMem() {
				lines[in.Addr>>6] = true
			}
		}
		return len(lines)
	}
	art, eon := uniqueLines("art"), uniqueLines("eon")
	if art < 2*eon {
		t.Fatalf("art touches %d lines, eon %d; MEM footprint not dominant", art, eon)
	}
}

func TestGenerateDefaultLen(t *testing.T) {
	tr := MustGenerate(MustLookup("gzip"), Options{})
	if tr.Len() != DefaultLen {
		t.Fatalf("default length = %d, want %d", tr.Len(), DefaultLen)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(MustLookup("gzip"), Options{Len: -5}); err == nil {
		t.Fatal("no error for negative length")
	}
	bad := MustLookup("gzip")
	bad.Mix.Load = 2
	if _, err := Generate(bad, Options{Len: 100}); err == nil {
		t.Fatal("no error for instruction mix summing past 1")
	}
}

func TestMustGeneratePanicsOnNegativeLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative length")
		}
	}()
	MustGenerate(MustLookup("gzip"), Options{Len: -5})
}

func BenchmarkGenerate(b *testing.B) {
	p := MustLookup("mcf")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MustGenerate(p, Options{Len: 10000, Seed: uint64(i)})
	}
}
