package trace

import (
	"fmt"
	"unsafe"

	"repro/internal/isa"
	"repro/internal/rng"
)

// Options controls trace generation.
type Options struct {
	// Len is the number of instructions to generate.
	Len int
	// Seed decorrelates traces of the same benchmark (e.g. two copies of
	// art in one workload must not walk identical address sequences).
	Seed uint64
	// DataBase is the base address of the thread's data region. Threads in
	// a workload are given disjoint regions so the shared caches see real
	// per-thread footprints rather than accidental sharing.
	DataBase uint64
	// CodeBase is the base address of the thread's code region.
	CodeBase uint64
}

// DefaultLen is the default trace length. The paper simulates 300M
// instruction SimPoint intervals; our synthetic programs are stationary by
// construction, so a much shorter window measures the same steady state
// (see DESIGN.md §3).
const DefaultLen = 60_000

// withDefaults fills in zero fields.
func (o Options) withDefaults() Options {
	if o.Len == 0 {
		o.Len = DefaultLen
	}
	if o.DataBase == 0 {
		o.DataBase = 0x1000_0000
	}
	if o.CodeBase == 0 {
		o.CodeBase = 0x0040_0000
	}
	return o
}

// Normalized returns the options with all defaults applied, so that two
// Options values describing the same trace compare equal. Cache keys must
// be built from normalized options: Generate(p, o) and
// Generate(p, o.Normalized()) produce identical traces.
func (o Options) Normalized() Options { return o.withDefaults() }

// Trace is a generated instruction sequence for one thread context.
// Traces are immutable after generation; the simulator re-executes them in
// a loop per the FAME methodology.
//
// Cold data addresses shift by a fixed offset every trace iteration (see
// AddrAt): a short looping trace would otherwise touch a tiny, fully
// cache-resident footprint, while the 300M-instruction intervals it stands
// in for keep walking fresh memory. The shift keeps the *rate* of new-line
// touches stationary across iterations, which is the property the L2 miss
// rate (and hence the MEM classification) depends on.
type Trace struct {
	// Name is the benchmark name this trace was generated from.
	Name string
	// Class is the benchmark's ILP/MEM classification.
	Class Class

	insts []isa.Inst

	// Cold-region geometry for iteration shifting (zero for hand-built
	// traces, which then loop with fixed addresses).
	coldBase  uint64
	coldSpan  uint64
	shiftStep uint64
}

// FromInsts wraps a hand-built instruction sequence as a Trace. Tests and
// custom workloads use it; Generate is the production path.
func FromInsts(name string, class Class, insts []isa.Inst) *Trace {
	if len(insts) == 0 {
		//lint:panicfree documented precondition on a test/hand-built-trace helper; an empty trace is a programming error, not runtime input
		panic("trace: FromInsts with no instructions")
	}
	for i := range insts {
		insts[i].Seq = uint64(i)
	}
	return &Trace{Name: name, Class: class, insts: insts}
}

// Len returns the number of instructions in one iteration of the trace.
func (t *Trace) Len() int { return len(t.insts) }

// At returns the instruction at program-order position seq. Positions wrap
// modulo Len, modelling FAME's trace re-execution. The returned pointer
// aliases internal storage and must not be mutated.
func (t *Trace) At(seq uint64) *isa.Inst {
	return &t.insts[seq%uint64(len(t.insts))]
}

// AddrAt resolves the effective address of the memory instruction at
// absolute position seq. Hot-region addresses are iteration-invariant (the
// hot set is meant to stay resident); cold addresses advance by shiftStep
// per iteration, wrapping within the cold span, so re-executions keep
// touching fresh lines at the profile's calibrated rate. The function is
// pure in seq, which runahead/flush re-execution correctness requires.
func (t *Trace) AddrAt(seq uint64) uint64 {
	in := &t.insts[seq%uint64(len(t.insts))]
	addr := in.Addr
	if t.shiftStep == 0 || t.coldSpan == 0 || addr < t.coldBase {
		return addr
	}
	iter := seq / uint64(len(t.insts))
	off := (addr - t.coldBase + iter*t.shiftStep) % t.coldSpan
	return t.coldBase + off
}

// Summary reports aggregate trace composition, used by calibration tests
// and the workload lister.
type Summary struct {
	Total       int
	Loads       int
	Stores      int
	Branches    int
	FPCompute   int
	ChasedLoads int
}

// Summarize scans the trace and counts instruction classes.
func (t *Trace) Summarize() Summary {
	var s Summary
	s.Total = len(t.insts)
	for i := range t.insts {
		in := &t.insts[i]
		switch {
		case in.Op.IsLoad():
			s.Loads++
			if in.AddrDependsOnLoad {
				s.ChasedLoads++
			}
		case in.Op.IsStore():
			s.Stores++
		case in.Op.IsBranch():
			s.Branches++
		case in.Op.IsFP():
			s.FPCompute++
		}
	}
	return s
}

// generator carries the mutable state of one generation run.
type generator struct {
	p   Profile
	opt Options

	ops    *rng.Source // instruction class draws
	addr   *rng.Source // address draws
	deps   *rng.Source // dependence distance draws
	branch *rng.Source // branch outcome draws

	// Round-robin destination allocation. Reserving a few registers as the
	// never-written "far" pool guarantees that a dependence distance under
	// the rotation period always names a live value.
	nextIntDst int
	nextFPDst  int

	// recentInt/recentFP hold the destination registers of the most recent
	// producer instructions, most recent first.
	recentInt regWindow
	recentFP  regWindow

	// lastLoadDst is the destination of the most recent integer load and
	// its age in producers, for pointer-chase dependences.
	lastLoadDst    isa.Reg
	lastLoadAge    int
	haveRecentLoad bool

	// streamPos tracks each sequential stream's offset within its region.
	streamPos []uint64

	pc uint64
}

const (
	// intDstRegs is the rotation period for integer destinations: r1..r27.
	// r0 models the zero register; r28..r31 form the always-ready far pool.
	intDstLo, intDstHi = 1, 27
	fpDstLo, fpDstHi   = 0, 27
	// maxDepDistance caps dependence draws below the rotation period so a
	// named register is guaranteed to still hold its producer's value.
	maxDepDistance = 24
	// chaseMaxAge bounds how stale a load destination may be and still be
	// used as a pointer-chase base address.
	chaseMaxAge = 20
)

// regWindow is a fixed ring over the last maxDepDistance producer
// destinations, most recent first. (A slice re-built per producer with
// append([]isa.Reg{r}, ...) dominated whole-run allocation profiles.)
type regWindow struct {
	buf  [maxDepDistance]isa.Reg
	head int // index of the most recent entry
	n    int
}

// push records a new most-recent producer destination.
func (w *regWindow) push(r isa.Reg) {
	w.head--
	if w.head < 0 {
		w.head = maxDepDistance - 1
	}
	w.buf[w.head] = r
	if w.n < maxDepDistance {
		w.n++
	}
}

// at returns the d-th most recent destination (0 = newest; d < len()).
func (w *regWindow) at(d int) isa.Reg {
	return w.buf[(w.head+d)%maxDepDistance]
}

// len returns the number of recorded destinations.
func (w *regWindow) len() int { return w.n }

// Generate builds a deterministic synthetic trace for profile p. A
// non-positive length (after defaults) or an instruction mix summing past
// 1 is reported as an error: both can arrive from user-editable scenario
// files or hand-built profiles, so they must not crash a serving process.
func Generate(p Profile, opt Options) (*Trace, error) {
	opt = opt.withDefaults()
	if opt.Len <= 0 {
		return nil, fmt.Errorf("trace: invalid length %d", opt.Len)
	}
	if s := p.Mix.sum(); s > 1 {
		return nil, fmt.Errorf("trace: %s instruction mix sums to %v > 1", p.Name, s)
	}
	root := rng.NewString(p.Name)
	// Mix the per-copy seed in so two copies of one benchmark diverge.
	root = rng.New(root.Uint64() ^ opt.Seed)
	g := &generator{
		p:           p,
		opt:         opt,
		ops:         root.Split(),
		addr:        root.Split(),
		deps:        root.Split(),
		branch:      root.Split(),
		nextIntDst:  intDstLo,
		nextFPDst:   fpDstLo,
		lastLoadDst: isa.RegNone,
		streamPos:   make([]uint64, max(1, p.Streams)),
		pc:          opt.CodeBase,
	}
	// Stagger stream start offsets so copies of a benchmark do not march in
	// lockstep through memory.
	for i := range g.streamPos {
		g.streamPos[i] = g.addr.Uint64n(max64(1, g.coldBytes()/uint64(len(g.streamPos))))
	}

	insts := make([]isa.Inst, opt.Len)
	for i := range insts {
		g.emit(uint64(i), &insts[i])
	}
	cold := g.coldBytes()
	// Iteration shift applies only to footprints beyond the 1MB L2 (the
	// Table 1 constant). For resident footprints the steady state is
	// fully-warm whatever the addresses, so looping over fixed addresses
	// is already correct; for capacity-bound footprints, shifting by ~1/16
	// of the cold span per iteration keeps the new-line touch rate
	// stationary, as the real 300M-instruction interval's would be.
	const l2Bytes = 1 << 20
	var step uint64
	if p.WorkingSet > l2Bytes {
		step = (cold / 16) &^ 63
		if step == 0 {
			step = 64
		}
	}
	return &Trace{
		Name:      p.Name,
		Class:     p.Class,
		insts:     insts,
		coldBase:  opt.DataBase + p.HotBytes,
		coldSpan:  cold,
		shiftStep: step,
	}, nil
}

// MustGenerate is Generate for statically known-good profiles and options
// (tests, benchmarks, compile-time tables); it panics on error.
func MustGenerate(p Profile, opt Options) *Trace {
	t, err := Generate(p, opt)
	if err != nil {
		panic(err)
	}
	return t
}

// SizeBytes estimates the trace's resident memory footprint, used by
// byte-bounded caches to account for stored traces.
func (t *Trace) SizeBytes() int64 {
	const instBytes = int64(unsafe.Sizeof(isa.Inst{}))
	return int64(unsafe.Sizeof(Trace{})) + int64(len(t.Name)) + int64(len(t.insts))*instBytes
}

// coldBytes returns the size of the non-hot data region.
func (g *generator) coldBytes() uint64 {
	if g.p.WorkingSet <= g.p.HotBytes {
		return 64
	}
	return g.p.WorkingSet - g.p.HotBytes
}

// emit fills in the instruction at trace position seq.
func (g *generator) emit(seq uint64, in *isa.Inst) {
	in.Seq = seq
	in.PC = g.pc
	in.Dst, in.Src1, in.Src2 = isa.RegNone, isa.RegNone, isa.RegNone

	op := g.pickOp()
	in.Op = op
	switch {
	case op.IsLoad():
		g.emitLoad(in)
	case op.IsStore():
		g.emitStore(in)
	case op.IsBranch():
		g.emitBranch(in)
	case op.IsFP():
		g.emitFPCompute(in)
	default:
		g.emitIntCompute(in)
	}

	// Advance the PC model: 4-byte instructions, branches redirect.
	if op.IsBranch() && in.Taken {
		g.pc = in.Target
	} else {
		g.pc += 4
	}
	if g.haveRecentLoad {
		g.lastLoadAge++
		if g.lastLoadAge > chaseMaxAge {
			g.haveRecentLoad = false
		}
	}
}

// pickOp draws an operation class from the profile mix.
func (g *generator) pickOp() isa.Op {
	v := g.ops.Float64()
	m := g.p.Mix
	for _, c := range [...]struct {
		p  float64
		op isa.Op
	}{
		{m.Load, isa.OpLoad},
		{m.Store, isa.OpStore},
		{m.FPLoad, isa.OpFpLoad},
		{m.FPStore, isa.OpFpStore},
		{m.Branch, isa.OpBranch},
		{m.IntMul, isa.OpIntMul},
		{m.FPAlu, isa.OpFpAlu},
		{m.FPMul, isa.OpFpMul},
		{m.FPDiv, isa.OpFpDiv},
	} {
		if v < c.p {
			return c.op
		}
		v -= c.p
	}
	return isa.OpIntAlu
}

// intSource picks an integer source register at a geometric dependence
// distance, or a far (always ready) register.
func (g *generator) intSource() isa.Reg {
	if g.deps.Bool(g.p.FarFrac) || g.recentInt.len() == 0 {
		return isa.IntReg(28 + g.deps.Intn(4))
	}
	d := g.deps.Geometric(g.p.DepP)
	if d >= g.recentInt.len() {
		d = g.recentInt.len() - 1
	}
	if d >= maxDepDistance {
		d = maxDepDistance - 1
	}
	return g.recentInt.at(d)
}

// fpSource picks a floating-point source register.
func (g *generator) fpSource() isa.Reg {
	if g.deps.Bool(g.p.FarFrac) || g.recentFP.len() == 0 {
		return isa.FPReg(28 + g.deps.Intn(4))
	}
	d := g.deps.Geometric(g.p.DepP)
	if d >= g.recentFP.len() {
		d = g.recentFP.len() - 1
	}
	if d >= maxDepDistance {
		d = maxDepDistance - 1
	}
	return g.recentFP.at(d)
}

// pushIntDst records an integer producer and returns its destination.
func (g *generator) pushIntDst() isa.Reg {
	r := isa.IntReg(g.nextIntDst)
	g.nextIntDst++
	if g.nextIntDst > intDstHi {
		g.nextIntDst = intDstLo
	}
	g.recentInt.push(r)
	return r
}

// pushFPDst records an FP producer and returns its destination.
func (g *generator) pushFPDst() isa.Reg {
	r := isa.FPReg(g.nextFPDst)
	g.nextFPDst++
	if g.nextFPDst > fpDstHi {
		g.nextFPDst = fpDstLo
	}
	g.recentFP.push(r)
	return r
}

// dataAddress draws an effective address per the profile's mix of hot,
// streaming and random accesses.
func (g *generator) dataAddress() uint64 {
	if g.addr.Bool(g.p.HotFrac) {
		off := g.addr.Uint64n(max64(8, g.p.HotBytes)) &^ 7
		return g.opt.DataBase + off
	}
	cold := g.coldBytes()
	if g.addr.Bool(g.p.StreamFrac) && len(g.streamPos) > 0 {
		s := g.addr.Intn(len(g.streamPos))
		region := max64(64, cold/uint64(len(g.streamPos)))
		pos := g.streamPos[s] % region
		g.streamPos[s] = pos + max64(8, g.p.StrideBytes)
		return g.opt.DataBase + g.p.HotBytes + uint64(s)*region + pos
	}
	off := g.addr.Uint64n(max64(8, cold)) &^ 7
	return g.opt.DataBase + g.p.HotBytes + off
}

func (g *generator) emitLoad(in *isa.Inst) {
	chase := g.p.ChaseFrac > 0 && g.haveRecentLoad && g.addr.Bool(g.p.ChaseFrac)
	if chase {
		// Pointer chasing constrains the *dependence* (the address comes
		// from an earlier load's result), not the locality: the node being
		// followed is hot or cold with the same distribution as any other
		// access. Dependence is what limits runahead's MLP on mcf-like
		// codes — a chased load whose producer is INV cannot prefetch.
		in.Src1 = g.lastLoadDst
		in.AddrDependsOnLoad = true
	} else {
		in.Src1 = g.inductionSource()
	}
	in.Addr = g.dataAddress()
	if in.Op == isa.OpLoad {
		in.Dst = g.pushIntDst()
		g.lastLoadDst = in.Dst
		g.lastLoadAge = 0
		g.haveRecentLoad = true
	} else { // FP load: integer base address, FP destination
		in.Dst = g.pushFPDst()
	}
}

// inductionSource picks the base-address register of a non-chased memory
// access. Real address computations overwhelmingly read induction
// variables and frame/global pointers (add-immediate chains), not loaded
// data, so most draws come from the long-lived far pool; the remainder
// read recent producers (composite index computations). This matters for
// runahead: stream addresses stay computable when loaded values are
// poisoned, which is exactly why streaming codes prefetch well under
// runahead while pointer chasers (ChaseFrac) do not.
func (g *generator) inductionSource() isa.Reg {
	if g.deps.Bool(0.85) || g.recentInt.len() == 0 {
		return isa.IntReg(28 + g.deps.Intn(4))
	}
	return g.intSource()
}

func (g *generator) emitStore(in *isa.Inst) {
	in.Src1 = g.inductionSource() // address base
	in.Addr = g.dataAddress()
	if in.Op == isa.OpStore {
		in.Src2 = g.intSource() // data
	} else {
		in.Src2 = g.fpSource() // FP data
	}
}

func (g *generator) emitBranch(in *isa.Inst) {
	in.Src1 = g.intSource() // condition
	bias := g.branchBias(in.PC)
	in.Taken = g.branch.Bool(bias)
	in.Target = g.branchTarget(in.PC)
}

// branchBias derives a static per-PC bias: most branches are strongly
// biased (predictable), the rest hover near 50/50.
func (g *generator) branchBias(pc uint64) float64 {
	h := rng.New(pc ^ g.staticSeed())
	if h.Bool(g.p.StrongBiasFrac) {
		// Strongly biased branches train to ~97% accuracy. The residual
		// mispredictions matter: a mispredicted branch whose condition
		// depends on an outstanding miss serializes the baseline window —
		// and runahead mode folds such branches as INV and sails past
		// them, one of runahead execution's documented benefits.
		if h.Bool(g.p.TakenRate) {
			return 0.97
		}
		return 0.03
	}
	return 0.3 + 0.4*h.Float64()
}

// branchTarget derives a static per-PC target within the code footprint,
// with a small indirect component that scatters.
func (g *generator) branchTarget(pc uint64) uint64 {
	h := rng.New(pc ^ g.staticSeed() ^ 0xb5ad4eceda1ce2a9)
	span := max64(64, g.p.CodeBytes)
	if h.Bool(0.05) {
		// Indirect-ish branch: dynamic target draw.
		return g.opt.CodeBase + (g.branch.Uint64n(span) &^ 31)
	}
	return g.opt.CodeBase + (h.Uint64n(span) &^ 31)
}

// staticSeed is the per-benchmark (not per-copy) seed used for static
// program structure like branch biases and targets: both copies of a
// benchmark share a binary, so their static structure matches even though
// their dynamic draws differ.
func (g *generator) staticSeed() uint64 {
	return rng.NewString(g.p.Name).Uint64()
}

func (g *generator) emitIntCompute(in *isa.Inst) {
	in.Src1 = g.intSource()
	in.Src2 = g.intSource()
	in.Dst = g.pushIntDst()
}

func (g *generator) emitFPCompute(in *isa.Inst) {
	in.Src1 = g.fpSource()
	in.Src2 = g.fpSource()
	in.Dst = g.pushFPDst()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
