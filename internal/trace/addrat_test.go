package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestAddrAtPureInSeq(t *testing.T) {
	// Runahead/flush re-execution correctness depends on AddrAt being a
	// pure function of the absolute sequence number.
	tr := MustGenerate(MustLookup("art"), Options{Len: 3000, Seed: 1})
	f := func(raw uint32) bool {
		seq := uint64(raw) % 30000
		return tr.AddrAt(seq) == tr.AddrAt(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	for _, seq := range []uint64{0, 2999, 3000, 8999, 29999} {
		a, b := tr.AddrAt(seq), tr.AddrAt(seq)
		if a != b {
			t.Fatalf("AddrAt(%d) unstable: %x vs %x", seq, a, b)
		}
	}
}

func TestAddrAtShiftsColdAcrossIterations(t *testing.T) {
	// A capacity-bound benchmark must touch fresh cold lines each
	// iteration: iteration 1's cold addresses differ from iteration 0's.
	p := MustLookup("art") // 6MB working set
	tr := MustGenerate(p, Options{Len: 4000, Seed: 2})
	shifted, cold := 0, 0
	for i := 0; i < tr.Len(); i++ {
		in := tr.At(uint64(i))
		if !in.Op.IsMem() {
			continue
		}
		a0 := tr.AddrAt(uint64(i))
		a1 := tr.AddrAt(uint64(i + tr.Len()))
		if isCold(p, a0) {
			cold++
			if a0 != a1 {
				shifted++
			}
		} else if a0 != a1 {
			t.Fatalf("hot address shifted across iterations: %#x -> %#x", a0, a1)
		}
	}
	if cold == 0 {
		t.Fatal("no cold accesses generated")
	}
	if shifted < cold*9/10 {
		t.Fatalf("only %d/%d cold addresses shifted", shifted, cold)
	}
}

func TestAddrAtNoShiftForResidentFootprints(t *testing.T) {
	// Sub-L2 working sets are fully resident in steady state; their
	// addresses must loop unchanged (shifting would fake compulsory
	// misses forever).
	tr := MustGenerate(MustLookup("gzip"), Options{Len: 4000, Seed: 3})
	for i := 0; i < tr.Len(); i++ {
		if !tr.At(uint64(i)).Op.IsMem() {
			continue
		}
		if tr.AddrAt(uint64(i)) != tr.AddrAt(uint64(i+tr.Len())) {
			t.Fatalf("resident benchmark address shifted at %d", i)
		}
	}
}

func TestAddrAtStaysInWorkingSet(t *testing.T) {
	p := MustLookup("swim")
	opt := Options{Len: 4000, Seed: 4, DataBase: 0x3000_0000}
	tr := MustGenerate(p, opt)
	lo := opt.DataBase
	hi := opt.DataBase + p.WorkingSet + 4096
	for iter := uint64(0); iter < 40; iter++ {
		for i := 0; i < tr.Len(); i += 7 {
			seq := iter*uint64(tr.Len()) + uint64(i)
			if !tr.At(seq).Op.IsMem() {
				continue
			}
			a := tr.AddrAt(seq)
			if a < lo || a >= hi {
				t.Fatalf("iteration %d: address %#x escapes working set", iter, a)
			}
		}
	}
}

func TestFromInstsNeverShifts(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpLoad, Dst: isa.IntReg(1), Src1: isa.IntReg(28), Addr: 0x9000},
		{Op: isa.OpIntAlu, Dst: isa.IntReg(2), Src1: isa.IntReg(28), Src2: isa.IntReg(29)},
	}
	tr := FromInsts("hand", ClassILP, insts)
	for iter := uint64(0); iter < 5; iter++ {
		if tr.AddrAt(iter*2) != 0x9000 {
			t.Fatalf("hand-built trace shifted at iteration %d", iter)
		}
	}
}

func TestFromInstsPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromInsts(empty) did not panic")
		}
	}()
	FromInsts("x", ClassILP, nil)
}

// isCold reports whether addr lies beyond the profile's hot region (for a
// trace generated at the default data base).
func isCold(p Profile, addr uint64) bool {
	const base = 0x1000_0000
	return addr >= base+p.HotBytes
}
