package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Dataset is the structured form behind every emitter: named columns over
// uniform rows of cells, where a cell is a string, a number, or a bool.
// The scenario engine reduces simulation grids into Datasets; Table
// renders them as the paper-style text tables, and WriteJSON / WriteCSV
// emit machine-readable forms so downstream tooling consumes values
// instead of scraping aligned text.
type Dataset struct {
	// Title prints above the text table and becomes the JSON "title".
	Title string
	// Description is optional prose carried into the JSON output.
	Description string
	// Columns are the column names, in emission order.
	Columns []string
	rows    [][]any
}

// NewDataset builds a dataset with the given title and column names.
func NewDataset(title string, columns ...string) *Dataset {
	return &Dataset{Title: title, Columns: columns}
}

// AddRow appends one row. Short rows are padded with empty cells; extra
// cells are dropped, mirroring Table.AddRow.
func (d *Dataset) AddRow(cells ...any) {
	row := make([]any, len(d.Columns))
	copy(row, cells)
	d.rows = append(d.rows, row)
}

// NumRows returns the number of data rows.
func (d *Dataset) NumRows() int { return len(d.rows) }

// cellString renders one cell for the text and CSV emitters. Floats use
// the shortest representation that round-trips, so CSV output can be
// parsed back to the exact values.
func cellString(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprint(x)
	}
}

// tableCell renders one cell for the aligned text table: floats get the
// fixed three-decimal figure formatting (F), everything else the CSV form.
func tableCell(v any) string {
	switch x := v.(type) {
	case float64:
		return F(x)
	case float32:
		return F(float64(x))
	default:
		return cellString(v)
	}
}

// Table renders the dataset as an aligned text table.
func (d *Dataset) Table() *Table {
	t := NewTable(d.Title, d.Columns...)
	for _, row := range d.rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = tableCell(v)
		}
		t.AddRow(cells...)
	}
	return t
}

// String renders the dataset as the text table.
func (d *Dataset) String() string { return d.Table().String() }

// jsonDoc is the JSON wire shape: rows as column-keyed objects, so
// consumers index by name and never depend on column order.
type jsonDoc struct {
	Title       string           `json:"title,omitempty"`
	Description string           `json:"description,omitempty"`
	Columns     []string         `json:"columns"`
	Rows        []map[string]any `json:"rows"`
}

// WriteJSON emits the dataset as one indented JSON document.
func (d *Dataset) WriteJSON(w io.Writer) error {
	doc := jsonDoc{
		Title:       d.Title,
		Description: d.Description,
		Columns:     d.Columns,
		Rows:        make([]map[string]any, 0, len(d.rows)),
	}
	for _, row := range d.rows {
		obj := make(map[string]any, len(row))
		for i, v := range row {
			obj[d.Columns[i]] = v
		}
		doc.Rows = append(doc.Rows, obj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteCSV emits a header row of column names followed by one record per
// row. Numeric cells round-trip exactly (shortest float form).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.Columns); err != nil {
		return err
	}
	rec := make([]string, len(d.Columns))
	for _, row := range d.rows {
		for i, v := range row {
			rec[i] = cellString(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
