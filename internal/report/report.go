// Package report renders the experiment harness's tables and bar charts
// as plain text, so `cmd/experiments` output reads like the paper's
// figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	// Title prints above the table.
	Title string
	// Columns are the header cells.
	Columns []string
	rows    [][]string
}

// NewTable builds a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders a proportional text bar for value within [0, max], e.g.
// "ICOUNT  |#########           | 0.337".
func Bar(label string, value, max float64, width int) string {
	if width <= 0 {
		width = 30
	}
	n := 0
	if max > 0 {
		n = int(value / max * float64(width))
	}
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return fmt.Sprintf("%-14s |%s%s| %.3f",
		label, strings.Repeat("#", n), strings.Repeat(" ", width-n), value)
}

// F formats a float with three decimals (table cell helper).
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a ratio as a signed percentage (e.g. +37.2%).
func Pct(v float64) string { return fmt.Sprintf("%+.1f%%", 100*v) }
