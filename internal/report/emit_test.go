package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// TestTableGoldenAlignment locks the exact rendering of a table mixing
// wide cells, empty cells, and a short row — padding, the two-space
// gutter, and the rule length are all load-bearing for the figure
// goldens, so they are asserted byte for byte here.
func TestTableGoldenAlignment(t *testing.T) {
	tb := NewTable("golden", "name", "wide-column-header", "v")
	tb.AddRow("a-very-wide-cell-value", "x", "1")
	tb.AddRow("b", "", "2") // explicit empty middle cell
	tb.AddRow("c")          // short row: padded with empty cells
	got := tb.String()
	want := "" +
		"golden\n" +
		"name                    wide-column-header  v\n" +
		"----------------------------------------------\n" +
		"a-very-wide-cell-value  x                   1\n" +
		"b                                           2\n" +
		"c                                            \n"
	if got != want {
		t.Fatalf("table rendering diverged:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestDatasetTableUsesFigureFloatFormat(t *testing.T) {
	d := NewDataset("t", "w", "ipc")
	d.AddRow("MEM2", 0.123456)
	if s := d.String(); !strings.Contains(s, "0.123") || strings.Contains(s, "0.123456") {
		t.Fatalf("table cell not figure-formatted:\n%s", s)
	}
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	d := NewDataset("sweep", "workload", "label", "thru", "n", "trunc")
	d.Description = "desc"
	d.AddRow("MEM2/art+mcf", "robSize=128", 0.6180339887498949, 42, false)
	d.AddRow("MEM2/art+mcf", "robSize=512", 1.0/3.0, uint64(7), true)

	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title       string           `json:"title"`
		Description string           `json:"description"`
		Columns     []string         `json:"columns"`
		Rows        []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted JSON invalid: %v\n%s", err, buf.String())
	}
	if doc.Title != "sweep" || doc.Description != "desc" || len(doc.Columns) != 5 {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Rows) != 2 {
		t.Fatalf("%d rows", len(doc.Rows))
	}
	// Values parse back to the exact floats/bools that went in.
	if v := doc.Rows[0]["thru"].(float64); v != 0.6180339887498949 {
		t.Errorf("thru round-trip: %v", v)
	}
	if v := doc.Rows[1]["thru"].(float64); v != 1.0/3.0 {
		t.Errorf("thru round-trip: %v", v)
	}
	if v := doc.Rows[1]["trunc"].(bool); v != true {
		t.Errorf("trunc round-trip: %v", v)
	}
	if v := doc.Rows[0]["n"].(float64); v != 42 {
		t.Errorf("n round-trip: %v", v)
	}
}

func TestDatasetCSVRoundTrip(t *testing.T) {
	d := NewDataset("sweep", "workload", "thru", "cycles", "trunc")
	d.AddRow("MEM2/art,mcf", 0.6180339887498949, uint64(123456789), false)
	d.AddRow(`quoted "name"`, 1e-20, 0, true)

	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV invalid: %v\n%s", err, buf.String())
	}
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	if got := recs[0]; strings.Join(got, "|") != "workload|thru|cycles|trunc" {
		t.Fatalf("header = %v", got)
	}
	// Cells with commas and quotes survive encoding.
	if recs[1][0] != "MEM2/art,mcf" || recs[2][0] != `quoted "name"` {
		t.Errorf("string cells mangled: %q, %q", recs[1][0], recs[2][0])
	}
	// Floats round-trip to the exact bit pattern.
	for i, want := range []float64{0.6180339887498949, 1e-20} {
		got, err := strconv.ParseFloat(recs[i+1][1], 64)
		if err != nil || got != want {
			t.Errorf("row %d float %q -> %v, want exactly %v", i, recs[i+1][1], got, want)
		}
	}
	if recs[1][2] != "123456789" || recs[2][3] != "true" {
		t.Errorf("int/bool cells: %v", recs[1:])
	}
}

func TestDatasetPadding(t *testing.T) {
	d := NewDataset("t", "a", "b")
	d.AddRow("only") // short row pads with nil -> empty
	if d.NumRows() != 1 {
		t.Fatalf("rows = %d", d.NumRows())
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, _ := csv.NewReader(&buf).ReadAll()
	if recs[1][1] != "" {
		t.Fatalf("padded cell = %q", recs[1][1])
	}
}
