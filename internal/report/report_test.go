package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("title", "a", "bbbb")
	tb.AddRow("xxxxx", "y")
	tb.AddRow("z")
	s := tb.String()
	if !strings.HasPrefix(s, "title\n") {
		t.Fatalf("missing title:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), s)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// Header and data rows must align on the widest cell.
	header := lines[1]
	if !strings.Contains(header, "a      bbbb") && !strings.Contains(header, "a    ") {
		t.Fatalf("header misaligned: %q", header)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "c1")
	tb.AddRow("v")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("empty title produced leading newline")
	}
}

func TestBar(t *testing.T) {
	s := Bar("RaT", 0.5, 1.0, 10)
	if !strings.Contains(s, "#####") {
		t.Fatalf("bar missing fill: %q", s)
	}
	if !strings.Contains(s, "0.500") {
		t.Fatalf("bar missing value: %q", s)
	}
	// Degenerate inputs must not panic or overflow.
	if s := Bar("x", 2, 1, 10); !strings.Contains(s, "##########") {
		t.Fatalf("overfull bar not clamped: %q", s)
	}
	Bar("x", -1, 1, 10)
	Bar("x", 1, 0, 10)
	Bar("x", 1, 1, 0)
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Fatalf("F = %q", F(1.23456))
	}
	if Pct(0.372) != "+37.2%" {
		t.Fatalf("Pct = %q", Pct(0.372))
	}
	if Pct(-0.05) != "-5.0%" {
		t.Fatalf("Pct = %q", Pct(-0.05))
	}
}
