package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func smallCache() CacheConfig {
	return CacheConfig{Name: "test", SizeBytes: 1024, Ways: 2, LineBytes: 64, Latency: 1}
}

func TestCacheConfigValidate(t *testing.T) {
	good := smallCache()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []CacheConfig{
		{Name: "zero"},
		{Name: "line", SizeBytes: 1024, Ways: 2, LineBytes: 48},
		{Name: "sets", SizeBytes: 3 * 64, Ways: 1, LineBytes: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted, want error", c.Name)
		}
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(smallCache())
	if c.Access(0, 0x1000, false) {
		t.Fatal("cold cache hit")
	}
	c.Fill(0, 0x1000, false, false)
	if !c.Access(0, 0x1000, false) {
		t.Fatal("miss after fill")
	}
	if !c.Access(0, 0x103f, false) {
		t.Fatal("miss within same line")
	}
	if c.Access(0, 0x1040, false) {
		t.Fatal("hit on adjacent line")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache: fill three lines mapping to one set; the least recently
	// used must be evicted.
	c := NewCache(smallCache())
	sets := uint64(1024 / 64 / 2)
	stride := sets * 64 // same set, different tag
	a, b, d := uint64(0x10000), 0x10000+stride, 0x10000+2*stride
	c.Fill(0, a, false, false)
	c.Fill(0, b, false, false)
	c.Access(0, a, false) // make a more recent than b
	c.Fill(0, d, false, false)
	if !c.Lookup(a) {
		t.Fatal("recently used line evicted")
	}
	if c.Lookup(b) {
		t.Fatal("LRU line survived eviction")
	}
	if !c.Lookup(d) {
		t.Fatal("new line not present")
	}
	if c.Evictions.Value() != 1 {
		t.Fatalf("evictions = %d", c.Evictions.Value())
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := NewCache(smallCache())
	sets := uint64(1024 / 64 / 2)
	stride := sets * 64
	c.Fill(0, 0x0, true, false)
	c.Fill(0, stride, false, false)
	c.Fill(0, 2*stride, false, false) // evicts the dirty line
	if c.DirtyEvicts.Value() != 1 {
		t.Fatalf("dirty evictions = %d", c.DirtyEvicts.Value())
	}
}

func TestCachePrefetchAccounting(t *testing.T) {
	c := NewCache(smallCache())
	c.Fill(0, 0x2000, false, true)
	if c.PrefetchFills.Value() != 1 {
		t.Fatal("prefetch fill not counted")
	}
	if !c.Access(0, 0x2000, false) {
		t.Fatal("prefetched line missing")
	}
	if c.PrefetchHits.Value() != 1 {
		t.Fatal("useful prefetch not counted")
	}
	// Second touch must not double-count.
	c.Access(0, 0x2000, false)
	if c.PrefetchHits.Value() != 1 {
		t.Fatal("prefetch usefulness double-counted")
	}
}

func TestCacheNeverExceedsCapacity(t *testing.T) {
	// Property: after arbitrary fills, the number of valid lines never
	// exceeds capacity, and all tags within a set are distinct.
	f := func(seed uint64) bool {
		c := NewCache(smallCache())
		r := rng.New(seed)
		for i := 0; i < 500; i++ {
			c.Fill(0, r.Uint64n(1<<20)&^63, r.Bool(0.3), r.Bool(0.1))
		}
		valid := 0
		for _, set := range c.sets {
			seen := map[uint64]bool{}
			for _, ln := range set {
				if ln.valid {
					valid++
					if seen[ln.tag] {
						return false // duplicate tag in a set
					}
					seen[ln.tag] = true
				}
			}
		}
		return valid <= 1024/64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheOccupancyByThread(t *testing.T) {
	c := NewCache(smallCache())
	c.Fill(0, 0x000, false, false) // set 0
	c.Fill(1, 0x040, false, false) // set 1
	c.Fill(1, 0x080, false, false) // set 2
	occ := c.OccupancyByThread()
	if occ[0] != 1 || occ[1] != 2 {
		t.Fatalf("occupancy = %v", occ)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	// Cold: miss everywhere, 3 + 20 + 400.
	r := h.Access(KindLoad, 0, 0x100000, 100)
	if r.Level != LevelMemory {
		t.Fatalf("cold access level = %v", r.Level)
	}
	if want := uint64(100 + 3 + 20 + 400); r.DoneAt != want {
		t.Fatalf("cold access done at %d, want %d", r.DoneAt, want)
	}
	// After fill time: L1 hit.
	r2 := h.Access(KindLoad, 0, 0x100000, r.DoneAt+1)
	if r2.Level != LevelL1 || r2.DoneAt != r.DoneAt+1+3 {
		t.Fatalf("post-fill access = %+v", r2)
	}
}

func TestHierarchyL2HitPath(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	h.Access(KindLoad, 0, 0x200000, 0)
	// Wait for fill, then evict from DL1 by filling conflicting lines.
	now := uint64(1000)
	h.drain(now)
	// Touch enough distinct lines mapping to the same DL1 set to evict.
	dl1Sets := cfg.DL1.SizeBytes / cfg.DL1.LineBytes / uint64(cfg.DL1.Ways)
	stride := dl1Sets * cfg.DL1.LineBytes
	for i := uint64(1); i <= 4; i++ {
		h.dl1.Fill(0, 0x200000+i*stride, false, false)
	}
	if h.dl1.Lookup(0x200000) {
		t.Fatal("line still in DL1 after conflict fills")
	}
	r := h.Access(KindLoad, 0, 0x200000, now)
	if r.Level != LevelL2 {
		t.Fatalf("expected L2 hit, got %v", r.Level)
	}
	if want := now + 3 + 20; r.DoneAt != want {
		t.Fatalf("L2 hit done at %d, want %d", r.DoneAt, want)
	}
}

func TestMSHRMerging(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	r1 := h.Access(KindLoad, 0, 0x300000, 10)
	r2 := h.Access(KindLoad, 1, 0x300008, 50) // same line, later
	if !r2.Merged {
		t.Fatal("second miss did not merge")
	}
	if r2.DoneAt != r1.DoneAt {
		t.Fatalf("merged miss completes at %d, original at %d", r2.DoneAt, r1.DoneAt)
	}
	if h.MergedMisses.Value() != 1 {
		t.Fatal("merge not counted")
	}
}

func TestPrefetchThenDemandMerge(t *testing.T) {
	// The runahead pattern: prefetch allocates the MSHR, demand access
	// merges and completes at the prefetch's fill time.
	h := NewHierarchy(DefaultConfig())
	p := h.Access(KindPrefetch, 0, 0x400000, 0)
	if p.Level != LevelMemory {
		t.Fatalf("prefetch level = %v", p.Level)
	}
	if h.PrefetchIssue.Value() != 1 {
		t.Fatal("prefetch issue not counted")
	}
	d := h.Access(KindLoad, 0, 0x400000, 200)
	if !d.Merged || d.DoneAt != p.DoneAt {
		t.Fatalf("demand after prefetch: %+v (prefetch done %d)", d, p.DoneAt)
	}
	if h.PrefetchLate.Value() != 1 {
		t.Fatal("late prefetch not counted")
	}
	// After the fill, a demand access hits in DL1 and credits the prefetch.
	d2 := h.Access(KindLoad, 0, 0x400000, p.DoneAt+10)
	if d2.Level != LevelL1 {
		t.Fatalf("post-fill level = %v", d2.Level)
	}
}

func TestPrefetchHitInL2Promotes(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	// Install a line in L2 only.
	h.l2.Fill(0, 0x500000, false, false)
	r := h.Access(KindPrefetch, 0, 0x500000, 0)
	if r.Level != LevelL2 {
		t.Fatalf("prefetch level = %v", r.Level)
	}
	if !h.dl1.Lookup(0x500000) {
		t.Fatal("prefetch did not promote line into DL1")
	}
}

func TestMSHRExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 2
	h := NewHierarchy(cfg)
	h.Access(KindLoad, 0, 0x10000, 0)
	h.Access(KindLoad, 0, 0x20000, 0)
	r := h.Access(KindLoad, 0, 0x30000, 0)
	if !r.NoMSHR {
		t.Fatal("third concurrent miss accepted with 2 MSHRs")
	}
	if h.MSHRRejects.Value() != 1 {
		t.Fatal("reject not counted")
	}
	// After the fills drain, new misses are accepted again.
	r2 := h.Access(KindLoad, 0, 0x30000, 10_000)
	if r2.NoMSHR {
		t.Fatal("miss rejected after MSHRs drained")
	}
}

func TestIfetchPath(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	r := h.Access(KindIfetch, 0, 0x40_0000, 0)
	if r.Level != LevelMemory {
		t.Fatalf("cold ifetch level = %v", r.Level)
	}
	r2 := h.Access(KindIfetch, 0, 0x40_0000, r.DoneAt+1)
	if r2.Level != LevelL1 {
		t.Fatalf("warm ifetch level = %v (IL1 fill missing)", r2.Level)
	}
	// Ifetch must fill the IL1, not the DL1.
	if h.dl1.Lookup(0x40_0000) {
		t.Fatal("ifetch filled the data cache")
	}
}

func TestWouldMissL2(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	if !h.WouldMissL2(KindLoad, 0x600000) {
		t.Fatal("cold address reported as present")
	}
	h.Access(KindLoad, 0, 0x600000, 0)
	// While in flight: an MSHR exists, so it would merge, not miss.
	if h.WouldMissL2(KindLoad, 0x600000) {
		t.Fatal("in-flight miss reported as fresh miss")
	}
	h.drain(10_000)
	if h.WouldMissL2(KindLoad, 0x600000) {
		t.Fatal("filled line reported as miss")
	}
}

func TestOutstandingForThread(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Access(KindLoad, 0, 0x10000, 0)
	h.Access(KindLoad, 0, 0x20000, 0)
	h.Access(KindLoad, 1, 0x30000, 0)
	if h.OutstandingForThread(0) != 2 || h.OutstandingForThread(1) != 1 {
		t.Fatalf("per-thread outstanding = %d/%d",
			h.OutstandingForThread(0), h.OutstandingForThread(1))
	}
	if h.OutstandingMisses() != 3 {
		t.Fatalf("total outstanding = %d", h.OutstandingMisses())
	}
}

func TestStoreWriteAllocate(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	r := h.Access(KindStore, 0, 0x700000, 0)
	if r.Level != LevelMemory {
		t.Fatalf("cold store level = %v", r.Level)
	}
	h.drain(r.DoneAt + 1)
	if !h.dl1.Lookup(0x700000) {
		t.Fatal("store miss did not write-allocate")
	}
}

func TestHierarchyPanicsOnBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 0
	defer func() {
		if recover() == nil {
			t.Fatal("zero MSHRs accepted")
		}
	}()
	NewHierarchy(cfg)
}

func TestHitRate(t *testing.T) {
	c := NewCache(smallCache())
	c.Fill(0, 0, false, false)
	c.Access(0, 0, false)      // hit
	c.Access(0, 0x9000, false) // miss
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", got)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	r := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = r.Uint64n(8 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(KindLoad, i&3, addrs[i&4095], uint64(i))
	}
}
