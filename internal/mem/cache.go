// Package mem models the simulated memory hierarchy of Table 1: a 64KB
// 4-way instruction cache, a 64KB 4-way data cache, a shared 1MB 8-way L2,
// and a flat 400-cycle main memory, all with 64-byte lines.
//
// The model is latency-based rather than event-driven: an access performed
// at cycle `now` immediately returns the cycle at which its data will be
// available, and outstanding misses are tracked in MSHRs so that later
// accesses to the same line merge instead of paying the full latency again.
// MSHR merging is load-bearing for this paper: a runahead prefetch
// allocates the MSHR early, and the demand access issued after the thread
// exits runahead mode merges into it, which is exactly how runahead
// execution converts isolated stalls into overlapped ones.
package mem

import (
	"fmt"

	"repro/internal/stats"
)

// maxThreads bounds per-thread statistics arrays. The paper's workloads
// use at most 4 contexts; 8 leaves headroom.
const maxThreads = 8

// CacheConfig describes one cache level.
type CacheConfig struct {
	// Name appears in statistics output.
	Name string
	// SizeBytes is the total capacity.
	SizeBytes uint64
	// Ways is the set associativity.
	Ways int
	// LineBytes is the line size (64 in Table 1).
	LineBytes uint64
	// Latency is the access latency in cycles.
	Latency uint64
}

// Validate checks the configuration for coherence.
func (c CacheConfig) Validate() error {
	if c.SizeBytes == 0 || c.Ways <= 0 || c.LineBytes == 0 {
		return fmt.Errorf("mem: %s: zero size, ways or line", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%uint64(c.Ways) != 0 {
		return fmt.Errorf("mem: %s: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	sets := lines / uint64(c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s: %d sets not a power of two", c.Name, sets)
	}
	return nil
}

// line is one cache line's bookkeeping.
type line struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool   // filled by a prefetch, not yet demand-touched
	lastUse    uint64 // LRU timestamp
	tid        uint8  // thread that brought the line in (occupancy stats)
}

// Cache is one set-associative, write-back, write-allocate cache level
// with LRU replacement.
type Cache struct {
	cfg       CacheConfig
	sets      [][]line
	setMask   uint64
	lineShift uint
	useClock  uint64

	// Statistics.
	Hits          [maxThreads]stats.Counter
	Misses        [maxThreads]stats.Counter
	Evictions     stats.Counter
	DirtyEvicts   stats.Counter
	PrefetchFills stats.Counter
	PrefetchHits  stats.Counter // demand hits on prefetched lines
}

// NewCache builds a cache; it panics on invalid configuration (cache
// geometries are static data, so misconfiguration is a programming error).
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		//lint:panicfree documented constructor contract: cache geometries are compiled-in static data, so an invalid one is a programming error, not an input error
		panic(err)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / uint64(cfg.Ways)
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, sets),
		setMask: sets - 1,
	}
	backing := make([]line, lines)
	for i := range c.sets {
		c.sets[i] = backing[uint64(i)*uint64(cfg.Ways) : (uint64(i)+1)*uint64(cfg.Ways)]
	}
	for ls := cfg.LineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (c.cfg.LineBytes - 1)
}

// locate returns the set index and tag for addr. The full line address
// serves as the tag: simple and unambiguous.
func (c *Cache) locate(addr uint64) (set uint64, tag uint64) {
	l := addr >> c.lineShift
	return l & c.setMask, l
}

// Lookup probes the cache without modifying replacement state. It returns
// whether the line is present.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return true
		}
	}
	return false
}

// Access probes the cache for a demand access by thread tid, updating LRU
// and statistics. It returns hit=true when the line is present. When the
// hit line was installed by a prefetch and not yet demand-touched, the
// prefetch is counted useful.
func (c *Cache) Access(tid int, addr uint64, write bool) (hit bool) {
	c.useClock++
	set, tag := c.locate(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.lastUse = c.useClock
			if write {
				ln.dirty = true
			}
			if ln.prefetched {
				ln.prefetched = false
				c.PrefetchHits.Inc()
			}
			c.Hits[tid&7].Inc()
			return true
		}
	}
	c.Misses[tid&7].Inc()
	return false
}

// Fill installs the line containing addr, evicting the LRU way. The
// prefetch flag marks lines brought in speculatively so later demand hits
// can be attributed to prefetching.
func (c *Cache) Fill(tid int, addr uint64, write, prefetch bool) {
	c.useClock++
	set, tag := c.locate(addr)
	ways := c.sets[set]
	victim := 0
	for i := range ways {
		ln := &ways[i]
		if ln.valid && ln.tag == tag {
			// Already present (racing fills); refresh.
			ln.lastUse = c.useClock
			if write {
				ln.dirty = true
			}
			return
		}
		if !ln.valid {
			victim = i
			break
		}
		if ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	v := &ways[victim]
	if v.valid {
		c.Evictions.Inc()
		if v.dirty {
			c.DirtyEvicts.Inc()
		}
	}
	*v = line{tag: tag, valid: true, dirty: write, prefetched: prefetch, lastUse: c.useClock, tid: uint8(tid & 7)}
	if prefetch {
		c.PrefetchFills.Inc()
	}
}

// OccupancyByThread counts valid lines per installing thread, for cache
// contention analysis.
func (c *Cache) OccupancyByThread() [maxThreads]int {
	var occ [maxThreads]int
	for _, set := range c.sets {
		for _, ln := range set {
			if ln.valid {
				occ[ln.tid]++
			}
		}
	}
	return occ
}

// HitRate returns the demand hit rate across all threads.
func (c *Cache) HitRate() float64 {
	var h, m uint64
	for i := 0; i < maxThreads; i++ {
		h += c.Hits[i].Value()
		m += c.Misses[i].Value()
	}
	return stats.Ratio(h, h+m)
}
