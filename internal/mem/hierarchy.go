package mem

import (
	"fmt"

	"repro/internal/stats"
)

// Kind classifies a memory access.
type Kind uint8

const (
	// KindLoad is a demand data read.
	KindLoad Kind = iota
	// KindStore is a demand data write (write-allocate).
	KindStore
	// KindIfetch is an instruction fetch.
	KindIfetch
	// KindPrefetch is a speculative read issued by a runahead thread; it
	// fills caches but does not count as a demand access.
	KindPrefetch
)

// String names the access kind.
func (k Kind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindIfetch:
		return "ifetch"
	case KindPrefetch:
		return "prefetch"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Level identifies which level of the hierarchy served an access.
type Level uint8

const (
	// LevelL1 means the access hit in the first-level cache.
	LevelL1 Level = iota
	// LevelL2 means the access missed L1 and hit the shared L2.
	LevelL2
	// LevelMemory means the access missed the L2 and went to main memory.
	// This is the paper's "long-latency" condition: the trigger for
	// STALL/FLUSH gating and for entering runahead mode.
	LevelMemory
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMemory:
		return "mem"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// Result reports the outcome of an access.
type Result struct {
	// DoneAt is the cycle at which the data is available.
	DoneAt uint64
	// Level is the hierarchy level that served the access.
	Level Level
	// Merged reports that the access merged into an MSHR allocated by an
	// earlier miss (possibly a prefetch) to the same line.
	Merged bool
	// NoMSHR reports that the access could not be performed because all
	// MSHRs were busy; the caller must retry on a later cycle.
	NoMSHR bool
}

// mshr tracks one outstanding miss to main memory.
type mshr struct {
	lineAddr uint64
	fillAt   uint64
	tid      uint8
	write    bool
	prefetch bool // allocated by a prefetch and not yet demanded
	ifetch   bool
}

// Config describes the whole hierarchy.
type Config struct {
	IL1, DL1, L2 CacheConfig
	// MemLatency is the flat main-memory latency in cycles (400 in Table 1).
	MemLatency uint64
	// MSHRs is the number of outstanding L2 misses supported.
	MSHRs int
}

// DefaultConfig returns the Table 1 memory subsystem.
func DefaultConfig() Config {
	return Config{
		IL1:        CacheConfig{Name: "IL1", SizeBytes: 64 << 10, Ways: 4, LineBytes: 64, Latency: 1},
		DL1:        CacheConfig{Name: "DL1", SizeBytes: 64 << 10, Ways: 4, LineBytes: 64, Latency: 3},
		L2:         CacheConfig{Name: "L2", SizeBytes: 1 << 20, Ways: 8, LineBytes: 64, Latency: 20},
		MemLatency: 400,
		MSHRs:      64,
	}
}

// Hierarchy is the shared SMT memory subsystem: private-per-port L1s in
// real designs are shared across contexts in the paper's model, so here a
// single IL1, DL1 and L2 serve all threads.
type Hierarchy struct {
	cfg Config
	il1 *Cache
	dl1 *Cache
	l2  *Cache

	mshrs []mshr

	// Statistics.
	Accesses      [maxThreads]stats.Counter
	L2Misses      [maxThreads]stats.Counter
	MergedMisses  stats.Counter
	PrefetchIssue stats.Counter
	PrefetchLate  stats.Counter // demand merged into an in-flight prefetch
	MSHRRejects   stats.Counter
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg Config) *Hierarchy {
	if cfg.MSHRs <= 0 {
		//lint:panicfree constructor precondition on compiled-in machine configurations; violation is a programming error
		panic("mem: need at least one MSHR")
	}
	if cfg.MemLatency == 0 {
		//lint:panicfree constructor precondition on compiled-in machine configurations; violation is a programming error
		panic("mem: zero memory latency")
	}
	return &Hierarchy{
		cfg:   cfg,
		il1:   NewCache(cfg.IL1),
		dl1:   NewCache(cfg.DL1),
		l2:    NewCache(cfg.L2),
		mshrs: make([]mshr, 0, cfg.MSHRs),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// IL1 returns the instruction cache (stats access).
func (h *Hierarchy) IL1() *Cache { return h.il1 }

// DL1 returns the data cache (stats access).
func (h *Hierarchy) DL1() *Cache { return h.dl1 }

// L2 returns the shared second-level cache (stats access).
func (h *Hierarchy) L2() *Cache { return h.l2 }

// drain applies all MSHR fills that have completed by cycle now, installing
// their lines into the caches. Called lazily at each access; correctness
// relies on callers presenting non-decreasing `now` values, which the
// cycle-driven pipeline guarantees.
func (h *Hierarchy) drain(now uint64) {
	if len(h.mshrs) == 0 {
		return
	}
	kept := h.mshrs[:0]
	for _, m := range h.mshrs {
		if m.fillAt > now {
			kept = append(kept, m)
			continue
		}
		h.l2.Fill(int(m.tid), m.lineAddr, false, m.prefetch)
		if m.ifetch {
			h.il1.Fill(int(m.tid), m.lineAddr, false, m.prefetch)
		} else {
			h.dl1.Fill(int(m.tid), m.lineAddr, m.write, m.prefetch)
		}
	}
	h.mshrs = kept
}

// findMSHR returns the outstanding miss covering lineAddr, if any.
func (h *Hierarchy) findMSHR(lineAddr uint64) *mshr {
	for i := range h.mshrs {
		if h.mshrs[i].lineAddr == lineAddr {
			return &h.mshrs[i]
		}
	}
	return nil
}

// OutstandingMisses returns the number of busy MSHRs (diagnostics and the
// DCRA slow-thread classification).
func (h *Hierarchy) OutstandingMisses() int { return len(h.mshrs) }

// OutstandingForThread counts busy MSHRs allocated by thread tid.
func (h *Hierarchy) OutstandingForThread(tid int) int {
	n := 0
	for i := range h.mshrs {
		if int(h.mshrs[i].tid) == tid {
			n++
		}
	}
	return n
}

// Access performs a memory access by thread tid at cycle now and returns
// its timing. Prefetches allocate MSHRs and fill caches but never raise
// demand statistics.
func (h *Hierarchy) Access(kind Kind, tid int, addr uint64, now uint64) Result {
	h.drain(now)
	h.Accesses[tid&7].Inc()

	l1 := h.dl1
	if kind == KindIfetch {
		l1 = h.il1
	}
	write := kind == KindStore
	demand := kind != KindPrefetch
	lineAddr := h.l2.LineAddr(addr)

	// L1 probe.
	if demand {
		if l1.Access(tid, addr, write) {
			return Result{DoneAt: now + l1.cfg.Latency, Level: LevelL1}
		}
	} else if l1.Lookup(addr) {
		return Result{DoneAt: now + l1.cfg.Latency, Level: LevelL1}
	}

	// L2 probe.
	if demand {
		if h.l2.Access(tid, addr, false) {
			done := now + l1.cfg.Latency + h.l2.cfg.Latency
			l1.Fill(tid, lineAddr, write, false)
			return Result{DoneAt: done, Level: LevelL2}
		}
	} else if h.l2.Lookup(addr) {
		// A prefetch that hits in L2 promotes the line into the L1 so the
		// post-runahead demand access hits close to the core.
		l1.Fill(tid, lineAddr, false, true)
		return Result{DoneAt: now + l1.cfg.Latency + h.l2.cfg.Latency, Level: LevelL2}
	}

	// Main memory: merge into an outstanding miss or allocate an MSHR.
	if m := h.findMSHR(lineAddr); m != nil {
		h.MergedMisses.Inc()
		if demand {
			h.L2Misses[tid&7].Inc()
			if m.prefetch {
				// A demand access caught up with an in-flight prefetch:
				// the prefetch was issued but late. It still hid latency.
				m.prefetch = false
				m.write = m.write || write
				h.PrefetchLate.Inc()
			}
		}
		return Result{DoneAt: m.fillAt, Level: LevelMemory, Merged: true}
	}
	if len(h.mshrs) >= h.cfg.MSHRs {
		h.MSHRRejects.Inc()
		return Result{NoMSHR: true, Level: LevelMemory}
	}
	if demand {
		h.L2Misses[tid&7].Inc()
	} else {
		h.PrefetchIssue.Inc()
	}
	fill := now + l1.cfg.Latency + h.l2.cfg.Latency + h.cfg.MemLatency
	h.mshrs = append(h.mshrs, mshr{
		lineAddr: lineAddr,
		fillAt:   fill,
		tid:      uint8(tid & 7),
		write:    write,
		prefetch: !demand,
		ifetch:   kind == KindIfetch,
	})
	return Result{DoneAt: fill, Level: LevelMemory}
}

// Prewarm installs the line containing addr into the L2 and the L1
// appropriate for kind, without timing or demand statistics. Simulation
// harnesses use it to start from a warm state, mirroring the paper's
// SimPoint-checkpoint methodology (caches are warm at the measured
// interval; cold-start transients are not part of any figure).
func (h *Hierarchy) Prewarm(kind Kind, tid int, addr uint64) {
	lineAddr := h.l2.LineAddr(addr)
	h.l2.Fill(tid, lineAddr, false, false)
	if kind == KindIfetch {
		h.il1.Fill(tid, lineAddr, false, false)
	} else {
		h.dl1.Fill(tid, lineAddr, kind == KindStore, false)
	}
}

// WouldMissL2 probes (without side effects) whether an access to addr
// would miss both its L1 and the L2 right now. Fetch policies use this to
// anticipate long-latency loads.
func (h *Hierarchy) WouldMissL2(kind Kind, addr uint64) bool {
	l1 := h.dl1
	if kind == KindIfetch {
		l1 = h.il1
	}
	if l1.Lookup(addr) || h.l2.Lookup(addr) {
		return false
	}
	return h.findMSHR(h.l2.LineAddr(addr)) == nil
}
