// Package workload defines the multiprogrammed workload suite of Table 2:
// 54 workloads of 2 or 4 SPEC CPU2000 benchmarks, grouped by thread count
// and memory behaviour (ILP / MIX / MEM), exactly as the paper lists them.
package workload

import (
	"fmt"
	"strings"

	"repro/internal/trace"
	"repro/internal/tracestore"
)

// Workload is one multiprogrammed combination.
type Workload struct {
	// Group is the Table 2 column: ILP2, MIX2, MEM2, ILP4, MIX4 or MEM4.
	Group string
	// Benchmarks are the SPEC names, one per hardware context.
	Benchmarks []string
}

// Name renders the canonical workload name, e.g. "MEM2/art+mcf".
func (w Workload) Name() string {
	return w.Group + "/" + strings.Join(w.Benchmarks, "+")
}

// Threads returns the context count.
func (w Workload) Threads() int { return len(w.Benchmarks) }

// table2 transcribes Table 2 of the paper.
var table2 = map[string][][]string{
	"ILP2": {
		{"apsi", "eon"}, {"apsi", "gcc"}, {"bzip2", "vortex"}, {"fma3d", "gcc"},
		{"fma3d", "mesa"}, {"gcc", "mgrid"}, {"gzip", "bzip2"}, {"gzip", "vortex"},
		{"mgrid", "galgel"}, {"wupwise", "gcc"},
	},
	"MIX2": {
		{"applu", "vortex"}, {"art", "gzip"}, {"bzip2", "mcf"}, {"equake", "bzip2"},
		{"galgel", "equake"}, {"lucas", "crafty"}, {"mcf", "eon"}, {"swim", "mgrid"},
		{"twolf", "apsi"}, {"wupwise", "twolf"},
	},
	"MEM2": {
		{"applu", "art"}, {"art", "mcf"}, {"art", "twolf"}, {"art", "vpr"},
		{"equake", "swim"}, {"mcf", "twolf"}, {"parser", "mcf"}, {"swim", "mcf"},
		{"swim", "vpr"}, {"twolf", "swim"},
	},
	"ILP4": {
		{"apsi", "eon", "fma3d", "gcc"}, {"apsi", "eon", "gzip", "vortex"},
		{"apsi", "gap", "wupwise", "perl"}, {"crafty", "fma3d", "apsi", "vortex"},
		{"fma3d", "gcc", "gzip", "vortex"}, {"gzip", "bzip2", "eon", "gcc"},
		{"mesa", "gzip", "fma3d", "bzip2"}, {"wupwise", "gcc", "mgrid", "galgel"},
	},
	"MIX4": {
		{"ammp", "applu", "apsi", "eon"}, {"art", "gap", "twolf", "crafty"},
		{"art", "mcf", "fma3d", "gcc"}, {"gzip", "twolf", "bzip2", "mcf"},
		{"lucas", "crafty", "equake", "bzip2"}, {"mcf", "mesa", "lucas", "gzip"},
		{"swim", "fma3d", "vpr", "bzip2"}, {"swim", "twolf", "gzip", "vortex"},
	},
	"MEM4": {
		{"art", "mcf", "swim", "twolf"}, {"art", "mcf", "vpr", "swim"},
		{"art", "twolf", "equake", "mcf"}, {"equake", "parser", "mcf", "lucas"},
		{"equake", "vpr", "applu", "twolf"}, {"mcf", "twolf", "vpr", "parser"},
		{"parser", "applu", "swim", "twolf"}, {"swim", "applu", "art", "mcf"},
	},
}

// Groups lists the Table 2 groups in presentation order.
func Groups() []string {
	return []string{"ILP2", "MIX2", "MEM2", "ILP4", "MIX4", "MEM4"}
}

// ByGroup returns all workloads of one group. Unknown group names — which
// can arrive straight from a user's -groups flag or a scenario file — are
// reported as an error naming the valid groups, never a panic.
func ByGroup(group string) ([]Workload, error) {
	rows, ok := table2[group]
	if !ok {
		return nil, fmt.Errorf("workload: unknown group %q (valid groups: %s)",
			group, strings.Join(Groups(), ", "))
	}
	out := make([]Workload, 0, len(rows))
	for _, b := range rows {
		out = append(out, Workload{Group: group, Benchmarks: b})
	}
	return out, nil
}

// MustByGroup is ByGroup for the static Table 2 group names; it panics on
// an unknown group and exists for tests, examples and benchmark tables
// where the name is a compile-time constant.
func MustByGroup(group string) []Workload {
	ws, err := ByGroup(group)
	if err != nil {
		panic(err)
	}
	return ws
}

// All returns the full 54-workload suite in group order.
func All() []Workload {
	var out []Workload
	for _, g := range Groups() {
		//lint:panicfree static call site: g ranges over Groups(), the same compiled-in table MustByGroup indexes, so the lookup cannot fail
		out = append(out, MustByGroup(g)...)
	}
	return out
}

// Benchmarks returns the union of benchmarks used anywhere in Table 2.
func Benchmarks() []string {
	seen := map[string]bool{}
	var out []string
	for _, w := range All() {
		for _, b := range w.Benchmarks {
			if !seen[b] {
				seen[b] = true
				out = append(out, b)
			}
		}
	}
	return out
}

// Address-space layout: each hardware context owns a disjoint 1GB data
// region and a 16MB code region, so the shared caches see genuine
// per-thread footprints with no accidental sharing.
const (
	dataRegionBase   = 0x1000_0000
	dataRegionStride = 0x4000_0000
	codeRegionBase   = 0x0040_0000
	codeRegionStride = 0x0100_0000
)

// MaxThreads is the hardware context limit of the simulated machine.
const MaxThreads = 8

// Validate checks that the workload names a plausible thread count and
// only known benchmarks, reporting unknown names with the valid list.
// Entry points (experiments.NewSession, scenario loading, smtsim) call it
// so that no user-supplied workload can reach the trace generator's
// lookup path unchecked.
func (w Workload) Validate() error {
	if len(w.Benchmarks) == 0 {
		return fmt.Errorf("workload %q: no benchmarks", w.Group)
	}
	if len(w.Benchmarks) > MaxThreads {
		return fmt.Errorf("workload %s: %d threads exceeds the %d hardware contexts",
			w.Name(), len(w.Benchmarks), MaxThreads)
	}
	for _, name := range w.Benchmarks {
		if _, ok := trace.Lookup(name); !ok {
			return fmt.Errorf("workload %s: unknown benchmark %q (valid benchmarks: %s)",
				w.Name(), name, strings.Join(trace.Names(), ", "))
		}
	}
	return nil
}

// Parse builds an ad-hoc workload from a "+"-joined benchmark list, e.g.
// "art+mcf+swim+twolf", optionally prefixed with a group label as in
// "MYGROUP/art+mcf". Scenario files use it to run combinations beyond
// Table 2. The workload is validated before it is returned.
func Parse(spec string) (Workload, error) {
	group := "adhoc"
	rest := spec
	if i := strings.IndexByte(spec, '/'); i >= 0 {
		group, rest = spec[:i], spec[i+1:]
		if group == "" {
			return Workload{}, fmt.Errorf("workload: empty group in %q", spec)
		}
	}
	if rest == "" {
		return Workload{}, fmt.Errorf("workload: empty benchmark list in %q", spec)
	}
	w := Workload{Group: group, Benchmarks: strings.Split(rest, "+")}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

// Traces materializes the workload's instruction traces: one per context,
// deterministic in (workload, seed, length), with disjoint address spaces
// and decorrelated generation streams (two copies of one benchmark do not
// march in lockstep). Unknown benchmark names surface as an error (the
// same one Validate reports).
//
// Traces are served through the process-wide tracestore.Default tier: two
// workloads that place the same (benchmark, seed) at the same context
// index — or a workload and its single-threaded fairness reference —
// receive the same shared trace object instead of generating twice. The
// returned traces are read-only, which is the only way the simulator uses
// them.
func (w Workload) Traces(length int, seed uint64) ([]*trace.Trace, error) {
	return w.TracesVia(nil, length, seed)
}

// ContextOptions returns the trace generation options for context i of a
// workload run under (length, seed): the per-context seed derivation and
// the disjoint address-space placement in one place, so every path that
// materializes or keys a context's trace agrees on its identity.
func ContextOptions(i int, length int, seed uint64) trace.Options {
	return trace.Options{
		Len:      length,
		Seed:     seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15),
		DataBase: uint64(dataRegionBase + i*dataRegionStride),
		CodeBase: uint64(codeRegionBase + i*codeRegionStride),
	}
}

// TracesVia is Traces against an explicit trace tier; a nil store means
// the process-wide default. Sessions with a private store (their own
// byte bound or a persistent directory) pass it here.
func (w Workload) TracesVia(ts *tracestore.Store, length int, seed uint64) ([]*trace.Trace, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if ts == nil {
		ts = tracestore.Default()
	}
	out := make([]*trace.Trace, 0, len(w.Benchmarks))
	for i, name := range w.Benchmarks {
		t, err := ts.Generate(name, ContextOptions(i, length, seed))
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", w.Name(), err)
		}
		out = append(out, t)
	}
	return out, nil
}

// MustTraces is Traces for statically known-good workloads (tests and
// benchmarks); it panics on validation failure.
func (w Workload) MustTraces(length int, seed uint64) []*trace.Trace {
	ts, err := w.Traces(length, seed)
	if err != nil {
		panic(err)
	}
	return ts
}
