package workload

import (
	"strings"
	"testing"
)

// FuzzWorkloadParse is the contract of the ad-hoc workload surface —
// which reaches from -threads flags, scenario files, and smtsimd request
// bodies: any input string either returns an error or a valid workload;
// it never panics and never leaks an unvalidated workload.
func FuzzWorkloadParse(f *testing.F) {
	for _, seed := range []string{
		"art+mcf",
		"MEM2/art+mcf",
		"art+mcf+swim+twolf",
		"GROUP/art+art+art+art+art+art+art+art",
		"",
		"/",
		"/art",
		"x/",
		"art+",
		"+",
		"a//b",
		"ILP2/gzip+bzip2+eon+gcc+crafty+vortex+gap+perl+apsi",
		"art mcf",
		"árt+mcf",
		strings.Repeat("art+", 64) + "art",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		w, err := Parse(spec)
		if err != nil {
			return
		}
		// A parsed workload must satisfy every invariant Validate states.
		if err := w.Validate(); err != nil {
			t.Fatalf("Parse(%q) returned an invalid workload: %v", spec, err)
		}
		if w.Group == "" {
			t.Fatalf("Parse(%q) returned an empty group", spec)
		}
		if n := w.Threads(); n < 1 || n > MaxThreads {
			t.Fatalf("Parse(%q) returned %d threads", spec, n)
		}
		// The canonical name must render (it feeds cache keys and output).
		if w.Name() == "" {
			t.Fatalf("Parse(%q) returned an unnameable workload", spec)
		}
		// Traces must materialize for every valid workload.
		ts, err := w.Traces(64, 1)
		if err != nil {
			t.Fatalf("Parse(%q) accepted a workload whose traces fail: %v", spec, err)
		}
		if len(ts) != w.Threads() {
			t.Fatalf("Parse(%q): %d traces for %d threads", spec, len(ts), w.Threads())
		}
	})
}
