package workload

import (
	"testing"

	"repro/internal/trace"
)

func TestTable2Counts(t *testing.T) {
	// The paper's Table 2: 10 workloads per 2-thread group, 8 per 4-thread
	// group, 54 in total.
	want := map[string]int{"ILP2": 10, "MIX2": 10, "MEM2": 10, "ILP4": 8, "MIX4": 8, "MEM4": 8}
	total := 0
	for g, n := range want {
		got := len(ByGroup(g))
		if got != n {
			t.Errorf("%s has %d workloads, want %d", g, got, n)
		}
		total += got
	}
	if len(All()) != total || total != 54 {
		t.Fatalf("total workloads = %d, want 54", len(All()))
	}
}

func TestThreadCountsMatchGroups(t *testing.T) {
	for _, w := range All() {
		want := 2
		if w.Group[len(w.Group)-1] == '4' {
			want = 4
		}
		if w.Threads() != want {
			t.Errorf("%s has %d threads, want %d", w.Name(), w.Threads(), want)
		}
	}
}

func TestAllBenchmarksHaveProfiles(t *testing.T) {
	for _, b := range Benchmarks() {
		if _, ok := trace.Lookup(b); !ok {
			t.Errorf("benchmark %q in Table 2 has no profile", b)
		}
	}
}

func TestMEMGroupsAreMemoryBound(t *testing.T) {
	// Every benchmark in a MEM workload must be MEM-classified; ILP groups
	// must be pure ILP. (MIX groups mix by construction.)
	for _, g := range []string{"MEM2", "MEM4"} {
		for _, w := range ByGroup(g) {
			for _, b := range w.Benchmarks {
				if trace.MustLookup(b).Class != trace.ClassMEM {
					t.Errorf("%s contains non-MEM benchmark %s", w.Name(), b)
				}
			}
		}
	}
	for _, g := range []string{"ILP2", "ILP4"} {
		for _, w := range ByGroup(g) {
			for _, b := range w.Benchmarks {
				if trace.MustLookup(b).Class != trace.ClassILP {
					t.Errorf("%s contains non-ILP benchmark %s", w.Name(), b)
				}
			}
		}
	}
}

func TestMIXGroupsActuallyMix(t *testing.T) {
	for _, g := range []string{"MIX2", "MIX4"} {
		for _, w := range ByGroup(g) {
			mem, ilp := 0, 0
			for _, b := range w.Benchmarks {
				if trace.MustLookup(b).Class == trace.ClassMEM {
					mem++
				} else {
					ilp++
				}
			}
			if mem == 0 || ilp == 0 {
				t.Errorf("%s does not mix classes (mem=%d ilp=%d)", w.Name(), mem, ilp)
			}
		}
	}
}

func TestTracesDisjointAddressSpaces(t *testing.T) {
	w := ByGroup("MEM2")[1] // art+mcf
	traces := w.Traces(5000, 1)
	if len(traces) != 2 {
		t.Fatalf("got %d traces", len(traces))
	}
	// Collect address ranges; they must not overlap.
	var ranges [][2]uint64
	for _, tr := range traces {
		lo, hi := ^uint64(0), uint64(0)
		for i := 0; i < tr.Len(); i++ {
			in := tr.At(uint64(i))
			if in.Op.IsMem() {
				if in.Addr < lo {
					lo = in.Addr
				}
				if in.Addr > hi {
					hi = in.Addr
				}
			}
		}
		ranges = append(ranges, [2]uint64{lo, hi})
	}
	if ranges[0][1] >= ranges[1][0] && ranges[1][1] >= ranges[0][0] {
		t.Fatalf("data ranges overlap: %x vs %x", ranges[0], ranges[1])
	}
}

func TestTracesDeterministic(t *testing.T) {
	w := ByGroup("MIX2")[0]
	a := w.Traces(2000, 7)
	b := w.Traces(2000, 7)
	for i := range a {
		for j := uint64(0); j < 2000; j++ {
			if *a[i].At(j) != *b[i].At(j) {
				t.Fatalf("trace %d diverges at %d", i, j)
			}
		}
	}
}

func TestDuplicateBenchmarksDecorrelated(t *testing.T) {
	// MEM4 "swim,applu,art,mcf" has no duplicates; craft a workload with
	// one to verify copies decorrelate.
	w := Workload{Group: "MEM2", Benchmarks: []string{"art", "art"}}
	traces := w.Traces(2000, 3)
	same := 0
	for j := uint64(0); j < 2000; j++ {
		a, b := traces[0].At(j), traces[1].At(j)
		if a.Op == b.Op && a.Addr-0 == b.Addr-0x4000_0000+0 { // same offset in own region
			same++
		}
	}
	if same > 1500 {
		t.Fatalf("duplicate benchmark copies correlate: %d/2000 identical", same)
	}
}

func TestByGroupPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown group accepted")
		}
	}()
	ByGroup("NOPE")
}
