package workload

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracestore"
)

func TestTable2Counts(t *testing.T) {
	// The paper's Table 2: 10 workloads per 2-thread group, 8 per 4-thread
	// group, 54 in total.
	want := map[string]int{"ILP2": 10, "MIX2": 10, "MEM2": 10, "ILP4": 8, "MIX4": 8, "MEM4": 8}
	total := 0
	for g, n := range want {
		got := len(MustByGroup(g))
		if got != n {
			t.Errorf("%s has %d workloads, want %d", g, got, n)
		}
		total += got
	}
	if len(All()) != total || total != 54 {
		t.Fatalf("total workloads = %d, want 54", len(All()))
	}
}

func TestThreadCountsMatchGroups(t *testing.T) {
	for _, w := range All() {
		want := 2
		if w.Group[len(w.Group)-1] == '4' {
			want = 4
		}
		if w.Threads() != want {
			t.Errorf("%s has %d threads, want %d", w.Name(), w.Threads(), want)
		}
	}
}

func TestAllBenchmarksHaveProfiles(t *testing.T) {
	for _, b := range Benchmarks() {
		if _, ok := trace.Lookup(b); !ok {
			t.Errorf("benchmark %q in Table 2 has no profile", b)
		}
	}
}

func TestMEMGroupsAreMemoryBound(t *testing.T) {
	// Every benchmark in a MEM workload must be MEM-classified; ILP groups
	// must be pure ILP. (MIX groups mix by construction.)
	for _, g := range []string{"MEM2", "MEM4"} {
		for _, w := range MustByGroup(g) {
			for _, b := range w.Benchmarks {
				if trace.MustLookup(b).Class != trace.ClassMEM {
					t.Errorf("%s contains non-MEM benchmark %s", w.Name(), b)
				}
			}
		}
	}
	for _, g := range []string{"ILP2", "ILP4"} {
		for _, w := range MustByGroup(g) {
			for _, b := range w.Benchmarks {
				if trace.MustLookup(b).Class != trace.ClassILP {
					t.Errorf("%s contains non-ILP benchmark %s", w.Name(), b)
				}
			}
		}
	}
}

func TestMIXGroupsActuallyMix(t *testing.T) {
	for _, g := range []string{"MIX2", "MIX4"} {
		for _, w := range MustByGroup(g) {
			mem, ilp := 0, 0
			for _, b := range w.Benchmarks {
				if trace.MustLookup(b).Class == trace.ClassMEM {
					mem++
				} else {
					ilp++
				}
			}
			if mem == 0 || ilp == 0 {
				t.Errorf("%s does not mix classes (mem=%d ilp=%d)", w.Name(), mem, ilp)
			}
		}
	}
}

func TestTracesDisjointAddressSpaces(t *testing.T) {
	w := MustByGroup("MEM2")[1] // art+mcf
	traces := w.MustTraces(5000, 1)
	if len(traces) != 2 {
		t.Fatalf("got %d traces", len(traces))
	}
	// Collect address ranges; they must not overlap.
	var ranges [][2]uint64
	for _, tr := range traces {
		lo, hi := ^uint64(0), uint64(0)
		for i := 0; i < tr.Len(); i++ {
			in := tr.At(uint64(i))
			if in.Op.IsMem() {
				if in.Addr < lo {
					lo = in.Addr
				}
				if in.Addr > hi {
					hi = in.Addr
				}
			}
		}
		ranges = append(ranges, [2]uint64{lo, hi})
	}
	if ranges[0][1] >= ranges[1][0] && ranges[1][1] >= ranges[0][0] {
		t.Fatalf("data ranges overlap: %x vs %x", ranges[0], ranges[1])
	}
}

func TestTracesDeterministic(t *testing.T) {
	w := MustByGroup("MIX2")[0]
	a := w.MustTraces(2000, 7)
	b := w.MustTraces(2000, 7)
	for i := range a {
		for j := uint64(0); j < 2000; j++ {
			if *a[i].At(j) != *b[i].At(j) {
				t.Fatalf("trace %d diverges at %d", i, j)
			}
		}
	}
}

func TestDuplicateBenchmarksDecorrelated(t *testing.T) {
	// MEM4 "swim,applu,art,mcf" has no duplicates; craft a workload with
	// one to verify copies decorrelate.
	w := Workload{Group: "MEM2", Benchmarks: []string{"art", "art"}}
	traces := w.MustTraces(2000, 3)
	same := 0
	for j := uint64(0); j < 2000; j++ {
		a, b := traces[0].At(j), traces[1].At(j)
		if a.Op == b.Op && a.Addr-0 == b.Addr-0x4000_0000+0 { // same offset in own region
			same++
		}
	}
	if same > 1500 {
		t.Fatalf("duplicate benchmark copies correlate: %d/2000 identical", same)
	}
}

func TestByGroupRejectsUnknown(t *testing.T) {
	if _, err := ByGroup("NOPE"); err == nil {
		t.Fatal("unknown group accepted")
	} else if !strings.Contains(err.Error(), "MEM4") {
		t.Fatalf("error does not list valid groups: %v", err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		w  Workload
		ok bool
	}{
		{Workload{Group: "MEM2", Benchmarks: []string{"art", "mcf"}}, true},
		{Workload{Group: "X", Benchmarks: []string{"art", "nonesuch"}}, false},
		{Workload{Group: "X"}, false},
		{Workload{Group: "X", Benchmarks: make([]string, MaxThreads+1)}, false},
	}
	for _, c := range cases {
		err := c.w.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) = %v, want ok=%v", c.w, err, c.ok)
		}
	}
	if err := (Workload{Group: "X", Benchmarks: []string{"art", "nonesuch"}}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "mcf") {
		t.Errorf("unknown-benchmark error does not list valid names: %v", err)
	}
}

func TestTracesSurfacesUnknownBenchmark(t *testing.T) {
	w := Workload{Group: "X", Benchmarks: []string{"nonesuch"}}
	if _, err := w.Traces(100, 1); err == nil {
		t.Fatal("unknown benchmark accepted by Traces")
	}
}

func TestParse(t *testing.T) {
	w, err := Parse("art+mcf+swim+twolf")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "adhoc/art+mcf+swim+twolf" || w.Threads() != 4 {
		t.Fatalf("parsed %q with %d threads", w.Name(), w.Threads())
	}
	w, err = Parse("HOT/art+art")
	if err != nil {
		t.Fatal(err)
	}
	if w.Group != "HOT" || len(w.Benchmarks) != 2 {
		t.Fatalf("parsed group %q, %d benchmarks", w.Group, len(w.Benchmarks))
	}
	for _, bad := range []string{"", "art+nonesuch", "/art", "MEM2/", "art+"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestTracesDedupeAcrossWorkloads asserts the trace-tier contract: two
// different workloads that place the same benchmark at the same context
// index under the same seed receive the *same* trace object, because the
// generation identity (benchmark, length, derived seed, address bases) is
// identical and the shared tier dedupes it.
func TestTracesDedupeAcrossWorkloads(t *testing.T) {
	ts := tracestore.New(0)
	a := Workload{Group: "MEM2", Benchmarks: []string{"art", "mcf"}}
	b := Workload{Group: "MIX2", Benchmarks: []string{"art", "gzip"}}
	ta, err := a.TracesVia(ts, 600, 42)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.TracesVia(ts, 600, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ta[0] != tb[0] {
		t.Fatal("shared (benchmark, context, seed) generated two distinct traces")
	}
	if ta[1] == tb[1] {
		t.Fatal("distinct benchmarks at context 1 shared one trace")
	}
	// 3 distinct identities: art@0 (shared), mcf@1, gzip@1.
	if got := ts.Generated(); got != 3 {
		t.Fatalf("generated %d traces, want 3", got)
	}
}

// TestTracesViaNilUsesDefault pins the routing satellite: the plain
// Traces path serves from the process-wide default tier, so repeated
// materializations of one workload return identical trace objects.
func TestTracesViaNilUsesDefault(t *testing.T) {
	w := Workload{Group: "MEM2", Benchmarks: []string{"art", "mcf"}}
	ta := w.MustTraces(700, 7)
	tb := w.MustTraces(700, 7)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("context %d regenerated despite the default tier", i)
		}
	}
}
