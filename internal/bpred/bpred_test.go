package bpred

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// accuracy trains p on a synthetic branch stream and returns the fraction
// of correct predictions over the second half (after warmup).
func accuracy(p Predictor, gen func(i int) (pc uint64, taken bool), n int) float64 {
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := gen(i)
		pred := p.Predict(pc)
		if i >= n/2 {
			counted++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, taken)
	}
	return float64(correct) / float64(counted)
}

func TestPerceptronLearnsBiasedBranches(t *testing.T) {
	r := rng.New(1)
	p := NewPerceptron(1024)
	// 64 static branches, 95% biased.
	bias := make([]float64, 64)
	for i := range bias {
		if i%10 == 0 {
			bias[i] = 0.5
		} else if i%2 == 0 {
			bias[i] = 0.95
		} else {
			bias[i] = 0.05
		}
	}
	acc := accuracy(p, func(i int) (uint64, bool) {
		b := r.Intn(64)
		return uint64(0x1000 + b*4), r.Bool(bias[b])
	}, 100000)
	if acc < 0.85 {
		t.Fatalf("perceptron accuracy %v on biased stream, want >= 0.85", acc)
	}
}

func TestPerceptronLearnsHistoryPattern(t *testing.T) {
	// A strict alternating pattern is linearly separable on history; the
	// perceptron must learn it nearly perfectly while bimodal cannot.
	gen := func(i int) (uint64, bool) { return 0x4000, i%2 == 0 }
	perc := accuracy(NewPerceptron(256), gen, 20000)
	bim := accuracy(NewBimodal(10), gen, 20000)
	if perc < 0.98 {
		t.Fatalf("perceptron accuracy %v on alternating pattern, want >= 0.98", perc)
	}
	if bim > 0.7 {
		t.Fatalf("bimodal accuracy %v on alternating pattern, expected poor", bim)
	}
}

func TestGshareLearnsHistoryPattern(t *testing.T) {
	gen := func(i int) (uint64, bool) { return 0x4000, i%4 < 2 }
	if acc := accuracy(NewGshare(12), gen, 40000); acc < 0.95 {
		t.Fatalf("gshare accuracy %v on period-4 pattern", acc)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	r := rng.New(2)
	acc := accuracy(NewBimodal(12), func(i int) (uint64, bool) {
		b := r.Intn(32)
		return uint64(b * 4), b%2 == 0
	}, 20000)
	if acc < 0.98 {
		t.Fatalf("bimodal accuracy %v on fully biased branches", acc)
	}
}

func TestPerceptronWeightsSaturate(t *testing.T) {
	p := NewPerceptron(16)
	// Hammer one branch always-taken; weights must stay in [-128,127].
	for i := 0; i < 10000; i++ {
		p.Predict(0x100)
		p.Update(0x100, true)
	}
	for _, row := range p.table.rows {
		for _, w := range row {
			if w < weightMin || w > weightMax {
				t.Fatalf("weight %d escaped saturation range", w)
			}
		}
	}
}

func TestSaturateProperty(t *testing.T) {
	f := func(w int16, up bool) bool {
		// saturate must clamp its input into range and move by at most 1.
		in := w
		if in > weightMax {
			in = weightMax
		}
		if in < weightMin {
			in = weightMin
		}
		out := saturate(in, up)
		if out < weightMin || out > weightMax {
			return false
		}
		d := int32(out) - int32(in)
		return d >= -1 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharedTableSeparateHistories(t *testing.T) {
	ps := NewPerceptronShared(256, 2)
	if ps[0].table != ps[1].table {
		t.Fatal("shared constructor did not share the table")
	}
	ps[0].Update(0x100, true)
	if ps[0].history == ps[1].history {
		t.Fatal("update to one thread's history leaked into the other")
	}

	gs := NewGshareShared(10, 2)
	if gs[0].table != gs[1].table {
		t.Fatal("gshare shared constructor did not share the table")
	}
	gs[0].Update(0x100, true)
	if gs[0].history == gs[1].history {
		t.Fatal("gshare history leaked across threads")
	}
}

func TestSharedTableCrossThreadInterference(t *testing.T) {
	// Two threads hammering the same PC with opposite outcomes should
	// degrade each other — the point of modelling a shared table.
	ps := NewPerceptronShared(16, 2)
	solo := NewPerceptron(16)
	n := 20000
	correct := 0
	for i := 0; i < n; i++ {
		if solo.Predict(0x40) == (i%2 == 0) {
			// solo sees thread 0's stream only
		}
		solo.Update(0x40, true)

		if ps[0].Predict(0x40) {
			correct++
		}
		ps[0].Update(0x40, true)
		ps[1].Update(0x40, false)
	}
	// No assertion on exact numbers — just require it runs and the shared
	// predictor is not perfect while solo converges to always-taken.
	if !solo.Predict(0x40) {
		t.Fatal("solo predictor failed to learn always-taken")
	}
	if correct == n {
		t.Log("shared predictor unaffected by interference (acceptable but unusual)")
	}
}

func TestStaticPredictor(t *testing.T) {
	s := Static{Taken: true}
	if !s.Predict(0) {
		t.Fatal("static taken predicted not-taken")
	}
	s.Update(0, false) // must not panic or change anything
	if !s.Predict(0) {
		t.Fatal("static predictor mutated by Update")
	}
}

func TestTableSizesRoundUp(t *testing.T) {
	p := NewPerceptron(100)
	if len(p.table.rows) != 128 {
		t.Fatalf("rows = %d, want next power of two 128", len(p.table.rows))
	}
}

func TestPredictorsDeterministic(t *testing.T) {
	mk := func() []Predictor {
		return []Predictor{NewPerceptron(64), NewGshare(10), NewBimodal(10)}
	}
	a, b := mk(), mk()
	r1, r2 := rng.New(3), rng.New(3)
	for i := 0; i < 5000; i++ {
		pc := uint64(r1.Intn(256) * 4)
		taken := r1.Bool(0.6)
		pc2 := uint64(r2.Intn(256) * 4)
		taken2 := r2.Bool(0.6)
		for j := range a {
			if a[j].Predict(pc) != b[j].Predict(pc2) {
				t.Fatalf("predictor %d diverged at step %d", j, i)
			}
			a[j].Update(pc, taken)
			b[j].Update(pc2, taken2)
		}
	}
}

func BenchmarkPerceptronPredictUpdate(b *testing.B) {
	p := NewPerceptron(1024)
	r := rng.New(1)
	pcs := make([]uint64, 1024)
	for i := range pcs {
		pcs[i] = uint64(r.Intn(4096) * 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := pcs[i&1023]
		p.Update(pc, p.Predict(pc))
	}
}

func BenchmarkGsharePredictUpdate(b *testing.B) {
	g := NewGshare(14)
	for i := 0; i < b.N; i++ {
		pc := uint64(i&4095) * 4
		g.Update(pc, g.Predict(pc))
	}
}
