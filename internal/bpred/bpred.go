// Package bpred implements the branch direction predictors used by the
// simulator's fetch stage.
//
// The paper's baseline (Table 1) uses a perceptron predictor, implemented
// here after Jiménez & Lin, "Dynamic branch prediction with perceptrons"
// (HPCA 2001). Gshare and bimodal predictors are provided as comparators
// for tests and ablation benchmarks.
//
// All predictors share one interface so the pipeline is agnostic:
// Predict(pc) returns the guess, Update(pc, taken) trains after resolution.
// In an SMT the predictor tables are shared between threads (as in the real
// machines the paper models); the global history register, however, is
// per-thread, which callers obtain by constructing one Predictor per
// hardware context sharing a common table via the *Shared constructors.
package bpred

// Predictor is a branch direction predictor.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction. Callers
	// invoke it in program order at branch resolution.
	Update(pc uint64, taken bool)
}

// --- Perceptron predictor --------------------------------------------------

const (
	// historyLen is the global history length. 28 bits is within the range
	// the perceptron paper evaluates for ~4KB budgets.
	historyLen = 28
	// weightMax/weightMin saturate the 8-bit signed weights.
	weightMax = 127
	weightMin = -128
)

// perceptronTheta is the optimal training threshold from the perceptron
// paper, floor(1.93*h + 14), computed for historyLen at init time (the
// expression is float-valued so it cannot be a typed integer constant).
var perceptronTheta = func() int32 {
	h := float64(historyLen)
	return int32(1.93*h + 14)
}()

// perceptronTable is the shared weight storage. Separate from the
// per-thread history so SMT contexts can share it.
type perceptronTable struct {
	rows  [][historyLen + 1]int16
	mask  uint64
	theta int32
}

// Perceptron is a perceptron branch predictor with a per-instance global
// history register (one instance per hardware thread) over a (possibly
// shared) weight table.
type Perceptron struct {
	table   *perceptronTable
	history uint64 // bit i = outcome of i-th most recent branch (1 = taken)
}

// NewPerceptron builds a private-table perceptron predictor with the given
// number of perceptron rows (rounded up to a power of two).
func NewPerceptron(rows int) *Perceptron {
	return &Perceptron{table: newPerceptronTable(rows)}
}

// NewPerceptronShared builds n predictors (one per thread) sharing one
// weight table, the standard SMT arrangement.
func NewPerceptronShared(rows, n int) []*Perceptron {
	t := newPerceptronTable(rows)
	out := make([]*Perceptron, n)
	for i := range out {
		out[i] = &Perceptron{table: t}
	}
	return out
}

func newPerceptronTable(rows int) *perceptronTable {
	n := 1
	for n < rows {
		n <<= 1
	}
	return &perceptronTable{
		rows:  make([][historyLen + 1]int16, n),
		mask:  uint64(n - 1),
		theta: perceptronTheta,
	}
}

// index hashes a PC to a table row.
func (t *perceptronTable) index(pc uint64) uint64 {
	return (pc >> 2) & t.mask
}

// output computes the perceptron dot product for pc under history h.
func (t *perceptronTable) output(pc, h uint64) int32 {
	w := &t.rows[t.index(pc)]
	y := int32(w[0]) // bias weight
	for i := 0; i < historyLen; i++ {
		if h>>uint(i)&1 == 1 {
			y += int32(w[i+1])
		} else {
			y -= int32(w[i+1])
		}
	}
	return y
}

// Predict returns the sign of the perceptron output.
func (p *Perceptron) Predict(pc uint64) bool {
	return p.table.output(pc, p.history) >= 0
}

// Update trains weights when the prediction was wrong or weakly confident,
// then shifts the outcome into this thread's history register.
func (p *Perceptron) Update(pc uint64, taken bool) {
	t := p.table
	y := t.output(pc, p.history)
	pred := y >= 0
	if pred != taken || abs32(y) <= t.theta {
		w := &t.rows[t.index(pc)]
		w[0] = saturate(w[0], taken)
		for i := 0; i < historyLen; i++ {
			agree := (p.history>>uint(i)&1 == 1) == taken
			w[i+1] = saturate(w[i+1], agree)
		}
	}
	p.history = p.history<<1 | b2u(taken)
}

// --- Gshare ---------------------------------------------------------------

// gshareTable is the shared 2-bit counter array.
type gshareTable struct {
	counters []uint8
	mask     uint64
}

// Gshare is a gshare predictor (XOR of PC and global history into 2-bit
// saturating counters), with per-instance history.
type Gshare struct {
	table   *gshareTable
	history uint64
	bits    uint
}

// NewGshare builds a private gshare predictor with 2^logSize counters.
func NewGshare(logSize uint) *Gshare {
	return &Gshare{
		table: &gshareTable{
			counters: make([]uint8, 1<<logSize),
			mask:     1<<logSize - 1,
		},
		bits: logSize,
	}
}

// NewGshareShared builds n gshare predictors over one counter table.
func NewGshareShared(logSize uint, n int) []*Gshare {
	t := &gshareTable{counters: make([]uint8, 1<<logSize), mask: 1<<logSize - 1}
	out := make([]*Gshare, n)
	for i := range out {
		out[i] = &Gshare{table: t, bits: logSize}
	}
	return out
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.table.mask
}

// Predict consults the 2-bit counter.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table.counters[g.index(pc)] >= 2
}

// Update bumps the counter and shifts history.
func (g *Gshare) Update(pc uint64, taken bool) {
	c := &g.table.counters[g.index(pc)]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
	g.history = (g.history<<1 | b2u(taken)) & g.table.mask
}

// --- Bimodal ----------------------------------------------------------------

// Bimodal is a PC-indexed table of 2-bit saturating counters — the
// history-less baseline.
type Bimodal struct {
	counters []uint8
	mask     uint64
}

// NewBimodal builds a bimodal predictor with 2^logSize counters.
func NewBimodal(logSize uint) *Bimodal {
	return &Bimodal{counters: make([]uint8, 1<<logSize), mask: 1<<logSize - 1}
}

// Predict consults the counter for pc.
func (b *Bimodal) Predict(pc uint64) bool {
	return b.counters[(pc>>2)&b.mask] >= 2
}

// Update bumps the counter for pc.
func (b *Bimodal) Update(pc uint64, taken bool) {
	c := &b.counters[(pc>>2)&b.mask]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// --- Static ----------------------------------------------------------------

// Static always predicts the same direction; useful as a degenerate
// baseline in tests.
type Static struct {
	// Taken is the fixed prediction.
	Taken bool
}

// Predict returns the fixed direction.
func (s Static) Predict(uint64) bool { return s.Taken }

// Update is a no-op.
func (s Static) Update(uint64, bool) {}

// --- helpers ----------------------------------------------------------------

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

func saturate(w int16, up bool) int16 {
	if up {
		if w < weightMax {
			return w + 1
		}
		return w
	}
	if w > weightMin {
		return w - 1
	}
	return w
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
