package sched

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/leakcheck"
)

// drain pops every queued job with an immediate Done — a one-worker
// system with instant service — and returns the payloads in pop order.
func drain(t *testing.T, s Scheduler[string]) []string {
	t.Helper()
	var order []string
	for {
		j, ok := s.Pop()
		if !ok {
			return order
		}
		order = append(order, j.Payload)
		s.Done(j)
	}
}

func mustNew(t *testing.T, policy string) Scheduler[string] {
	t.Helper()
	s, err := New[string](policy)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidates(t *testing.T) {
	if s := mustNew(t, ""); s.Name() != PolicyFair {
		t.Errorf("default policy = %s, want fair", s.Name())
	}
	if s := mustNew(t, PolicyFIFO); s.Name() != PolicyFIFO {
		t.Errorf("fifo policy Name() = %s", s.Name())
	}
	_, err := New[string]("bogus")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid policy %s", err, name)
		}
	}
}

func TestRequesterContext(t *testing.T) {
	ctx := context.Background()
	if got := Requester(ctx); got != "" {
		t.Errorf("unstamped context requester = %q, want empty", got)
	}
	if got := Requester(WithRequester(ctx, "alice")); got != "alice" {
		t.Errorf("requester = %q, want alice", got)
	}
	// Empty id is a no-op, not a stamp of "".
	if WithRequester(ctx, "") != ctx {
		t.Error("WithRequester(ctx, \"\") allocated a new context")
	}
}

func push(s Scheduler[string], requester, payload string, cells int) {
	s.Push(Job[string]{Requester: requester, Cells: cells, Payload: payload})
}

func TestFIFOPopsInArrivalOrder(t *testing.T) {
	s := mustNew(t, PolicyFIFO)
	push(s, "big", "b1", 8)
	push(s, "big", "b2", 8)
	push(s, "small", "s1", 1)
	got := drain(t, s)
	want := []string{"b1", "b2", "s1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fifo order = %v, want %v", got, want)
		}
	}
}

// TestFairInterleavesRequesters is the head-of-line starvation fix in
// miniature: with one worker and instant service, queued requesters
// alternate round-robin instead of draining in arrival order.
func TestFairInterleavesRequesters(t *testing.T) {
	s := mustNew(t, PolicyFair)
	for _, p := range []string{"a1", "a2", "a3"} {
		push(s, "a", p, 8)
	}
	push(s, "b", "b1", 8)
	push(s, "b", "b2", 8)
	push(s, "c", "c1", 8)
	got := drain(t, s)
	want := []string{"a1", "b1", "c1", "a2", "b2", "a3"}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fair order = %v, want %v", got, want)
		}
	}
}

// TestFairPrefersFewestCellsInService is the ICOUNT analogy proper:
// with jobs still in service (no Done), the requester with the fewest
// in-service cells pops first, whatever the arrival order.
func TestFairPrefersFewestCellsInService(t *testing.T) {
	s := mustNew(t, PolicyFair)
	push(s, "heavy", "h1", 8)
	push(s, "heavy", "h2", 8)
	push(s, "light", "l1", 1)
	push(s, "light", "l2", 1)

	var got []string
	for i := 0; i < 4; i++ {
		j, ok := s.Pop()
		if !ok {
			t.Fatal("queue empty early")
		}
		got = append(got, j.Payload)
	}
	// h1 first (arrival order, all tied at zero in service), then light
	// twice (0 then 1 in-service cells, both below heavy's 8), then h2.
	want := []string{"h1", "l1", "l2", "h2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fair in-service order = %v, want %v", got, want)
		}
	}
}

// TestFairLateArrivalNotStarved: a one-cell job queued behind a long
// backlog is served at the very next pop once the current job completes.
func TestFairLateArrivalNotStarved(t *testing.T) {
	s := mustNew(t, PolicyFair)
	for i := 0; i < 100; i++ {
		push(s, "big", "big-job", 8)
	}
	first, _ := s.Pop() // the worker is busy on big's first job...
	push(s, "small", "small-job", 1)
	s.Done(first)
	j, ok := s.Pop() // ...and small preempts the remaining 99.
	if !ok || j.Payload != "small-job" {
		t.Fatalf("next pop = %+v, want small-job", j)
	}
}

func TestSnapshotAccounting(t *testing.T) {
	for _, policy := range Names() {
		t.Run(policy, func(t *testing.T) {
			s := mustNew(t, policy)
			if snap := s.Snapshot(); snap.QueuedJobs != 0 || len(snap.Clients) != 0 {
				t.Fatalf("idle snapshot not empty: %+v", snap)
			}
			push(s, "a", "a1", 8)
			push(s, "a", "a2", 4)
			push(s, "b", "b1", 1)

			snap := s.Snapshot()
			if snap.Policy != policy {
				t.Errorf("policy = %q, want %q", snap.Policy, policy)
			}
			if snap.QueuedJobs != 3 || snap.QueuedCells != 13 || snap.InServiceCells != 0 {
				t.Errorf("queued snapshot = %+v, want 3 jobs / 13 cells / 0 in service", snap)
			}
			if a := snap.Clients["a"]; a.QueuedJobs != 2 || a.QueuedCells != 12 {
				t.Errorf("client a = %+v, want 2 jobs / 12 cells queued", a)
			}

			j, _ := s.Pop()
			snap = s.Snapshot()
			if snap.QueuedJobs != 2 || snap.QueuedCells != 13-j.Cells || snap.InServiceCells != j.Cells {
				t.Errorf("post-pop snapshot = %+v (popped %d cells)", snap, j.Cells)
			}
			if got := snap.Clients[j.Requester].InServiceCells; got != j.Cells {
				t.Errorf("client %q in service = %d, want %d", j.Requester, got, j.Cells)
			}

			s.Done(j)
			for {
				j, ok := s.Pop()
				if !ok {
					break
				}
				s.Done(j)
			}
			if snap := s.Snapshot(); snap.QueuedJobs != 0 || snap.QueuedCells != 0 ||
				snap.InServiceCells != 0 || len(snap.Clients) != 0 {
				t.Errorf("drained snapshot not empty: %+v (idle requesters must be forgotten)", snap)
			}
		})
	}
}

// TestEveryPushIsPopped is the no-lost-work contract over a mixed
// population, both policies.
func TestEveryPushIsPopped(t *testing.T) {
	defer leakcheck.Check(t)
	for _, policy := range Names() {
		s := mustNew(t, policy)
		want := map[string]int{}
		for i, req := range []string{"a", "b", "", "c", "a", "b", "a", ""} {
			push(s, req, req, 1+i%3)
			want[req]++
		}
		got := map[string]int{}
		for _, p := range drain(t, s) {
			got[p]++
		}
		for req, n := range want {
			if got[req] != n {
				t.Errorf("%s: requester %q popped %d jobs, want %d", policy, req, got[req], n)
			}
		}
	}
}

// TestSnapshotSerializesByteStable locks the claim behind the
// //lint:deterministic directives on the Snapshot builders: the client
// maps they range over are key-addressed and reach clients only as
// sorted-key JSON, so two identically driven schedulers serialize to
// identical bytes — under both policies, with jobs queued and in
// service.
func TestSnapshotSerializesByteStable(t *testing.T) {
	for _, policy := range Names() {
		drive := func(t *testing.T) []byte {
			s := mustNew(t, policy)
			for _, r := range []string{"carol", "alice", "bob", "dave", "erin"} {
				push(s, r, r+"-1", 4)
				push(s, r, r+"-2", 2)
			}
			for i := 0; i < 3; i++ {
				if _, ok := s.Pop(); !ok {
					t.Fatal("queue drained early")
				}
			}
			b, err := json.Marshal(s.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		a, b := drive(t), drive(t)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: identically driven snapshots serialize differently:\n a: %s\n b: %s", policy, a, b)
		}
	}
}
