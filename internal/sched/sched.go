// Package sched provides the pluggable scheduling policies behind the
// experiment session's work queue.
//
// The session's dispatch used to be a single FIFO: one max-size sweep
// ahead of you meant your one-cell request waited for the entire sweep
// to drain — head-of-line starvation in a daemon that exists to simulate
// SMT fetch policies designed to prevent exactly that. The Scheduler
// interface makes the dispatch policy pluggable, and the fair policy
// applies the paper's own ICOUNT idea to the serving layer: just as
// ICOUNT fetches from the thread with the fewest instructions in the
// pipeline, the fair scheduler pops the next job from the requester with
// the fewest grid cells currently in service, so light requesters flow
// past heavy ones while heavy ones still progress — ties rotate
// round-robin (least recently served first), so no active requester is
// ever skipped indefinitely.
//
// Scheduling only reorders execution; it can never change results. Every
// simulation is a deterministic pure function of (workload, canonical
// config) and reductions collect in a fixed order, so any pop order
// yields bit-identical output — the same argument that makes worker
// count invisible.
//
// Requester identity rides the context: the smtsimd daemon stamps each
// request's context with WithRequester (the X-Client header, or the
// client's remote address), the context threads unchanged through
// scenario.ExecuteStreamCtx into Session.StartRunCtx/StartRunBatchCtx —
// batched jobs and single-thread fairness references included — and the
// session recovers the identity with Requester at dispatch time. Code
// that never stamps a context (the figure CLIs) lands in the single
// anonymous "" bucket, where every policy degenerates to FIFO.
//
// Implementations are not safe for concurrent use: the session
// serializes every call under its own mutex, which also keeps
// Push/Pop/Done atomic with the worker-count bookkeeping.
package sched

import (
	"context"
	"fmt"
	"strings"
)

// Policy names accepted by New.
const (
	PolicyFIFO = "fifo"
	PolicyFair = "fair"
)

// Default is the policy New selects for the empty string.
const Default = PolicyFair

// Names lists the valid policy names.
func Names() []string { return []string{PolicyFIFO, PolicyFair} }

// Job is one queued unit of work: an opaque payload plus the accounting
// identity the scheduler orders by. Cells is the job's weight — the grid
// cells it will execute — so a max-size batch and a one-cell probe are
// not interchangeable units.
type Job[T any] struct {
	// Requester identifies who asked for this job ("" = anonymous).
	Requester string
	// Cells is the number of grid cells the job carries.
	Cells int
	// Payload is the scheduler-opaque work item.
	Payload T
}

// Scheduler orders queued jobs for dispatch. The contract: every Push is
// eventually Popped (no policy may drop work), and the caller pairs each
// Pop with exactly one Done once the job's cells have left service —
// Pop moves a job's cells into the requester's in-service account, Done
// releases them. Implementations are not safe for concurrent use; the
// caller serializes all calls (the session holds its mutex).
type Scheduler[T any] interface {
	// Name returns the policy name ("fifo", "fair").
	Name() string
	// Push enqueues a job.
	Push(j Job[T])
	// Pop removes and returns the next job per the policy, accounting
	// its cells as in service; ok is false when nothing is queued.
	Pop() (j Job[T], ok bool)
	// Done releases the in-service accounting of a popped job.
	Done(j Job[T])
	// Snapshot reports the current queue and per-requester accounting.
	Snapshot() Snapshot
}

// New builds a scheduler by policy name; "" selects Default.
func New[T any](policy string) (Scheduler[T], error) {
	switch policy {
	case PolicyFIFO:
		return &fifo[T]{inService: map[string]int{}}, nil
	case "", PolicyFair:
		return &fair[T]{clients: map[string]*fairClient[T]{}}, nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (valid: %s)",
		policy, strings.Join(Names(), ", "))
}

// ClientStat is one requester's accounting inside a Snapshot.
type ClientStat struct {
	// QueuedJobs/QueuedCells count work accepted but not yet popped.
	QueuedJobs  int `json:"queuedJobs"`
	QueuedCells int `json:"queuedCells"`
	// InServiceCells counts cells popped by a worker and not yet Done.
	InServiceCells int `json:"inServiceCells"`
}

// Snapshot is a point-in-time view of the scheduler, shaped for direct
// JSON emission by the smtsimd /v1/metrics endpoint. Clients holds one
// entry per active requester — one with queued or in-service work; idle
// requesters are forgotten, so the map cannot grow without bound.
type Snapshot struct {
	Policy         string                `json:"policy"`
	QueuedJobs     int                   `json:"queuedJobs"`
	QueuedCells    int                   `json:"queuedCells"`
	InServiceCells int                   `json:"inServiceCells"`
	Clients        map[string]ClientStat `json:"clients,omitempty"`
}

// requesterKey carries the requester identity in a context.
type requesterKey struct{}

// WithRequester stamps ctx with a requester identity for downstream
// dispatch accounting; an empty id leaves ctx unchanged.
func WithRequester(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requesterKey{}, id)
}

// Requester recovers the identity stamped by WithRequester, or "" when
// the context carries none.
func Requester(ctx context.Context) string {
	id, _ := ctx.Value(requesterKey{}).(string)
	return id
}

// fifo is the original single-queue policy: jobs pop in arrival order,
// whoever queued them. Kept as the baseline scheduler — and the policy
// the starvation regression test proves the problem against.
type fifo[T any] struct {
	queue     []Job[T]
	cells     int
	inService map[string]int
	totalIn   int
}

func (f *fifo[T]) Name() string { return PolicyFIFO }

func (f *fifo[T]) Push(j Job[T]) {
	f.queue = append(f.queue, j)
	f.cells += j.Cells
}

func (f *fifo[T]) Pop() (Job[T], bool) {
	if len(f.queue) == 0 {
		return Job[T]{}, false
	}
	j := f.queue[0]
	f.queue[0] = Job[T]{} // drop the array's reference to the popped job
	f.queue = f.queue[1:]
	if len(f.queue) == 0 {
		f.queue = nil // release the drained backing array
	}
	f.cells -= j.Cells
	f.inService[j.Requester] += j.Cells
	f.totalIn += j.Cells
	return j, true
}

func (f *fifo[T]) Done(j Job[T]) {
	if n := f.inService[j.Requester] - j.Cells; n > 0 {
		f.inService[j.Requester] = n
	} else {
		delete(f.inService, j.Requester)
	}
	f.totalIn -= j.Cells
}

func (f *fifo[T]) Snapshot() Snapshot {
	s := Snapshot{
		Policy:         PolicyFIFO,
		QueuedJobs:     len(f.queue),
		QueuedCells:    f.cells,
		InServiceCells: f.totalIn,
	}
	clients := map[string]ClientStat{}
	for _, j := range f.queue {
		c := clients[j.Requester]
		c.QueuedJobs++
		c.QueuedCells += j.Cells
		clients[j.Requester] = c
	}
	//lint:deterministic merges per-client counters into a map; the result is key-addressed and serialized via encoding/json, which sorts keys, so iteration order is unobservable
	for id, n := range f.inService {
		c := clients[id]
		c.InServiceCells = n
		clients[id] = c
	}
	if len(clients) > 0 {
		s.Clients = clients
	}
	return s
}

// fairClient is one requester's state under the fair policy.
type fairClient[T any] struct {
	queue       []Job[T]
	queuedCells int
	inService   int    // cells popped, not yet Done
	lastPop     uint64 // stamp of the most recent pop (0 = never served)
	arrival     uint64 // stamp of the first push while active
}

// fair is the ICOUNT-style policy: Pop serves the active requester with
// the fewest cells in service (the analogue of ICOUNT's
// fewest-instructions-in-pipeline fetch priority), breaking ties
// round-robin toward the least recently served, then toward the earliest
// arrival. Within one requester, jobs stay FIFO, so a single requester
// observes exactly the old behavior. A requester with no queued jobs and
// nothing in service is forgotten (its stamps reset), bounding the state
// to active requesters.
type fair[T any] struct {
	clients     map[string]*fairClient[T]
	stamp       uint64 // shared arrival/pop stamp source
	queuedJobs  int
	queuedCells int
	totalIn     int
}

func (f *fair[T]) Name() string { return PolicyFair }

func (f *fair[T]) Push(j Job[T]) {
	c := f.clients[j.Requester]
	if c == nil {
		f.stamp++
		c = &fairClient[T]{arrival: f.stamp}
		f.clients[j.Requester] = c
	}
	c.queue = append(c.queue, j)
	c.queuedCells += j.Cells
	f.queuedJobs++
	f.queuedCells += j.Cells
}

// next returns the queued requester Pop should serve, nil when idle.
// The comparison key (inService, lastPop, arrival) is a total order over
// distinct clients — pop stamps are unique and arrival stamps are unique
// among never-served clients — so the choice does not depend on map
// iteration order.
func (f *fair[T]) next() *fairClient[T] {
	var best *fairClient[T]
	//lint:deterministic the (inService, lastPop, arrival) key documented above is a total order over distinct clients, so the minimum is unique and iteration order cannot change the winner
	for _, c := range f.clients {
		if len(c.queue) == 0 {
			continue
		}
		if best == nil ||
			c.inService < best.inService ||
			(c.inService == best.inService &&
				(c.lastPop < best.lastPop ||
					(c.lastPop == best.lastPop && c.arrival < best.arrival))) {
			best = c
		}
	}
	return best
}

func (f *fair[T]) Pop() (Job[T], bool) {
	c := f.next()
	if c == nil {
		return Job[T]{}, false
	}
	j := c.queue[0]
	c.queue[0] = Job[T]{}
	c.queue = c.queue[1:]
	if len(c.queue) == 0 {
		c.queue = nil
	}
	c.queuedCells -= j.Cells
	c.inService += j.Cells
	f.stamp++
	c.lastPop = f.stamp
	f.queuedJobs--
	f.queuedCells -= j.Cells
	f.totalIn += j.Cells
	return j, true
}

func (f *fair[T]) Done(j Job[T]) {
	c := f.clients[j.Requester]
	if c == nil {
		return
	}
	if c.inService -= j.Cells; c.inService < 0 {
		c.inService = 0
	}
	f.totalIn -= j.Cells
	if c.inService == 0 && len(c.queue) == 0 {
		delete(f.clients, j.Requester)
	}
}

func (f *fair[T]) Snapshot() Snapshot {
	s := Snapshot{
		Policy:         PolicyFair,
		QueuedJobs:     f.queuedJobs,
		QueuedCells:    f.queuedCells,
		InServiceCells: f.totalIn,
	}
	if len(f.clients) > 0 {
		s.Clients = make(map[string]ClientStat, len(f.clients))
		//lint:deterministic builds a key-addressed map serialized via encoding/json (sorted keys); iteration order is unobservable
		for id, c := range f.clients {
			s.Clients[id] = ClientStat{
				QueuedJobs:     len(c.queue),
				QueuedCells:    c.queuedCells,
				InServiceCells: c.inService,
			}
		}
	}
	return s
}
