// Package stats provides the counters, averages and histograms the
// simulator uses to report results.
//
// The types here are deliberately plain: a simulation is single-goroutine,
// so no synchronization is needed, and the hot-path cost of bumping a
// counter must stay at a single add. Anything fancier (rates, ratios,
// normalized figures) is computed at reporting time from the raw counts.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter uint64

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { *c++ }

// Value returns the current count.
func (c Counter) Value() uint64 { return uint64(c) }

// Ratio returns c divided by total, or 0 when total is zero.
func Ratio(c, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(c) / float64(total)
}

// RunningMean accumulates a streaming arithmetic mean without storing
// samples. Used for per-cycle occupancy averages (e.g. Figure 5's
// "allocated physical registers per cycle").
type RunningMean struct {
	n   uint64
	sum float64
}

// Observe adds one sample.
func (m *RunningMean) Observe(v float64) {
	m.n++
	m.sum += v
}

// ObserveN adds the same sample n times (cheap bulk update).
func (m *RunningMean) ObserveN(v float64, n uint64) {
	m.n += n
	m.sum += v * float64(n)
}

// Mean returns the arithmetic mean of all samples, or 0 with no samples.
func (m *RunningMean) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Count returns the number of samples observed.
func (m *RunningMean) Count() uint64 { return m.n }

// Sum returns the sum of all samples (windowed-delta computations need it:
// meanOverWindow = (Sum2-Sum1)/(Count2-Count1)).
func (m *RunningMean) Sum() float64 { return m.sum }

// Histogram is a fixed-bucket histogram over uint64 samples. Bucket i
// covers [bounds[i-1], bounds[i]); the last bucket is unbounded above.
type Histogram struct {
	bounds []uint64
	counts []uint64
	total  uint64
	sum    float64
	max    uint64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. It panics if bounds are empty or not strictly ascending.
func NewHistogram(bounds ...uint64) *Histogram {
	if len(bounds) == 0 {
		//lint:panicfree documented constructor precondition; bucket tables are compiled-in static data
		panic("stats: NewHistogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			//lint:panicfree documented constructor precondition; bucket tables are compiled-in static data
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe adds one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v < h.bounds[i] })
	h.counts[i]++
	h.total++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
}

// Total returns the number of samples observed.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the mean of all samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest observed sample.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0<=q<=1) using the
// bucket upper bounds; the top bucket reports the observed max.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// String renders the histogram compactly for debug output.
func (h *Histogram) String() string {
	var b strings.Builder
	prev := uint64(0)
	for i, c := range h.counts {
		if c == 0 {
			if i < len(h.bounds) {
				prev = h.bounds[i]
			}
			continue
		}
		if i < len(h.bounds) {
			fmt.Fprintf(&b, "[%d,%d):%d ", prev, h.bounds[i], c)
			prev = h.bounds[i]
		} else {
			fmt.Fprintf(&b, "[%d,inf):%d ", prev, c)
		}
	}
	return strings.TrimSpace(b.String())
}

// HarmonicMean returns the harmonic mean of the samples, the aggregation
// the paper's fairness metric (eq. 2) is built on. Zero or negative
// samples make the harmonic mean undefined; this returns 0 in that case.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// Mean returns the arithmetic mean of the samples (0 for none).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive samples (0 if any sample
// is non-positive or the slice is empty). Used for cross-workload
// aggregation of normalized metrics such as ED².
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
