package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
	if got := Ratio(1, 4); got != 0.25 {
		t.Fatalf("Ratio(1,4) = %v", got)
	}
}

func TestRunningMean(t *testing.T) {
	var m RunningMean
	if m.Mean() != 0 {
		t.Fatal("empty mean must be 0")
	}
	for i := 1; i <= 100; i++ {
		m.Observe(float64(i))
	}
	if got := m.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", got)
	}
	if m.Count() != 100 {
		t.Fatalf("count = %d", m.Count())
	}
}

func TestRunningMeanObserveN(t *testing.T) {
	var a, b RunningMean
	for i := 0; i < 10; i++ {
		a.Observe(3)
	}
	b.ObserveN(3, 10)
	if a.Mean() != b.Mean() || a.Count() != b.Count() {
		t.Fatal("ObserveN disagrees with repeated Observe")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	for _, v := range []uint64{0, 9, 10, 19, 20, 29, 30, 100} {
		h.Observe(v)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %d", h.Max())
	}
	wantCounts := []uint64{2, 2, 2, 2}
	for i, w := range wantCounts {
		if h.counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%s)", i, h.counts[i], w, h)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, bounds := range [][]uint64{{}, {5, 5}, {5, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for i := uint64(0); i < 90; i++ {
		h.Observe(5) // bucket [0,10)
	}
	for i := uint64(0); i < 10; i++ {
		h.Observe(500) // bucket [100,1000)
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %d, want 10", q)
	}
	if q := h.Quantile(0.99); q != 1000 {
		t.Fatalf("p99 = %d, want 1000", q)
	}
	var empty Histogram
	if (&empty).Total() != 0 {
		t.Fatal("zero histogram non-empty")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(2)
	h.Observe(4)
	if got := h.Mean(); got != 3 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1, 1}); got != 1 {
		t.Fatalf("HM(1,1,1) = %v", got)
	}
	// HM(1, 3) = 2/(1 + 1/3) = 1.5
	if got := HarmonicMean([]float64{1, 3}); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("HM(1,3) = %v", got)
	}
	if HarmonicMean(nil) != 0 || HarmonicMean([]float64{0, 1}) != 0 {
		t.Fatal("degenerate harmonic means must be 0")
	}
}

func TestHarmonicLEArithmetic(t *testing.T) {
	// AM-HM inequality, a good property-based invariant.
	f := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			xs = append(xs, float64(r)+1) // strictly positive
		}
		if len(xs) == 0 {
			return true
		}
		return HarmonicMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GM(2,8) = %v", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{0, 1}) != 0 {
		t.Fatal("degenerate geomeans must be 0")
	}
}

func TestGeoMeanBetweenHarmonicAndArithmetic(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		hm, gm, am := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		return hm <= gm+1e-9 && gm <= am+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}
