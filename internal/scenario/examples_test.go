package scenario

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// loadExamples parses every shipped example sweep.
func loadExamples(t *testing.T) map[string]*Spec {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example scenarios found: %v", err)
	}
	out := map[string]*Spec{}
	for _, p := range paths {
		sp, err := Load(p)
		if err != nil {
			t.Fatalf("shipped example does not load: %v", err)
		}
		out[p] = sp
	}
	return out
}

// TestShippedSweepFingerprintsCollisionFree expands every cell of every
// shipped example sweep and checks the cache-key contract on the real
// grids users run: a fingerprint is shared only by identical canonical
// configurations, so no two distinct machine points of any shipped sweep
// can ever alias in output labelling (and their canonical cache keys
// cannot alias at all).
func TestShippedSweepFingerprintsCollisionFree(t *testing.T) {
	byFingerprint := map[string]string{} // fingerprint -> canonical
	cells := 0
	for path, sp := range loadExamples(t) {
		combos, err := sp.Combos(core.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		ws, err := sp.Workloads.Select()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		cells += len(ws) * len(combos)
		for _, c := range combos {
			canon := c.Config.Canonical()
			if c.Fingerprint != c.Config.Fingerprint() {
				t.Fatalf("%s: combo %v fingerprint not reproducible", path, c.Labels)
			}
			if prev, ok := byFingerprint[c.Fingerprint]; ok && prev != canon {
				t.Fatalf("%s: fingerprint %s collides across distinct configs:\n%s\n%s",
					path, c.Fingerprint, prev, canon)
			}
			byFingerprint[c.Fingerprint] = canon
		}
	}
	if cells == 0 {
		t.Fatal("shipped sweeps expand to zero cells")
	}
	t.Logf("%d cells, %d distinct configurations", cells, len(byFingerprint))
}
