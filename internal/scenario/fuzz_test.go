package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// FuzzSpecJSON is the contract of the spec-parsing surface — the exact
// bytes an smtsimd client controls: any input either returns an error or
// a fully validated Spec; it never panics, and an accepted spec survives
// re-validation, workload expansion, a JSON round-trip, and (bounded)
// grid expansion.
func FuzzSpecJSON(f *testing.F) {
	// Seed with the shipped example sweeps plus structural edge cases.
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no example scenario seeds found: %v", err)
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	for _, seed := range []string{
		`{}`,
		`{"name":"x"}`,
		`{"name":"x","axes":[]}`,
		`{"name":"x","axes":[{"name":"a","points":[{"delta":{}}]}]}`,
		`{"name":"x","axes":[{"name":"a","points":[{"delta":{"robSize":-1}}]}]}`,
		`{"name":"x","workloads":{"adhoc":["art+mcf"]},"metrics":["nope"]}`,
		`{"name":"x","workloads":{"groups":["MEM2"],"perGroup":-1}}`,
		`{"name":"x","format":"ndjson","base":{"seed":18446744073709551615}}`,
		`{"name":"x","axes":[{"name":"workload","points":[{"delta":{}}]}]}`,
		`[1,2,3]`,
		`null`,
		`"str"`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(bytes.NewReader(data))
		if err != nil {
			if sp != nil {
				t.Fatalf("Parse returned both a spec and an error: %v", err)
			}
			return
		}
		// Accepted specs must be stable under re-validation and expansion.
		if err := sp.Validate(); err != nil {
			t.Fatalf("accepted spec fails re-validation: %v", err)
		}
		ws, err := sp.Workloads.Select()
		if err != nil || len(ws) == 0 {
			t.Fatalf("accepted spec has no expandable workloads: %v", err)
		}
		// A JSON round-trip of the parsed spec must parse again: the spec
		// is also the daemon's wire format (smtload marshals Specs).
		re, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		if _, err := Parse(bytes.NewReader(re)); err != nil {
			t.Fatalf("accepted spec does not round-trip: %v\n%s", err, re)
		}
		// Grid expansion must not panic. Errors are fine (a delta can
		// describe an invalid machine); unbounded growth is not, so skip
		// cross-products beyond the daemon's own cell bound.
		cells := 1
		for _, ax := range sp.Axes {
			cells *= len(ax.Points)
			if cells > 4096 {
				return
			}
		}
		if combos, err := sp.Combos(core.DefaultConfig()); err == nil {
			seen := map[string]bool{}
			for _, c := range combos {
				if c.Fingerprint == "" {
					t.Fatal("combo with empty fingerprint")
				}
				seen[c.Fingerprint] = true
			}
			_ = seen
		}
	})
}
