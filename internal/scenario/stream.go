package scenario

import (
	"encoding/json"
	"io"
)

// RowEncoder serializes reduced rows as NDJSON: one JSON object per line,
// keyed exactly like the rows of the buffered JSON document — "workload",
// one key per axis (the point label), one per metric (the value),
// "truncated" and "config". Keys render in sorted order (encoding/json
// map order), so the byte stream is fully deterministic: a streamed
// smtsimd response is bit-identical to encoding the same ResultSet after
// the fact, whatever the worker count.
type RowEncoder struct {
	axes    []string
	metrics []string
	enc     *json.Encoder
}

// NewRowEncoder builds an encoder for rows produced by sp.
func NewRowEncoder(w io.Writer, sp *Spec) *RowEncoder {
	return &RowEncoder{axes: sp.AxisNames(), metrics: sp.metrics(), enc: json.NewEncoder(w)}
}

// Encode writes one row as a single JSON line.
func (e *RowEncoder) Encode(row Row) error {
	obj := make(map[string]any, len(e.axes)+len(e.metrics)+3)
	obj["workload"] = row.Workload
	for i, a := range e.axes {
		obj[a] = row.Labels[i]
	}
	for i, m := range e.metrics {
		obj[m] = row.Values[i]
	}
	obj["truncated"] = row.Truncated
	obj["config"] = row.Fingerprint
	return e.enc.Encode(obj)
}

// WriteNDJSON emits the result set as NDJSON rows, byte-identical to
// streaming the same rows through a RowEncoder during execution.
func (rs *ResultSet) WriteNDJSON(w io.Writer) error {
	e := &RowEncoder{axes: rs.Axes, metrics: rs.Metrics, enc: json.NewEncoder(w)}
	for _, row := range rs.Rows {
		if err := e.Encode(row); err != nil {
			return err
		}
	}
	return nil
}
