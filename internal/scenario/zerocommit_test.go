package scenario

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/simcache"
	"repro/internal/workload"
)

// stubRunner satisfies Runner for metric-computation tests that never
// dispatch simulations.
type stubRunner struct{}

func (stubRunner) BaseConfig() core.Config { return core.DefaultConfig() }
func (stubRunner) StartRunCtx(context.Context, workload.Workload, core.Config) *simcache.Call[*core.Result] {
	panic("stubRunner cannot simulate")
}
func (stubRunner) StartReferenceCtx(context.Context, string, core.Config) {}
func (stubRunner) ReferenceCtx(context.Context, string, core.Config) (float64, error) {
	return 1.5, nil
}

// TestZeroCommitMetricsFiniteEverywhere is the divide-by-zero
// regression: a truncated run that committed nothing (the degenerate
// corner a tiny trace length or cycle budget approaches) must reduce to
// finite metric values — l2mpki and ed2 divide by CommittedTotal, and a
// single ±Inf or NaN would make encoding/json fail the entire emit with
// "json: unsupported value". Every metric and every output format must
// survive such a row.
func TestZeroCommitMetricsFiniteEverywhere(t *testing.T) {
	res := &core.Result{
		Workload:  "custom/art+mcf",
		Cycles:    64,
		Truncated: true,
		Threads: []core.ThreadResult{
			{Benchmark: "art", L2MissLoads: 7},
			{Benchmark: "mcf"},
		},
		// CommittedTotal and ExecutedTotal stay zero: nothing retired.
	}
	w := workload.Workload{Group: "custom", Benchmarks: []string{"art", "mcf"}}
	ctx := context.Background()
	cfg := core.DefaultConfig()

	names := MetricNames()
	values := make([]float64, 0, len(names))
	for _, m := range metricTable {
		v, err := m.compute(ctx, stubRunner{}, w, cfg, res)
		if err != nil {
			t.Fatalf("metric %s: %v", m.name, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("metric %s = %v on a zero-commit result, want finite", m.name, v)
		}
		values = append(values, v)
	}

	rs := &ResultSet{
		Name:    "zero-commit",
		Axes:    []string{"x"},
		Metrics: names,
		Rows: []Row{{
			Workload:    w.Name(),
			Labels:      []string{"p0"},
			Fingerprint: "cfg-zero",
			Values:      values,
			Truncated:   true,
		}},
	}
	for _, format := range []string{"table", "json", "csv", "ndjson"} {
		var buf bytes.Buffer
		if err := rs.Emit(&buf, format); err != nil {
			t.Errorf("emit %s failed on zero-commit row: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Errorf("emit %s wrote nothing", format)
		}
	}
}
