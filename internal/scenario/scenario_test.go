package scenario_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

func ptr[T any](v T) *T { return &v }

func TestDeltaApply(t *testing.T) {
	cfg := core.DefaultConfig()
	d := scenario.Delta{
		Policy:   ptr("RaT"),
		ROBSize:  ptr(256),
		Regs:     ptr(128),
		FPRegs:   ptr(192), // specific override on top of the compound one
		L2Lat:    ptr(uint64(35)),
		L2KB:     ptr(2048),
		TraceLen: ptr(5_000),
		Seed:     ptr(uint64(9)),
	}
	if err := d.Apply(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Policy != core.PolicyRaT {
		t.Errorf("policy = %q", cfg.Policy)
	}
	if cfg.Pipeline.ROBSize != 256 || cfg.Pipeline.IntRegs != 128 || cfg.Pipeline.FPRegs != 192 {
		t.Errorf("geometry = ROB %d, regs %d/%d", cfg.Pipeline.ROBSize, cfg.Pipeline.IntRegs, cfg.Pipeline.FPRegs)
	}
	if cfg.Pipeline.Mem.L2.Latency != 35 || cfg.Pipeline.Mem.L2.SizeBytes != 2048<<10 {
		t.Errorf("L2 = %d cyc, %d bytes", cfg.Pipeline.Mem.L2.Latency, cfg.Pipeline.Mem.L2.SizeBytes)
	}
	if cfg.TraceLen != 5_000 || cfg.Seed != 9 {
		t.Errorf("measurement = len %d, seed %d", cfg.TraceLen, cfg.Seed)
	}
	// Untouched knobs keep their Table 1 values.
	if cfg.Pipeline.Width != 8 || cfg.Pipeline.Mem.MemLatency != 400 {
		t.Errorf("unrelated knobs moved: width %d, memlat %d", cfg.Pipeline.Width, cfg.Pipeline.Mem.MemLatency)
	}
	if err := (scenario.Delta{Policy: ptr("bogus")}).Apply(&cfg); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestDeltaLabel(t *testing.T) {
	if got := (scenario.Delta{}).Label(); got != "base" {
		t.Errorf("empty delta label = %q", got)
	}
	d := scenario.Delta{Policy: ptr("RaT"), ROBSize: ptr(128)}
	if got := d.Label(); got != "policy=RaT,robSize=128" {
		t.Errorf("label = %q", got)
	}
	if (scenario.Delta{ROBSize: ptr(1)}).IsZero() {
		t.Error("set delta reports zero")
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"name":"x","axes":[{"name":"a","points":[{"delta":{"robSzie":128}}]}]}`,
		"missing name":    `{"axes":[]}`,
		"unknown metric":  `{"name":"x","metrics":["bogus"]}`,
		"unknown group":   `{"name":"x","workloads":{"groups":["NOPE"]}}`,
		"bad adhoc":       `{"name":"x","workloads":{"adhoc":["art+nonesuch"]}}`,
		"axis no points":  `{"name":"x","axes":[{"name":"a"}]}`,
		"duplicate axis":  `{"name":"x","axes":[{"name":"a","points":[{"delta":{}}]},{"name":"a","points":[{"delta":{}}]}]}`,
		"bad format":      `{"name":"x","format":"xml"}`,
		"duplicate point": `{"name":"x","axes":[{"name":"a","points":[{"delta":{"robSize":1}},{"delta":{"robSize":1}}]}]}`,
	}
	for what, doc := range cases {
		if _, err := scenario.Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted: %s", what, doc)
		}
	}
}

func TestParseValidSpec(t *testing.T) {
	doc := `{
		"name": "rob-sweep",
		"description": "RaT sensitivity to ROB size",
		"workloads": {"groups": ["MEM2"], "perGroup": 2, "adhoc": ["art+mcf+swim+twolf"]},
		"base": {"policy": "RaT"},
		"axes": [{"name": "rob", "points": [
			{"delta": {"robSize": 128}},
			{"delta": {"robSize": 512}}
		]}],
		"metrics": ["throughput", "l2mpki"],
		"format": "json"
	}`
	sp, err := scenario.Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := sp.Workloads.Select()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("selected %d workloads, want 2 MEM2 + 1 adhoc", len(ws))
	}
	if ws[2].Name() != "adhoc/art+mcf+swim+twolf" {
		t.Errorf("adhoc workload = %s", ws[2].Name())
	}
	combos, err := sp.Combos(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 2 {
		t.Fatalf("%d combos, want 2", len(combos))
	}
	for _, c := range combos {
		if c.Config.Policy != core.PolicyRaT {
			t.Errorf("combo %v lost the base policy", c.Labels)
		}
	}
	if combos[0].Fingerprint == combos[1].Fingerprint {
		t.Error("distinct ROB sizes share a fingerprint")
	}
	if combos[0].Labels[0] != "robSize=128" {
		t.Errorf("derived label = %q", combos[0].Labels[0])
	}
}

func TestCombosCrossProduct(t *testing.T) {
	sp := &scenario.Spec{
		Name: "x",
		Axes: []scenario.Axis{
			{Name: "rob", Points: []scenario.Point{
				{Delta: scenario.Delta{ROBSize: ptr(128)}},
				{Delta: scenario.Delta{ROBSize: ptr(256)}},
				{Delta: scenario.Delta{ROBSize: ptr(512)}},
			}},
			{Name: "policy", Points: []scenario.Point{
				{Label: "ICOUNT", Delta: scenario.Delta{Policy: ptr("ICOUNT")}},
				{Label: "RaT", Delta: scenario.Delta{Policy: ptr("RaT")}},
			}},
		},
	}
	combos, err := sp.Combos(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 6 {
		t.Fatalf("%d combos, want 6", len(combos))
	}
	// Leftmost axis slowest-varying: combo 2 is rob=256 × ICOUNT.
	if combos[2].Labels[0] != "robSize=256" || combos[2].Labels[1] != "ICOUNT" {
		t.Errorf("combo 2 labels = %v", combos[2].Labels)
	}
	seen := map[string]bool{}
	for _, c := range combos {
		if seen[c.Fingerprint] {
			t.Errorf("duplicate fingerprint for %v", c.Labels)
		}
		seen[c.Fingerprint] = true
	}

	// An incoherent machine configuration must be an error, not a panic.
	sp.Axes[0].Points[0].Delta.ROBSize = ptr(-1)
	if _, err := sp.Combos(core.DefaultConfig()); err == nil {
		t.Error("negative ROB accepted")
	}
	sp.Axes[0].Points[0].Delta = scenario.Delta{MSHRs: ptr(0), ROBSize: ptr(128)}
	if _, err := sp.Combos(core.DefaultConfig()); err == nil {
		t.Error("zero MSHRs accepted")
	}
}

// testSpec is a small but real sweep: one non-policy, non-regfile knob
// (ROB size) under RaT on one 2-thread workload.
func testSpec() *scenario.Spec {
	return &scenario.Spec{
		Name:        "rob-sweep-test",
		Description: "ROB sensitivity under RaT",
		Workloads:   scenario.WorkloadSpec{Adhoc: []string{"art+gzip"}},
		Base: scenario.Delta{
			Policy:    ptr("RaT"),
			TraceLen:  ptr(3_000),
			MaxCycles: ptr(uint64(3_000_000)),
		},
		Axes: []scenario.Axis{{Name: "rob", Points: []scenario.Point{
			{Delta: scenario.Delta{ROBSize: ptr(64)}},
			{Delta: scenario.Delta{ROBSize: ptr(512)}},
		}}},
		Metrics: []string{"throughput", "fairness", "cycles"},
	}
}

func TestExecuteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	o := experiments.Quick()
	s, err := experiments.NewSession(o)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.RunScenario(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (1 workload × 2 ROB sizes)", len(rs.Rows))
	}
	for _, row := range rs.Rows {
		if row.Workload != "adhoc/art+gzip" {
			t.Errorf("row workload = %s", row.Workload)
		}
		for mi, name := range rs.Metrics {
			if row.Values[mi] <= 0 {
				t.Errorf("%s/%v: metric %s not positive: %v", row.Workload, row.Labels, name, row.Values[mi])
			}
		}
	}
	// A 64-entry ROB cannot be faster than a 512-entry one here; assert
	// the sweep actually reached the knob (the whole point of the engine).
	if rs.Value(0, 0, 0) >= rs.Value(0, 1, 0) {
		t.Errorf("ROB sweep had no effect: throughput %v (64) vs %v (512)",
			rs.Value(0, 0, 0), rs.Value(0, 1, 0))
	}
}

func TestExecuteDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	run := func(workers int) *scenario.ResultSet {
		o := experiments.Quick()
		o.Workers = workers
		s, err := experiments.NewSession(o)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := s.RunScenario(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := run(1), run(4)
	for i := range a.Rows {
		for mi := range a.Rows[i].Values {
			if a.Rows[i].Values[mi] != b.Rows[i].Values[mi] {
				t.Errorf("row %d metric %d diverges across worker counts: %v vs %v",
					i, mi, a.Rows[i].Values[mi], b.Rows[i].Values[mi])
			}
		}
	}
}

func TestResultSetEmitters(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	s, err := experiments.NewSession(experiments.Quick())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.RunScenario(testSpec())
	if err != nil {
		t.Fatal(err)
	}

	// JSON: valid, row-per-cell, metric values surviving exactly.
	var buf bytes.Buffer
	if err := rs.Emit(&buf, "json"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string           `json:"title"`
		Columns []string         `json:"columns"`
		Rows    []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if doc.Title != "rob-sweep-test" || len(doc.Rows) != 2 {
		t.Fatalf("JSON shape: title %q, %d rows", doc.Title, len(doc.Rows))
	}
	if got := doc.Rows[0]["throughput"].(float64); got != rs.Rows[0].Values[0] {
		t.Errorf("JSON throughput %v != %v", got, rs.Rows[0].Values[0])
	}
	if doc.Rows[1]["rob"].(string) != "robSize=512" {
		t.Errorf("JSON axis label = %v", doc.Rows[1]["rob"])
	}

	// CSV: header + rows, float cells round-tripping exactly.
	buf.Reset()
	if err := rs.Emit(&buf, "csv"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("CSV has %d records, want header + 2 rows", len(recs))
	}
	thruCol := -1
	for i, c := range recs[0] {
		if c == "throughput" {
			thruCol = i
		}
	}
	if thruCol < 0 {
		t.Fatalf("CSV header missing throughput: %v", recs[0])
	}
	got, err := strconv.ParseFloat(recs[1][thruCol], 64)
	if err != nil || got != rs.Rows[0].Values[0] {
		t.Errorf("CSV throughput %q -> %v, want exactly %v", recs[1][thruCol], got, rs.Rows[0].Values[0])
	}

	// Table: aligned text with every column name.
	table := rs.String()
	for _, want := range []string{"workload", "rob", "throughput", "fairness", "config"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if err := rs.Emit(&bytes.Buffer{}, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestMetricNames(t *testing.T) {
	names := scenario.MetricNames()
	want := map[string]bool{"throughput": true, "fairness": true, "ed2": true, "l2mpki": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("MetricNames missing %v (got %v)", want, names)
	}
}
