// Package scenario is the declarative sweep engine in front of the
// simulator: a Spec names a workload selection, a baseline delta, a set
// of axes (each a list of typed configuration deltas onto core.Config),
// the metrics to reduce, and an output format. The engine expands the
// cross-product of the axes, dispatches every (workload, configuration)
// point onto an existing worker pool (experiments.Session implements the
// Runner interface), and returns a structured ResultSet that renders as a
// text table, JSON, or CSV.
//
// The point of the layer is reach: the paper's harness could only vary
// fetch policy and register file size, but any machine-design sweep the
// paper *could* have run — RaT sensitivity to ROB size, L2 latency across
// policies, issue-queue scaling — is a JSON file here, not a new Go
// figure function. Specs load from JSON (see examples/scenarios/) or are
// built in code: the Fig1–Fig6 reproductions are Spec instances plus
// their paper-specific reductions.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"strings"

	"repro/internal/core"
	"repro/internal/workload"
)

// Delta is a typed set of overrides onto core.Config. Every field is
// optional (nil = leave the base value alone); unknown field names in a
// JSON scenario are a load error, so a typo cannot silently sweep
// nothing. Field names below are the JSON keys.
type Delta struct {
	// Policy selects the fetch/resource policy (e.g. "RaT", "ICOUNT").
	Policy *string `json:"policy,omitempty"`

	// Pipeline geometry.
	Width          *int    `json:"width,omitempty"`
	FetchThreads   *int    `json:"fetchThreads,omitempty"`
	FrontEndDepth  *uint64 `json:"frontEndDepth,omitempty"`
	FetchQueue     *int    `json:"fetchQueue,omitempty"`
	ROBSize        *int    `json:"robSize,omitempty"`
	Regs           *int    `json:"regs,omitempty"` // both register files
	IntRegs        *int    `json:"intRegs,omitempty"`
	FPRegs         *int    `json:"fpRegs,omitempty"`
	IQ             *int    `json:"iq,omitempty"` // all three issue queues
	IntIQ          *int    `json:"intIQ,omitempty"`
	FPIQ           *int    `json:"fpIQ,omitempty"`
	LSIQ           *int    `json:"lsIQ,omitempty"`
	IntFU          *int    `json:"intFU,omitempty"`
	FPFU           *int    `json:"fpFU,omitempty"`
	LSFU           *int    `json:"lsFU,omitempty"`
	IntMulLat      *uint64 `json:"intMulLat,omitempty"`
	FPAluLat       *uint64 `json:"fpAluLat,omitempty"`
	FPMulLat       *uint64 `json:"fpMulLat,omitempty"`
	FPDivLat       *uint64 `json:"fpDivLat,omitempty"`
	MispredictCost *uint64 `json:"mispredictRedirect,omitempty"`
	BranchPredRows *int    `json:"branchPredRows,omitempty"`

	// Memory hierarchy. Cache sizes are in KB; lineBytes applies to all
	// three caches (the machine has one line size, per Table 1).
	IL1KB      *int    `json:"il1KB,omitempty"`
	IL1Ways    *int    `json:"il1Ways,omitempty"`
	IL1Lat     *uint64 `json:"il1Lat,omitempty"`
	DL1KB      *int    `json:"dl1KB,omitempty"`
	DL1Ways    *int    `json:"dl1Ways,omitempty"`
	DL1Lat     *uint64 `json:"dl1Lat,omitempty"`
	L2KB       *int    `json:"l2KB,omitempty"`
	L2Ways     *int    `json:"l2Ways,omitempty"`
	L2Lat      *uint64 `json:"l2Lat,omitempty"`
	LineBytes  *uint64 `json:"lineBytes,omitempty"`
	MemLatency *uint64 `json:"memLatency,omitempty"`
	MSHRs      *int    `json:"mshrs,omitempty"`

	// Runahead knobs. The boolean runahead ablations are policy variants
	// ("RaT-noprefetch", "RaT-nofetch", "RaT-racache", "RaT-nofpinv");
	// these are the numeric knobs on top of whatever the policy implies.
	RunaheadExitPenalty  *uint64 `json:"raExitPenalty,omitempty"`
	RunaheadCacheEntries *int    `json:"raCacheEntries,omitempty"`

	// Measurement parameters.
	TraceLen      *int    `json:"traceLen,omitempty"`
	MinIterations *int    `json:"minIterations,omitempty"`
	WarmupInsts   *int    `json:"warmupInsts,omitempty"`
	MaxCycles     *uint64 `json:"maxCycles,omitempty"`
	Seed          *uint64 `json:"seed,omitempty"`
}

// Apply writes the set overrides onto c. Compound fields (regs, iq,
// lineBytes) apply before their specific counterparts, so a delta can say
// "regs": 192, "fpRegs": 256 and mean INT=192, FP=256.
func (d Delta) Apply(c *core.Config) error {
	if d.Policy != nil {
		k, err := core.ParsePolicy(*d.Policy)
		if err != nil {
			return err
		}
		c.Policy = k
	}
	p := &c.Pipeline
	if d.Regs != nil {
		p.IntRegs, p.FPRegs = *d.Regs, *d.Regs
	}
	if d.IQ != nil {
		p.IntIQ, p.FPIQ, p.LSIQ = *d.IQ, *d.IQ, *d.IQ
	}
	if d.LineBytes != nil {
		p.Mem.IL1.LineBytes, p.Mem.DL1.LineBytes, p.Mem.L2.LineBytes =
			*d.LineBytes, *d.LineBytes, *d.LineBytes
	}
	for _, f := range []struct {
		dst *int
		src *int
	}{
		{&p.Width, d.Width}, {&p.FetchThreads, d.FetchThreads},
		{&p.FetchQueue, d.FetchQueue}, {&p.ROBSize, d.ROBSize},
		{&p.IntRegs, d.IntRegs}, {&p.FPRegs, d.FPRegs},
		{&p.IntIQ, d.IntIQ}, {&p.FPIQ, d.FPIQ}, {&p.LSIQ, d.LSIQ},
		{&p.IntFU, d.IntFU}, {&p.FPFU, d.FPFU}, {&p.LSFU, d.LSFU},
		{&p.BranchPredRows, d.BranchPredRows},
		{&p.Mem.IL1.Ways, d.IL1Ways}, {&p.Mem.DL1.Ways, d.DL1Ways},
		{&p.Mem.L2.Ways, d.L2Ways}, {&p.Mem.MSHRs, d.MSHRs},
		{&p.RunaheadCacheEntries, d.RunaheadCacheEntries},
		{&c.TraceLen, d.TraceLen}, {&c.MinIterations, d.MinIterations},
		{&c.WarmupInsts, d.WarmupInsts},
	} {
		if f.src != nil {
			*f.dst = *f.src
		}
	}
	for _, f := range []struct {
		dst *uint64
		src *uint64
	}{
		{&p.FrontEndDepth, d.FrontEndDepth},
		{&p.IntMulLat, d.IntMulLat}, {&p.FPAluLat, d.FPAluLat},
		{&p.FPMulLat, d.FPMulLat}, {&p.FPDivLat, d.FPDivLat},
		{&p.MispredictRedirect, d.MispredictCost},
		{&p.Mem.IL1.Latency, d.IL1Lat}, {&p.Mem.DL1.Latency, d.DL1Lat},
		{&p.Mem.L2.Latency, d.L2Lat}, {&p.Mem.MemLatency, d.MemLatency},
		{&c.RunaheadExitPenalty, d.RunaheadExitPenalty},
		{&c.MaxCycles, d.MaxCycles}, {&c.Seed, d.Seed},
	} {
		if f.src != nil {
			*f.dst = *f.src
		}
	}
	for _, f := range []struct {
		dst *uint64
		kb  *int
	}{
		{&p.Mem.IL1.SizeBytes, d.IL1KB}, {&p.Mem.DL1.SizeBytes, d.DL1KB},
		{&p.Mem.L2.SizeBytes, d.L2KB},
	} {
		if f.kb != nil {
			*f.dst = uint64(*f.kb) << 10
		}
	}
	return nil
}

// settings lists the set overrides as "name=value" strings in field
// declaration order (JSON key names).
func (d Delta) settings() []string {
	rv := reflect.ValueOf(d)
	rt := rv.Type()
	var out []string
	for i := 0; i < rt.NumField(); i++ {
		f := rv.Field(i)
		if f.Kind() != reflect.Pointer || f.IsNil() {
			continue
		}
		name, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
		out = append(out, fmt.Sprintf("%s=%v", name, f.Elem().Interface()))
	}
	return out
}

// IsZero reports whether the delta overrides nothing.
func (d Delta) IsZero() bool { return len(d.settings()) == 0 }

// Label derives a human-readable name for the delta, e.g.
// "policy=RaT,robSize=128". The empty delta labels as "base".
func (d Delta) Label() string {
	s := d.settings()
	if len(s) == 0 {
		return "base"
	}
	return strings.Join(s, ",")
}

// Point is one position on an axis: a delta plus an optional label
// (defaulting to the delta's derived label).
type Point struct {
	Label string `json:"label,omitempty"`
	Delta Delta  `json:"delta"`
}

// label returns the explicit label or the derived one.
func (p Point) label() string {
	if p.Label != "" {
		return p.Label
	}
	return p.Delta.Label()
}

// Axis is one swept dimension. The engine crosses all axes; a point's
// delta applies on top of the spec base (and any earlier axis, leftmost
// axis slowest-varying).
type Axis struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// WorkloadSpec selects the workloads a scenario runs: any subset of the
// Table 2 groups (optionally truncated to the first PerGroup entries, in
// table order) plus ad-hoc combinations written as "art+mcf+swim+twolf"
// (optionally "GROUP/art+mcf" to label the group). Empty means the full
// Table 2 suite.
type WorkloadSpec struct {
	Groups   []string `json:"groups,omitempty"`
	PerGroup int      `json:"perGroup,omitempty"`
	Adhoc    []string `json:"adhoc,omitempty"`
}

// Select expands the selection in a fixed order: groups first (table
// order within each), then ad-hoc workloads. Unknown group or benchmark
// names surface as validation errors naming the valid choices.
func (ws WorkloadSpec) Select() ([]workload.Workload, error) {
	groups := ws.Groups
	if len(groups) == 0 && len(ws.Adhoc) == 0 {
		groups = workload.Groups()
	}
	var out []workload.Workload
	for _, g := range groups {
		sel, err := workload.ByGroup(g)
		if err != nil {
			return nil, err
		}
		if ws.PerGroup > 0 && ws.PerGroup < len(sel) {
			sel = sel[:ws.PerGroup]
		}
		out = append(out, sel...)
	}
	for _, spec := range ws.Adhoc {
		w, err := workload.Parse(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: workload selection is empty")
	}
	return out, nil
}

// Spec is one declarative sweep.
type Spec struct {
	// Name identifies the scenario in output.
	Name string `json:"name"`
	// Description is free prose carried into the JSON output.
	Description string `json:"description,omitempty"`
	// Workloads selects what runs.
	Workloads WorkloadSpec `json:"workloads"`
	// Base applies to every point before any axis delta.
	Base Delta `json:"base,omitempty"`
	// Axes are the swept dimensions; their cross-product is the grid.
	// A spec with no axes measures the base configuration alone.
	Axes []Axis `json:"axes,omitempty"`
	// Metrics are the reductions per (workload, configuration) cell; see
	// MetricNames. Empty selects ["throughput"].
	Metrics []string `json:"metrics,omitempty"`
	// Format is the default output format: "table" (default), "json",
	// "csv", or "ndjson" (one JSON object per row; smtsimd's streaming
	// format). The -format flag and the daemon's ?format= override it.
	Format string `json:"format,omitempty"`
}

// metrics returns the selected metric names with the default applied.
func (sp *Spec) metrics() []string {
	if len(sp.Metrics) == 0 {
		return []string{"throughput"}
	}
	return sp.Metrics
}

// Validate checks names, axes, metrics and format. The workload
// selection validates where it expands (Parse at load time, Execute at
// run time), so the table is walked once per phase, not per check.
func (sp *Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	// Axis names become output columns (and NDJSON object keys) next to
	// the fixed columns and the metric columns, so they must not collide.
	reserved := map[string]bool{"workload": true, "truncated": true, "config": true}
	for _, m := range sp.metrics() {
		reserved[m] = true
	}
	seen := map[string]bool{}
	for i, ax := range sp.Axes {
		if ax.Name == "" {
			return fmt.Errorf("scenario %s: axis %d has no name", sp.Name, i)
		}
		if reserved[ax.Name] {
			return fmt.Errorf("scenario %s: axis %q collides with an output column", sp.Name, ax.Name)
		}
		if seen[ax.Name] {
			return fmt.Errorf("scenario %s: duplicate axis %q", sp.Name, ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Points) == 0 {
			return fmt.Errorf("scenario %s: axis %q has no points", sp.Name, ax.Name)
		}
		labels := map[string]bool{}
		for _, pt := range ax.Points {
			l := pt.label()
			if labels[l] {
				return fmt.Errorf("scenario %s: axis %q has duplicate point %q", sp.Name, ax.Name, l)
			}
			labels[l] = true
		}
	}
	for _, m := range sp.metrics() {
		if _, ok := metricByName(m); !ok {
			return fmt.Errorf("scenario %s: unknown metric %q (valid: %s)",
				sp.Name, m, strings.Join(MetricNames(), ", "))
		}
	}
	switch sp.Format {
	case "", "table", "json", "csv", "ndjson":
	default:
		return fmt.Errorf("scenario %s: unknown format %q (valid: table, json, csv, ndjson)", sp.Name, sp.Format)
	}
	return nil
}

// Combo is one fully expanded configuration of the grid.
type Combo struct {
	// Labels holds one axis-point label per axis, in axis order.
	Labels []string
	// Config is the complete machine configuration of this point.
	Config core.Config
	// Fingerprint is Config.Fingerprint(), for output labelling.
	Fingerprint string
}

// Combos expands the cross-product of the axes onto base (after the
// spec's own Base delta), leftmost axis slowest-varying, and validates
// every resulting machine configuration.
func (sp *Spec) Combos(base core.Config) ([]Combo, error) {
	cfg := base
	if err := sp.Base.Apply(&cfg); err != nil {
		return nil, fmt.Errorf("scenario %s: base: %w", sp.Name, err)
	}
	combos := []Combo{{Config: cfg}}
	for _, ax := range sp.Axes {
		next := make([]Combo, 0, len(combos)*len(ax.Points))
		for _, c := range combos {
			for _, pt := range ax.Points {
				nc := c.Config
				if err := pt.Delta.Apply(&nc); err != nil {
					return nil, fmt.Errorf("scenario %s: axis %s, point %s: %w",
						sp.Name, ax.Name, pt.label(), err)
				}
				labels := append(append([]string{}, c.Labels...), pt.label())
				next = append(next, Combo{Labels: labels, Config: nc})
			}
		}
		combos = next
	}
	for i := range combos {
		if err := combos[i].Config.Pipeline.Validate(); err != nil {
			return nil, fmt.Errorf("scenario %s: point %s: %w",
				sp.Name, strings.Join(combos[i].Labels, "/"), err)
		}
		combos[i].Fingerprint = combos[i].Config.Fingerprint()
	}
	return combos, nil
}

// AxisNames returns the axis names in order.
func (sp *Spec) AxisNames() []string {
	out := make([]string, len(sp.Axes))
	for i, ax := range sp.Axes {
		out[i] = ax.Name
	}
	return out
}

// Parse decodes and validates a spec from JSON. Unknown fields anywhere
// in the document are errors, so a misspelled knob cannot silently
// dissolve into a no-op sweep.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if _, err := sp.Workloads.Select(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sp.Name, err)
	}
	return &sp, nil
}

// Load reads a spec from a JSON file.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	sp, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sp, nil
}
