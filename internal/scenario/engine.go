package scenario

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/simcache"
	"repro/internal/workload"
)

// Runner dispatches simulations onto a worker pool with caching; the
// engine never runs a simulation itself. experiments.Session is the
// production implementation: it keys its singleflight cache by
// (workload, core.Config.Canonical()), so any two scenario points — or a
// scenario point and a figure — that describe the same machine share one
// simulation.
//
// Every dispatching method takes the requesting sweep's context: a cell
// whose interested requesters have all canceled before it starts must
// never be simulated, while a cell that is already running finishes and
// populates the shared cache. The context also carries the requester
// identity for fair scheduling (sched.WithRequester): the engine threads
// it unchanged into every dispatch — grid cells, batches, and fairness
// references alike — so the runner's scheduler can attribute all of a
// sweep's work to the client that asked for it.
type Runner interface {
	// BaseConfig returns the configuration scenario deltas apply onto.
	BaseConfig() core.Config
	// StartRunCtx schedules (or joins) one simulation without blocking
	// and returns its pending call.
	StartRunCtx(ctx context.Context, w workload.Workload, cfg core.Config) *simcache.Call[*core.Result]
	// StartReferenceCtx schedules (or joins) the single-thread reference
	// run the fairness metric needs — the benchmark alone on the given
	// machine under the baseline policy — without blocking.
	StartReferenceCtx(ctx context.Context, benchmark string, cfg core.Config)
	// ReferenceCtx blocks for a benchmark's single-thread reference IPC
	// on the given machine, or until ctx is done.
	ReferenceCtx(ctx context.Context, benchmark string, cfg core.Config) (float64, error)
}

// BatchRunner is an optional Runner extension for batched-config
// execution: a runner that implements it receives a workload's whole
// configuration row in one call and may execute cells that share trace
// identity in a single pass over the shared traces. The engine
// type-asserts for it and falls back to per-cell dispatch otherwise, so
// a minimal Runner keeps working unchanged. Batched dispatch must be
// observationally identical to per-cell dispatch — same results, same
// errors — which experiments.Session guarantees by running every batched
// machine independently.
type BatchRunner interface {
	Runner
	// StartRunBatchCtx schedules one workload under many configurations,
	// returning the pending calls in input order.
	StartRunBatchCtx(ctx context.Context, w workload.Workload, cfgs []core.Config) []*simcache.Call[*core.Result]
	// StartReferenceBatchCtx schedules a benchmark's single-thread
	// reference runs for many machines, without blocking.
	StartReferenceBatchCtx(ctx context.Context, benchmark string, cfgs []core.Config)
}

// metric is one per-cell reduction. compute receives the cell's full
// machine configuration so reference-relative metrics (fairness) measure
// their single-thread baseline on the same machine the SMT run used.
type metric struct {
	name string
	// needsReference marks metrics that read single-thread references.
	needsReference bool
	compute        func(ctx context.Context, r Runner, w workload.Workload, cfg core.Config, res *core.Result) (float64, error)
}

// metricTable lists the available reductions in documentation order.
var metricTable = []metric{
	{name: "throughput", compute: func(_ context.Context, _ Runner, _ workload.Workload, _ core.Config, res *core.Result) (float64, error) {
		return metrics.Throughput(res.IPCs()), nil
	}},
	{name: "fairness", needsReference: true, compute: func(ctx context.Context, r Runner, w workload.Workload, cfg core.Config, res *core.Result) (float64, error) {
		stv := make([]float64, 0, len(w.Benchmarks))
		for _, b := range w.Benchmarks {
			v, err := r.ReferenceCtx(ctx, b, cfg)
			if err != nil {
				return 0, err
			}
			stv = append(stv, v)
		}
		return metrics.Fairness(stv, res.IPCs()), nil
	}},
	{name: "ed2", compute: func(_ context.Context, _ Runner, _ workload.Workload, _ core.Config, res *core.Result) (float64, error) {
		return metrics.ED2(res.ExecutedTotal, res.Cycles, res.CommittedTotal), nil
	}},
	{name: "cycles", compute: func(_ context.Context, _ Runner, _ workload.Workload, _ core.Config, res *core.Result) (float64, error) {
		return float64(res.Cycles), nil
	}},
	{name: "committed", compute: func(_ context.Context, _ Runner, _ workload.Workload, _ core.Config, res *core.Result) (float64, error) {
		return float64(res.CommittedTotal), nil
	}},
	{name: "executed", compute: func(_ context.Context, _ Runner, _ workload.Workload, _ core.Config, res *core.Result) (float64, error) {
		return float64(res.ExecutedTotal), nil
	}},
	{name: "l2mpki", compute: func(_ context.Context, _ Runner, _ workload.Workload, _ core.Config, res *core.Result) (float64, error) {
		if res.CommittedTotal == 0 {
			return 0, nil
		}
		var misses uint64
		for i := range res.Threads {
			misses += res.Threads[i].L2MissLoads
		}
		return 1000 * float64(misses) / float64(res.CommittedTotal), nil
	}},
	{name: "prefetches", compute: func(_ context.Context, _ Runner, _ workload.Workload, _ core.Config, res *core.Result) (float64, error) {
		var n uint64
		for i := range res.Threads {
			n += res.Threads[i].PrefetchesIssued
		}
		return float64(n), nil
	}},
	{name: "runahead-episodes", compute: func(_ context.Context, _ Runner, _ workload.Workload, _ core.Config, res *core.Result) (float64, error) {
		var n uint64
		for i := range res.Threads {
			n += res.Threads[i].RunaheadEpisodes
		}
		return float64(n), nil
	}},
}

// metricByName looks a metric up.
func metricByName(name string) (metric, bool) {
	for _, m := range metricTable {
		if m.name == name {
			return m, true
		}
	}
	return metric{}, false
}

// MetricNames lists the valid metric names in documentation order.
func MetricNames() []string {
	out := make([]string, len(metricTable))
	for i, m := range metricTable {
		out[i] = m.name
	}
	return out
}

// Row is one reduced cell of the grid: one workload under one expanded
// configuration.
type Row struct {
	// Workload is the canonical workload name.
	Workload string
	// Labels holds the axis-point labels, parallel to ResultSet.Axes.
	Labels []string
	// Fingerprint identifies the full machine configuration.
	Fingerprint string
	// Values holds the metric values, parallel to ResultSet.Metrics.
	Values []float64
	// Truncated reports the simulation hit its cycle limit before FAME
	// coverage completed (the cell's values are then lower bounds).
	Truncated bool
}

// ResultSet is the engine's structured output: the reduced rows plus the
// raw grid for callers (the figure reductions) that need per-thread data.
type ResultSet struct {
	// Name and Description echo the spec.
	Name        string
	Description string
	// Axes and Metrics name the label and value columns of every Row.
	Axes    []string
	Metrics []string
	// Workloads and Combos are the grid's two dimensions, in run order.
	Workloads []workload.Workload
	Combos    []Combo
	// Rows holds one reduced row per grid cell, workload-major in
	// Workloads×Combos order.
	Rows []Row
	raw  [][]*core.Result
}

// Result returns the raw simulation result of one grid cell.
func (rs *ResultSet) Result(wi, ci int) *core.Result { return rs.raw[wi][ci] }

// Value returns one reduced metric value by grid cell and metric index.
func (rs *ResultSet) Value(wi, ci, mi int) float64 {
	return rs.Rows[wi*len(rs.Combos)+ci].Values[mi]
}

// Execute expands the spec's grid, dispatches every simulation onto the
// runner's pool, and reduces the results in a fixed order — so output is
// bit-identical for any worker count.
func Execute(r Runner, sp *Spec) (*ResultSet, error) {
	return ExecuteStreamCtx(context.Background(), r, sp, nil)
}

// ExecuteCtx is Execute bounded by ctx: once ctx is done the sweep
// returns ctx's error promptly, cells not yet started are never
// simulated, and cells already running finish into the runner's cache.
func ExecuteCtx(ctx context.Context, r Runner, sp *Spec) (*ResultSet, error) {
	return ExecuteStreamCtx(ctx, r, sp, nil)
}

// ExecuteStream is Execute with a streaming hook: when emit is non-nil it
// receives each reduced Row in fixed grid order (workload-major) as soon
// as the row's simulation completes, before the full set is assembled —
// the smtsimd daemon uses it to stream NDJSON while later cells are still
// simulating. The row order, and therefore any serialization of the
// stream, is identical for any worker count. A non-nil error from emit
// aborts the sweep.
func ExecuteStream(r Runner, sp *Spec, emit func(Row) error) (*ResultSet, error) {
	return ExecuteStreamCtx(context.Background(), r, sp, emit)
}

// ExecuteStreamCtx is ExecuteStream bounded by ctx (see ExecuteCtx for
// the cancellation contract). Cancellation mid-sweep aborts collection
// with ctx's error; rows already emitted stand.
func ExecuteStreamCtx(ctx context.Context, r Runner, sp *Spec, emit func(Row) error) (*ResultSet, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sp.Name, err)
	}
	ws, err := sp.Workloads.Select()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sp.Name, err)
	}
	combos, err := sp.Combos(r.BaseConfig())
	if err != nil {
		return nil, err
	}
	mets := make([]metric, 0, len(sp.metrics()))
	needRef := false
	for _, name := range sp.metrics() {
		m, _ := metricByName(name) // Validate vetted the names
		mets = append(mets, m)
		needRef = needRef || m.needsReference
	}

	// Dispatch the whole grid (plus references, when a metric reads them)
	// before collecting anything, so the pool stays saturated. Every cell
	// is registered under the sweep's context: whatever cancellation
	// leaves unstarted is never simulated. A BatchRunner receives each
	// workload's configuration row whole, letting it execute cells that
	// share trace identity in one pass; collection order (and therefore
	// every output byte) is the same either way.
	br, batching := r.(BatchRunner)
	var cfgs []core.Config
	if batching {
		cfgs = make([]core.Config, len(combos))
		for ci, combo := range combos {
			cfgs[ci] = combo.Config
		}
	}
	calls := make([][]*simcache.Call[*core.Result], len(ws))
	for wi, w := range ws {
		if batching {
			calls[wi] = br.StartRunBatchCtx(ctx, w, cfgs)
			if needRef {
				for _, b := range w.Benchmarks {
					br.StartReferenceBatchCtx(ctx, b, cfgs)
				}
			}
			continue
		}
		calls[wi] = make([]*simcache.Call[*core.Result], len(combos))
		for ci, combo := range combos {
			calls[wi][ci] = r.StartRunCtx(ctx, w, combo.Config)
		}
		if needRef {
			for _, combo := range combos {
				for _, b := range w.Benchmarks {
					r.StartReferenceCtx(ctx, b, combo.Config)
				}
			}
		}
	}

	rs := &ResultSet{
		Name:        sp.Name,
		Description: sp.Description,
		Axes:        sp.AxisNames(),
		Metrics:     sp.metrics(),
		Workloads:   ws,
		Combos:      combos,
		raw:         make([][]*core.Result, len(ws)),
	}
	for wi, w := range ws {
		rs.raw[wi] = make([]*core.Result, len(combos))
		for ci, combo := range combos {
			res, err := calls[wi][ci].WaitCtx(ctx)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: %w", sp.Name, err)
			}
			rs.raw[wi][ci] = res
			row := Row{
				Workload:    w.Name(),
				Labels:      combo.Labels,
				Fingerprint: combo.Fingerprint,
				Values:      make([]float64, len(mets)),
				Truncated:   res.Truncated,
			}
			for mi, m := range mets {
				v, err := m.compute(ctx, r, w, combo.Config, res)
				if err != nil {
					return nil, fmt.Errorf("scenario %s: metric %s: %w", sp.Name, m.name, err)
				}
				row.Values[mi] = v
			}
			if emit != nil {
				if err := emit(row); err != nil {
					return nil, fmt.Errorf("scenario %s: emit: %w", sp.Name, err)
				}
			}
			rs.Rows = append(rs.Rows, row)
		}
	}
	return rs, nil
}

// Dataset flattens the result set for the report emitters: one column for
// the workload, one per axis, one per metric, then the truncation flag
// and the configuration fingerprint.
func (rs *ResultSet) Dataset() *report.Dataset {
	cols := append([]string{"workload"}, rs.Axes...)
	cols = append(cols, rs.Metrics...)
	cols = append(cols, "truncated", "config")
	d := report.NewDataset(rs.Name, cols...)
	d.Description = rs.Description
	for _, row := range rs.Rows {
		cells := make([]any, 0, len(cols))
		cells = append(cells, row.Workload)
		for _, l := range row.Labels {
			cells = append(cells, l)
		}
		for _, v := range row.Values {
			cells = append(cells, v)
		}
		cells = append(cells, row.Truncated, row.Fingerprint)
		d.AddRow(cells...)
	}
	return d
}

// String renders the result set as an aligned text table.
func (rs *ResultSet) String() string { return rs.Dataset().String() }

// WriteJSON emits the result set as one JSON document.
func (rs *ResultSet) WriteJSON(w io.Writer) error { return rs.Dataset().WriteJSON(w) }

// WriteCSV emits the result set as CSV.
func (rs *ResultSet) WriteCSV(w io.Writer) error { return rs.Dataset().WriteCSV(w) }

// Emit writes the result set in the named format ("table", "json",
// "csv", "ndjson"; empty falls back to the spec default resolved by the
// caller).
func (rs *ResultSet) Emit(w io.Writer, format string) error {
	switch format {
	case "", "table":
		_, err := io.WriteString(w, rs.String())
		return err
	case "json":
		return rs.WriteJSON(w)
	case "csv":
		return rs.WriteCSV(w)
	case "ndjson":
		return rs.WriteNDJSON(w)
	}
	return fmt.Errorf("scenario: unknown format %q (valid: table, json, csv, ndjson)", format)
}
