// Package isa defines the synthetic instruction set executed by the SMT
// simulator.
//
// The paper's experiments run Alpha AXP-21264 binaries; this reproduction is
// trace-driven, so instead of encoding real Alpha instructions, the ISA
// captures exactly the attributes the timing and runahead machinery consume:
// operation class, register operands (32 INT + 32 FP architectural registers
// per thread, like Alpha), memory address for loads/stores, and branch
// outcome/target. Values are never computed — the simulator models timing
// and validity (the runahead INV machinery), which is all the paper's
// results depend on.
package isa

import "fmt"

// Op is an operation class. Classes map one-to-one onto the simulator's
// structural resources: the issue queue used, the functional unit pool, and
// the execution latency.
type Op uint8

const (
	// OpNop does nothing; it occupies fetch/decode/ROB bandwidth only.
	OpNop Op = iota
	// OpIntAlu is a single-cycle integer operation (add, logical, shift,
	// compare). The bulk of every instruction stream.
	OpIntAlu
	// OpIntMul is a multi-cycle integer multiply.
	OpIntMul
	// OpFpAlu is a pipelined floating-point add/compare/convert.
	OpFpAlu
	// OpFpMul is a pipelined floating-point multiply.
	OpFpMul
	// OpFpDiv is a long-latency, unpipelined floating-point divide.
	OpFpDiv
	// OpLoad is an integer load (address = base register + offset).
	OpLoad
	// OpStore is an integer store.
	OpStore
	// OpFpLoad is a floating-point load. Its address computation happens in
	// the integer pipeline, which is why runahead mode can still issue it as
	// a prefetch after FP invalidation (paper §3.3).
	OpFpLoad
	// OpFpStore is a floating-point store.
	OpFpStore
	// OpBranch is a conditional branch resolved at execute.
	OpBranch
	// OpAcquire, OpRelease and OpBlock are the thread-synchronization
	// primitives the paper's §3.3 discusses: in runahead mode they are
	// ignored so that a speculative thread can never corrupt cross-thread
	// state. The multiprogrammed workloads never generate them; they exist
	// for the synchronization unit tests and for parallel-program traces.
	OpAcquire
	OpRelease
	OpBlock

	numOps
)

// NumOps is the number of defined operation classes.
const NumOps = int(numOps)

var opNames = [...]string{
	OpNop:     "nop",
	OpIntAlu:  "int_alu",
	OpIntMul:  "int_mul",
	OpFpAlu:   "fp_alu",
	OpFpMul:   "fp_mul",
	OpFpDiv:   "fp_div",
	OpLoad:    "load",
	OpStore:   "store",
	OpFpLoad:  "fp_load",
	OpFpStore: "fp_store",
	OpBranch:  "branch",
	OpAcquire: "acquire",
	OpRelease: "release",
	OpBlock:   "block",
}

// String returns the mnemonic for the op class.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool {
	switch o {
	case OpLoad, OpStore, OpFpLoad, OpFpStore:
		return true
	}
	return false
}

// IsLoad reports whether the op reads data memory.
func (o Op) IsLoad() bool { return o == OpLoad || o == OpFpLoad }

// IsStore reports whether the op writes data memory.
func (o Op) IsStore() bool { return o == OpStore || o == OpFpStore }

// IsFP reports whether the op consumes floating-point resources (FP issue
// queue, FP functional units, FP registers). Note that FP loads and stores
// are *not* FP in this sense: their address generation runs on the integer
// side, mirroring the paper's observation that a runahead thread can skip
// all FP computation yet still prefetch through FP memory operations.
func (o Op) IsFP() bool {
	switch o {
	case OpFpAlu, OpFpMul, OpFpDiv:
		return true
	}
	return false
}

// IsBranch reports whether the op is a control-flow instruction.
func (o Op) IsBranch() bool { return o == OpBranch }

// IsSync reports whether the op is a thread-synchronization primitive.
func (o Op) IsSync() bool {
	switch o {
	case OpAcquire, OpRelease, OpBlock:
		return true
	}
	return false
}

// Architectural register file geometry, matching Alpha: 32 integer and 32
// floating-point registers per thread context.
const (
	NumIntArchRegs = 32
	NumFPArchRegs  = 32
	// NumArchRegs is the total architectural register count per thread.
	NumArchRegs = NumIntArchRegs + NumFPArchRegs
)

// Reg identifies an architectural register within a thread context.
// Values 0..31 name integer registers; 32..63 name FP registers;
// RegNone marks an absent operand.
type Reg int16

// RegNone marks "no register" for an absent source or destination operand.
const RegNone Reg = -1

// IsInt reports whether r names an integer architectural register.
func (r Reg) IsInt() bool { return r >= 0 && r < NumIntArchRegs }

// IsFP reports whether r names a floating-point architectural register.
func (r Reg) IsFP() bool { return r >= NumIntArchRegs && r < NumArchRegs }

// Valid reports whether r names any architectural register.
func (r Reg) Valid() bool { return r >= 0 && r < NumArchRegs }

// String renders the register in Alpha-ish notation (r0..r31, f0..f31).
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsInt():
		return fmt.Sprintf("r%d", int(r))
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-NumIntArchRegs)
	}
	return fmt.Sprintf("reg(%d)", int(r))
}

// IntReg returns the Reg naming integer register n.
func IntReg(n int) Reg { return Reg(n) }

// FPReg returns the Reg naming floating-point register n.
func FPReg(n int) Reg { return Reg(n + NumIntArchRegs) }

// Inst is one instruction of a thread's trace. The Seq field is the
// position in the trace (a per-thread program-order index); everything the
// pipeline needs to model timing is precomputed by the trace generator.
type Inst struct {
	// Seq is the program-order index of this instruction in its trace.
	Seq uint64
	// PC is the instruction's address, used by the instruction cache and
	// the branch predictor.
	PC uint64
	// Op is the operation class.
	Op Op
	// Dst is the destination architectural register, or RegNone.
	Dst Reg
	// Src1 and Src2 are source architectural registers, or RegNone.
	Src1, Src2 Reg
	// Addr is the effective address for memory operations.
	Addr uint64
	// Taken is the branch outcome for OpBranch.
	Taken bool
	// Target is the branch target for OpBranch when taken.
	Target uint64
	// AddrDependsOnLoad marks a memory instruction whose effective address
	// was produced by an earlier load (pointer chasing). When the producing
	// load is INV in runahead mode the address is unknown, so no prefetch
	// can be issued. The trace generator encodes the dependence through
	// Src1 as well; this flag exists so statistics can classify MLP without
	// re-deriving the dependence chain.
	AddrDependsOnLoad bool
}

// HasDst reports whether the instruction writes a register.
func (in *Inst) HasDst() bool { return in.Dst != RegNone }

// String renders a compact human-readable form, for debug traces.
func (in *Inst) String() string {
	switch {
	case in.Op.IsMem():
		return fmt.Sprintf("%06d %s %s<-[%#x](%s)", in.Seq, in.Op, in.Dst, in.Addr, in.Src1)
	case in.Op.IsBranch():
		dir := "nt"
		if in.Taken {
			dir = "t"
		}
		return fmt.Sprintf("%06d %s %s ->%#x(%s)", in.Seq, in.Op, dir, in.Target, in.Src1)
	default:
		return fmt.Sprintf("%06d %s %s<-(%s,%s)", in.Seq, in.Op, in.Dst, in.Src1, in.Src2)
	}
}
