package isa

import (
	"testing"
	"testing/quick"
)

func TestOpClassPredicatesDisjoint(t *testing.T) {
	// Every op must belong to a coherent set of classes; in particular an op
	// cannot be both FP-compute and memory, or both branch and memory.
	for o := Op(0); o < Op(NumOps); o++ {
		if o.IsFP() && o.IsMem() {
			t.Errorf("%v is both FP and Mem", o)
		}
		if o.IsBranch() && o.IsMem() {
			t.Errorf("%v is both Branch and Mem", o)
		}
		if o.IsSync() && (o.IsMem() || o.IsFP() || o.IsBranch()) {
			t.Errorf("%v is Sync and something else", o)
		}
		if o.IsLoad() && o.IsStore() {
			t.Errorf("%v is both Load and Store", o)
		}
		if (o.IsLoad() || o.IsStore()) && !o.IsMem() {
			t.Errorf("%v is Load/Store but not Mem", o)
		}
	}
}

func TestOpMemClassification(t *testing.T) {
	cases := []struct {
		op          Op
		mem, ld, st bool
	}{
		{OpLoad, true, true, false},
		{OpStore, true, false, true},
		{OpFpLoad, true, true, false},
		{OpFpStore, true, false, true},
		{OpIntAlu, false, false, false},
		{OpFpAlu, false, false, false},
		{OpBranch, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsMem() != c.mem || c.op.IsLoad() != c.ld || c.op.IsStore() != c.st {
			t.Errorf("%v: mem/load/store = %v/%v/%v, want %v/%v/%v",
				c.op, c.op.IsMem(), c.op.IsLoad(), c.op.IsStore(), c.mem, c.ld, c.st)
		}
	}
}

func TestFPLoadsAreNotFPResources(t *testing.T) {
	// Paper §3.3: FP loads/stores compute addresses on the integer side, so
	// the runahead FP-invalidation must NOT treat them as FP ops.
	if OpFpLoad.IsFP() || OpFpStore.IsFP() {
		t.Fatal("FP memory ops must not be classified as FP-resource ops")
	}
	if !OpFpAlu.IsFP() || !OpFpMul.IsFP() || !OpFpDiv.IsFP() {
		t.Fatal("FP arithmetic must be classified as FP-resource ops")
	}
}

func TestOpStrings(t *testing.T) {
	seen := map[string]Op{}
	for o := Op(0); o < Op(NumOps); o++ {
		s := o.String()
		if s == "" {
			t.Fatalf("op %d has empty name", o)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("ops %v and %v share name %q", prev, o, s)
		}
		seen[s] = o
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Fatalf("out-of-range op name = %q", got)
	}
}

func TestRegClassification(t *testing.T) {
	for n := 0; n < NumIntArchRegs; n++ {
		r := IntReg(n)
		if !r.IsInt() || r.IsFP() || !r.Valid() {
			t.Fatalf("IntReg(%d) misclassified", n)
		}
	}
	for n := 0; n < NumFPArchRegs; n++ {
		r := FPReg(n)
		if r.IsInt() || !r.IsFP() || !r.Valid() {
			t.Fatalf("FPReg(%d) misclassified", n)
		}
	}
	if RegNone.Valid() || RegNone.IsInt() || RegNone.IsFP() {
		t.Fatal("RegNone misclassified")
	}
	if Reg(NumArchRegs).Valid() {
		t.Fatal("out-of-range reg claims validity")
	}
}

func TestRegStrings(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{IntReg(0), "r0"},
		{IntReg(31), "r31"},
		{FPReg(0), "f0"},
		{FPReg(31), "f31"},
		{RegNone, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		i := int(n % NumIntArchRegs)
		return IntReg(i).IsInt() && FPReg(i).IsFP() && IntReg(i) != FPReg(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstHasDst(t *testing.T) {
	in := Inst{Dst: RegNone}
	if in.HasDst() {
		t.Fatal("RegNone dst reported as present")
	}
	in.Dst = IntReg(3)
	if !in.HasDst() {
		t.Fatal("valid dst reported as absent")
	}
}

func TestInstStringForms(t *testing.T) {
	mem := Inst{Seq: 1, Op: OpLoad, Dst: IntReg(1), Src1: IntReg(2), Addr: 0x1000}
	br := Inst{Seq: 2, Op: OpBranch, Taken: true, Target: 0x2000, Src1: IntReg(3)}
	alu := Inst{Seq: 3, Op: OpIntAlu, Dst: IntReg(4), Src1: IntReg(5), Src2: IntReg(6)}
	for _, in := range []Inst{mem, br, alu} {
		if in.String() == "" {
			t.Fatalf("empty String for %v op", in.Op)
		}
	}
}
