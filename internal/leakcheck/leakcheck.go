// Package leakcheck is the dynamic complement to the gorolife
// analyzer: it fails a test when goroutines the test started are still
// alive at its end. The static check proves each go statement has a
// completion signal; this package proves the signal actually fired —
// a worker that signals but is never waited on passes gorolife and
// fails here.
//
// Usage, at the top of any test that exercises concurrent machinery:
//
//	defer leakcheck.Check(t)
//
// and, per package, a baseline gate over the whole suite:
//
//	func TestMain(m *testing.M) { os.Exit(leakcheck.Main(m)) }
//
// Check snapshots the goroutine stacks (runtime.Stack, the same dump a
// crash prints), filters the runtime's and the testing framework's own
// goroutines, and retries with backoff before declaring a leak, since
// a goroutine legitimately reaped by a just-signaled WaitGroup may
// need a scheduler beat to unwind. Main diffs against the count
// captured before any test ran, so cross-test accumulation — each test
// leaking one goroutine into package scope — is caught even where
// individual tests forgot their Check.
//
// The implementation is a dependency-free reduction of the approach in
// go.uber.org/goleak, which the container cannot fetch.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB Check needs; taking the interface
// keeps this package importable outside _test files and lets the
// package's own tests assert on a recording fake.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// Runner is the subset of *testing.M Main needs.
type Runner interface {
	Run() int
}

// maxRetry bounds how long Check waits for goroutines to unwind before
// declaring a leak.
const maxRetry = 2 * time.Second

// Check fails t when goroutines beyond the pre-existing baseline of
// runtime/testing infrastructure are still running. Call it via defer
// at the start of the test so it runs after the test body finished.
func Check(t TB) {
	t.Helper()
	leaked := settle(nil)
	for _, g := range leaked {
		t.Errorf("leaked goroutine [%s]:\n%s", g.state, g.stack)
	}
}

// Main wraps a package test run with a whole-suite leak gate: it
// snapshots the live goroutines before any test runs, executes the
// suite, and turns a passing exit code into a failure if extra
// goroutines survive the run. Use from TestMain as
// os.Exit(leakcheck.Main(m)).
func Main(m Runner) int {
	baseline := map[int]bool{}
	for _, g := range snapshot() {
		baseline[g.id] = true
	}
	code := m.Run()
	if code != 0 {
		return code
	}
	leaked := settle(baseline)
	for _, g := range leaked {
		fmt.Printf("leakcheck: leaked goroutine after full test run [%s]:\n%s\n", g.state, g.stack)
	}
	if len(leaked) > 0 {
		return 1
	}
	return code
}

// settle retries the leak scan with exponential backoff until it comes
// back empty or the retry budget is spent, then returns the survivors.
// baseline goroutine ids (may be nil) are never reported.
func settle(baseline map[int]bool) []goroutine {
	var leaked []goroutine
	for delay, waited := time.Millisecond, time.Duration(0); ; {
		leaked = leaked[:0]
		for _, g := range snapshot() {
			if !baseline[g.id] && !benign(g) {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) == 0 || waited >= maxRetry {
			return leaked
		}
		time.Sleep(delay)
		waited += delay
		if delay *= 2; delay > 100*time.Millisecond {
			delay = 100 * time.Millisecond
		}
	}
}

// A goroutine is one parsed block of a runtime.Stack(all=true) dump.
type goroutine struct {
	id      int
	state   string
	top     string // the innermost function, e.g. "repro/internal/experiments.(*Session).work"
	created string // the "created by" function, "" for main/runtime goroutines
	stack   string // the block's full text, for the failure message
}

// snapshot parses the current all-goroutine stack dump, excluding the
// calling goroutine (the test itself, or TestMain).
func snapshot() []goroutine {
	all := stackDump(true)
	self := stackDump(false)
	selfID := parseHeader(firstLine(self))

	var out []goroutine
	for _, block := range strings.Split(strings.TrimSpace(all), "\n\n") {
		g, ok := parseBlock(block)
		if ok && g.id != selfID {
			out = append(out, g)
		}
	}
	return out
}

// stackDump captures runtime.Stack, growing the buffer until the dump
// fits.
func stackDump(all bool) string {
	buf := make([]byte, 1<<16)
	for {
		n := runtime.Stack(buf, all)
		if n < len(buf) {
			return string(buf[:n])
		}
		buf = make([]byte, len(buf)*2)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// parseHeader extracts the goroutine id from a "goroutine N [state]:"
// line, or -1.
func parseHeader(line string) int {
	rest, ok := strings.CutPrefix(line, "goroutine ")
	if !ok {
		return -1
	}
	id := 0
	for i := 0; i < len(rest) && rest[i] >= '0' && rest[i] <= '9'; i++ {
		id = id*10 + int(rest[i]-'0')
	}
	if id == 0 {
		return -1
	}
	return id
}

// parseBlock parses one goroutine's section of the dump.
func parseBlock(block string) (goroutine, bool) {
	lines := strings.Split(block, "\n")
	if len(lines) < 2 {
		return goroutine{}, false
	}
	g := goroutine{stack: block}
	g.id = parseHeader(lines[0])
	if g.id < 0 {
		return goroutine{}, false
	}
	if open := strings.IndexByte(lines[0], '['); open >= 0 {
		if end := strings.IndexByte(lines[0][open:], ']'); end > 0 {
			g.state = lines[0][open+1 : open+end]
		}
	}
	// Function lines alternate with "\t<file>:<line>" location lines; the
	// first function line is the innermost frame.
	g.top = funcName(lines[1])
	for _, l := range lines {
		if rest, ok := strings.CutPrefix(l, "created by "); ok {
			// "created by pkg.Func in goroutine N" — keep the function.
			g.created, _, _ = strings.Cut(rest, " in goroutine")
			break
		}
	}
	return g, true
}

// funcName strips the argument list from a traceback function line:
// "repro/internal/x.worker(0x...)" -> "repro/internal/x.worker".
func funcName(line string) string {
	if i := strings.LastIndexByte(line, '('); i > 0 {
		return line[:i]
	}
	return line
}

// benign reports whether a goroutine belongs to the runtime or test
// infrastructure rather than code under test: the testing framework's
// own workers, runtime service goroutines (GC, finalizers, signal
// handling), and profiling support.
func benign(g goroutine) bool {
	for _, prefix := range []string{
		"testing.",
		"runtime.",
		"runtime/",
		"os/signal.",
	} {
		if strings.HasPrefix(g.top, prefix) || strings.HasPrefix(g.created, prefix) {
			return true
		}
	}
	return false
}
