package leakcheck

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
)

// recorder is a fake TB capturing Check's failures.
type recorder struct {
	errs []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
}

// TestCheckCatchesLeak pins the detector's teeth: a goroutine parked
// on a channel nobody closed yet must be reported, with its stack
// naming this package; after release it must drain cleanly.
func TestCheckCatchesLeak(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var done sync.WaitGroup
	done.Add(1)
	go func() {
		defer done.Done()
		close(started)
		<-release
	}()
	<-started

	rec := &recorder{}
	Check(rec)
	if len(rec.errs) == 0 {
		t.Fatal("Check missed a goroutine parked on a channel")
	}
	if !strings.Contains(rec.errs[0], "repro/internal/leakcheck") {
		t.Errorf("leak report should name the leaking frame, got:\n%s", rec.errs[0])
	}

	close(release)
	done.Wait()
	rec = &recorder{}
	Check(rec)
	if len(rec.errs) != 0 {
		t.Errorf("Check still reports after the goroutine was reaped:\n%s", strings.Join(rec.errs, "\n"))
	}
}

// TestCheckWaitsForUnwind: a goroutine that has signaled and is about
// to exit must not be reported — the backoff loop gives it time.
func TestCheckWaitsForUnwind(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
	// The goroutines have signaled; some may still be unwinding.
	rec := &recorder{}
	Check(rec)
	if len(rec.errs) != 0 {
		t.Errorf("Check flagged reaped goroutines:\n%s", strings.Join(rec.errs, "\n"))
	}
}

func TestParseBlock(t *testing.T) {
	block := "goroutine 42 [chan receive]:\n" +
		"repro/internal/leakcheck.worker(0xc000010101)\n" +
		"\t/root/repo/internal/leakcheck/x.go:10 +0x25\n" +
		"created by repro/internal/leakcheck.Start in goroutine 1\n" +
		"\t/root/repo/internal/leakcheck/x.go:20 +0x58"
	g, ok := parseBlock(block)
	if !ok {
		t.Fatal("parseBlock rejected a well-formed block")
	}
	if g.id != 42 || g.state != "chan receive" {
		t.Errorf("header parse: id=%d state=%q", g.id, g.state)
	}
	if g.top != "repro/internal/leakcheck.worker" {
		t.Errorf("top frame = %q", g.top)
	}
	if g.created != "repro/internal/leakcheck.Start" {
		t.Errorf("created by = %q", g.created)
	}
}

func TestBenign(t *testing.T) {
	cases := []struct {
		top, created string
		want         bool
	}{
		{"testing.(*T).Run", "", true},
		{"runtime.gcBgMarkWorker", "runtime.gcBgMarkStartWorkers", true},
		{"os/signal.signal_recv", "os/signal.Notify.func1.1", true},
		{"repro/internal/experiments.(*Session).work", "repro/internal/experiments.(*Session).dispatch", false},
		{"time.Sleep", "repro/internal/foo.Start", false},
	}
	for _, c := range cases {
		got := benign(goroutine{top: c.top, created: c.created})
		if got != c.want {
			t.Errorf("benign(top=%q created=%q) = %v, want %v", c.top, c.created, got, c.want)
		}
	}
}

// TestMain wires the package's own suite through the whole-run gate,
// so leakcheck is exercised on itself.
func TestMain(m *testing.M) {
	os.Exit(Main(m))
}
