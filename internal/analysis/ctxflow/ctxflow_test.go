package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/lintest"
)

// TestLibraryPackage runs ctxflow over a module-internal package:
// non-Ctx calls with a Ctx sibling (function and method) and orphan
// Background() are flagged; the wrapper bodies and a justified
// directive pass.
func TestLibraryPackage(t *testing.T) {
	lintest.Run(t, ctxflow.Analyzer, "testdata/pkg", "repro/internal/ctxtest")
}

// TestMainPackageMayUseBackground checks the package-main exemption
// for the root context.
func TestMainPackageMayUseBackground(t *testing.T) {
	lintest.Run(t, ctxflow.Analyzer, "testdata/mainpkg", "repro/cmd/ctxtool")
}
