// Package ctxtest exercises both ctxflow rules in one module-internal
// package: non-Ctx calls where a Ctx sibling exists, and orphan
// context.Background() outside main and the sanctioned wrappers.
package ctxtest

import "context"

// StepCtx is the real API; Step is its convenience wrapper. Because
// Step has a Ctx sibling, its body (including the Background bridge)
// is exempt.
func Step() {
	StepCtx(context.Background())
}

// StepCtx accepts its caller's context.
func StepCtx(ctx context.Context) { _ = ctx }

// use holds a context and drops it anyway: rule 1.
func use(ctx context.Context) {
	_ = ctx
	Step() // want "call to Step where StepCtx exists"
}

// threaded is the correct shape.
func threaded(ctx context.Context) {
	StepCtx(ctx)
}

// orphan manufactures an uncancellable context outside main and
// outside any wrapper: rule 2.
func orphan() {
	StepCtx(context.Background()) // want "context.Background"
}

// Store demonstrates the method-sibling lookup.
type Store struct{}

// Load is the convenience method; LoadCtx is the real API.
func (s *Store) Load() { s.LoadCtx(context.Background()) }

// LoadCtx accepts its caller's context.
func (s *Store) LoadCtx(ctx context.Context) { _ = ctx }

// useStore drops its context on a method call: rule 1 through a
// receiver.
func useStore(ctx context.Context, s *Store) {
	_ = ctx
	s.Load() // want "call to Load where LoadCtx exists"
}

// detached carries a directive: work that must complete even if the
// requester dies is the one sanctioned reason to drop a context.
func detached() {
	//lint:ctxflow the spawned work must outlive its requester by design
	Step() // want-suppressed "call to Step where StepCtx exists"
}
