// Command mainpkg shows the package-main exemption: the root context
// is born here (from signal handling in the real binaries), so
// context.Background() is sanctioned.
package main

import "context"

func main() {
	run(context.Background())
}

func run(ctx context.Context) { _ = ctx }
