// Package ctxflow enforces the cancellation contract PR 4 established:
// context must thread through every execution layer. Two rules:
//
//  1. Calling a function or method F when a sibling F+"Ctx" exists in
//     this module drops the caller's context on the floor — the exact
//     bug class that used to leak goroutines and simulate abandoned
//     cells. The one sanctioned caller is a convenience wrapper that
//     itself has a Ctx sibling (StartRun delegating to StartRunCtx may
//     call other non-Ctx variants: its own Ctx twin is the real API).
//
//  2. context.Background() / context.TODO() manufacture a context
//     nobody can cancel. Outside package main (where the root context
//     is born from signals) and outside the sanctioned non-Ctx
//     convenience wrappers, a function wanting a context must accept
//     one from its caller.
//
// Test files are never loaded by the lint driver, so tests keep their
// Background contexts. Sites where dropping the context is the designed
// behavior (in-flight work that must complete into a shared cache
// regardless of requester death) carry a justified //lint:ctxflow
// directive.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/lint"
)

// ModulePrefix scopes sibling lookup to this module's own API.
const ModulePrefix = "repro"

// Analyzer is the ctxflow check.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc: "flag calls to a non-Ctx variant when a ...Ctx sibling exists, and " +
		"context.Background()/TODO() outside main and the non-Ctx convenience wrappers",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, _ := decl.(*ast.FuncDecl)
			var exempt bool
			if fd != nil {
				// A function that has its own Ctx sibling IS the non-Ctx
				// convenience surface: everything inside it (closures
				// included) is the sanctioned ctx-free bridge.
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					exempt = hasCtxSibling(obj)
				}
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				check(pass, call, exempt)
				return true
			})
		}
	}
	return nil
}

// check applies both rules to one call expression.
func check(pass *lint.Pass, call *ast.CallExpr, inWrapper bool) {
	fn := lint.FuncObj(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "context" && fn.Type().(*types.Signature).Recv() == nil &&
		(fn.Name() == "Background" || fn.Name() == "TODO") {
		if pass.Pkg.Name() == "main" || inWrapper {
			return
		}
		pass.Reportf(call.Pos(),
			"context.%s() outside main: accept a ctx from the caller so cancellation threads through (or justify with //lint:ctxflow)",
			fn.Name())
		return
	}
	if inWrapper {
		return
	}
	path := fn.Pkg().Path()
	if path != ModulePrefix && !strings.HasPrefix(path, ModulePrefix+"/") {
		return
	}
	if strings.HasSuffix(fn.Name(), "Ctx") {
		return
	}
	if !hasCtxSibling(fn) {
		return
	}
	pass.Reportf(call.Pos(),
		"call to %s where %sCtx exists: thread the caller's context (or justify with //lint:ctxflow)",
		fn.Name(), fn.Name())
}

// hasCtxSibling reports whether fn's package (or receiver type) also
// declares fn's name + "Ctx".
func hasCtxSibling(fn *types.Func) bool {
	name := fn.Name() + "Ctx"
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		obj := fn.Pkg().Scope().Lookup(name)
		sibling, ok := obj.(*types.Func)
		return ok && sibling.Type().(*types.Signature).Recv() == nil
	}
	t := recv.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == name {
				return true
			}
		}
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	named = named.Origin()
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	return false
}
