// Seeded lock-order shapes, type-checked under an in-scope import
// path. A and B form an unordered (cyclic) pair — one edge direct, one
// through a call — C and D form a justified, suppressed cycle, and E/F
// are consistently ordered and must stay silent.
package ordertest

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// ab acquires B under A: the A -> B edge.
func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "A.mu is held while acquiring .*B.mu, closing a lock-order cycle"
	b.n++
	b.mu.Unlock()
}

// ba acquires A under B through a call: the B -> A edge closing the
// cycle, reported at the call site with the callee named.
func ba(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bumpA(a) // want "B.mu is held while acquiring .*A.mu \(via call to .*bumpA\), closing a lock-order cycle"
}

func bumpA(a *A) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

type C struct {
	mu sync.Mutex
	n  int
}

type D struct {
	mu sync.Mutex
	n  int
}

// cd and dc form a cycle on purpose; both edges carry justified
// directives, so the cycle is fully suppressed.
func cd(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:lockorder startup-only path, provably never concurrent with dc
	d.mu.Lock() // want-suppressed "C.mu is held while acquiring .*D.mu"
	d.n++
	d.mu.Unlock()
}

func dc(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	//lint:lockorder shutdown-only path, provably never concurrent with cd
	c.mu.Lock() // want-suppressed "D.mu is held while acquiring .*C.mu"
	c.n++
	c.mu.Unlock()
}

type E struct {
	mu sync.Mutex
	n  int
}

type F struct {
	mu sync.Mutex
	n  int
}

// ef and ef2 agree on the E-before-F order: an edge, but no cycle.
func ef(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	f.n++
	f.mu.Unlock()
}

func ef2(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	bumpF(f)
}

func bumpF(f *F) {
	f.mu.Lock()
	f.n++
	f.mu.Unlock()
}

// nested lock coupling on one class is out of scope (instances are
// indistinguishable): no self-edge, no report.
func couple(x, y *E) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	y.n = x.n
	y.mu.Unlock()
}
