package lockorder_test

import (
	"testing"

	"repro/internal/analysis/lintest"
	"repro/internal/analysis/lockorder"
)

// TestLockOrder runs the analyzer over the seeded shapes, type-checked
// under an in-scope import path: an A/B cycle (one edge direct, one
// via a call) must be reported on both edges, a justified C/D cycle
// must be fully suppressed, and consistently ordered E/F pairs plus
// same-class lock coupling must stay silent.
func TestLockOrder(t *testing.T) {
	lintest.Run(t, lockorder.Analyzer, "testdata/pkg", "repro/internal/simcache")
}
