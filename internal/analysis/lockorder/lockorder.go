// Package lockorder enforces a consistent mutex acquisition order
// across the repo's concurrent packages. It is the suite's only
// inter-procedural analyzer: each Run pass records, per function, which
// lock classes the function acquires and which functions it calls with
// locks held; the End hook closes the call graph into a may-acquire
// relation, builds the program-wide acquisition graph over lock
// *classes* (declaring package + type + field, shared by every instance
// — see internal/analysis/lockset), and reports every edge that sits on
// a cycle. Two goroutines that take the same pair of locks in opposite
// orders deadlock the first time their critical sections overlap;
// acyclic acquisition order makes that impossible by construction.
//
// An edge A -> B means "some path acquires class B while an instance of
// class A is held" — either directly (B's Lock appears under A's), or
// through a call chain (a function called under A's lock may acquire B,
// transitively). Reports anchor at the acquisition or call site closing
// the cycle, naming the callee for indirect edges.
//
// Deliberate simplifications: the graph is per lock class, so two
// instances of one class are indistinguishable (self-edges are not
// reported — ordering instances of one type needs runtime identity);
// function literals are not attributed to their creator (a closure's
// locks are its own); calls through interfaces or func values are
// invisible. Each narrows coverage, none produces false cycles.
//
// A justified //lint:lockorder directive on an edge's reported line
// suppresses that edge; a cycle is silenced only when every edge on it
// is either fixed or justified.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/lint"
	"repro/internal/analysis/lockset"
)

// TargetPackages are the concurrent packages whose lock classes
// participate in the program-wide acquisition order.
var TargetPackages = []string{
	"repro/internal/simcache",
	"repro/internal/sched",
	"repro/internal/resultstore",
	"repro/internal/tracestore",
	"repro/internal/experiments",
	"repro/cmd/smtsimd",
}

// Analyzer is the lockorder check.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc: "flag cyclic mutex acquisition orders across the concurrent packages " +
		"(lock class A taken under B on one path and B under A on another deadlocks when the paths overlap)",
	Run: run,
	End: end,
}

// An acquisition is one Lock/RLock of a classed mutex with the lock
// classes held at that point.
type acquisition struct {
	class string
	held  []string
	pos   token.Pos
}

// A callsite is one static call with the lock classes held at it.
type callsite struct {
	callee string
	held   []string
	pos    token.Pos
}

// funcFacts is what one function contributes to the global graph.
type funcFacts struct {
	acquires []acquisition
	calls    []callsite
}

// state is the whole-program view accumulated in Pass.Suite.
type state struct {
	funcs map[string]*funcFacts
}

func suiteState(slot *any) *state {
	s, _ := (*slot).(*state)
	if s == nil {
		s = &state{funcs: map[string]*funcFacts{}}
		*slot = s
	}
	return s
}

func run(pass *lint.Pass) error {
	if !lint.PathIn(pass.Pkg.Path(), TargetPackages) {
		return nil
	}
	s := suiteState(pass.Suite)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			facts := collect(pass.TypesInfo, fd.Body)
			if facts != nil {
				s.funcs[funcID(fn)] = facts
			}
		}
	}
	return nil
}

// funcID names a function stably across packages and instantiations.
func funcID(fn *types.Func) string {
	return fn.Origin().FullName()
}

// collect solves the lock-state flow for one function body and records
// its classed acquisitions and its calls-under-lock. Returns nil when
// the function neither locks nor calls anything while locked.
func collect(info *types.Info, body *ast.BlockStmt) *funcFacts {
	flow := lockset.NewFlow(info)
	g := lint.NewCFG(body)
	in, _ := lint.Forward[lockset.Fact](g, flow)

	facts := &funcFacts{}
	for _, b := range g.Blocks {
		fact, ok := in[b]
		if !ok {
			continue // unreachable
		}
		fact = cloneFact(fact)
		for _, n := range b.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				// A deferred call runs at function exit, not here; deferred
				// unlocks do not change the held set mid-function either.
				continue
			}
			for _, call := range lockset.Calls(n) {
				if op, isMutex := lockset.MutexOp(info, call); isMutex && op.Path != "" {
					key := op.Kind.Key(op.Path)
					if op.Kind.Acquires() {
						if op.Class != "" {
							facts.acquires = append(facts.acquires, acquisition{
								class: op.Class,
								held:  heldClasses(flow, fact, op.Class),
								pos:   call.Pos(),
							})
						}
						if _, held := fact.Held[key]; !held {
							fact.Held[key] = lockset.Hold{Pos: call.Pos()}
						}
					} else {
						delete(fact.Held, key)
					}
					continue
				}
				if fn := lint.FuncObj(info, call); fn != nil {
					// Record the call even with no locks held: the may-acquire
					// fixpoint needs every call edge so a lock-free intermediate
					// function still propagates its callees' acquisitions.
					facts.calls = append(facts.calls, callsite{
						callee: funcID(fn),
						held:   heldClasses(flow, fact, ""),
						pos:    call.Pos(),
					})
				}
			}
		}
	}
	if len(facts.acquires) == 0 && len(facts.calls) == 0 {
		return nil
	}
	return facts
}

// heldClasses maps the held keys of a fact to their sorted, distinct
// lock classes, excluding the class being acquired (self-edges are out
// of scope — see the package doc).
func heldClasses(flow *lockset.Flow, fact lockset.Fact, acquiring string) []string {
	seen := map[string]bool{}
	for key := range fact.Held {
		cls := flow.Meta[key].Class
		if cls != "" && cls != acquiring {
			seen[cls] = true
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for cls := range seen {
		out = append(out, cls)
	}
	sort.Strings(out)
	return out
}

func cloneFact(f lockset.Fact) lockset.Fact {
	out := lockset.Fact{Held: map[string]lockset.Hold{}, Deferred: map[string]bool{}}
	for k, v := range f.Held {
		out.Held[k] = v
	}
	for k := range f.Deferred {
		out.Deferred[k] = true
	}
	return out
}

// edge is one acquisition-order constraint: to is acquired while from
// is held, at pos (via the named callee when indirect).
type edge struct {
	from, to string
	pos      token.Pos
	via      string
}

func end(pass *lint.EndPass) error {
	s := suiteState(pass.Suite)
	if len(s.funcs) == 0 {
		return nil
	}
	ids := make([]string, 0, len(s.funcs))
	for id := range s.funcs {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Close the call graph: may[f] is every class f can acquire, directly
	// or through the functions it calls (with or without locks held —
	// the callee's own callees still count).
	may := map[string]map[string]bool{}
	for _, id := range ids {
		may[id] = map[string]bool{}
		for _, a := range s.funcs[id].acquires {
			may[id][a.class] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			for _, c := range s.funcs[id].calls {
				callee, known := may[c.callee]
				if !known {
					continue
				}
				for cls := range callee {
					if !may[id][cls] {
						may[id][cls] = true
						changed = true
					}
				}
			}
		}
	}

	// Build the class graph. One representative edge per (from, to) pair,
	// keeping the earliest position for stable reports.
	edges := map[[2]string]edge{}
	addEdge := func(e edge) {
		k := [2]string{e.from, e.to}
		if old, ok := edges[k]; !ok || e.pos < old.pos {
			edges[k] = e
		}
	}
	for _, id := range ids {
		facts := s.funcs[id]
		for _, a := range facts.acquires {
			for _, h := range a.held {
				addEdge(edge{from: h, to: a.class, pos: a.pos})
			}
		}
		for _, c := range facts.calls {
			for cls := range may[c.callee] {
				for _, h := range c.held {
					if h != cls {
						addEdge(edge{from: h, to: cls, pos: c.pos, via: c.callee})
					}
				}
			}
		}
	}

	// Report every edge inside a strongly connected component: those are
	// exactly the edges on some acquisition cycle.
	cyclic := cyclicNodes(edges)
	var bad []edge
	for _, e := range edges {
		if cyclic[e.from] != 0 && cyclic[e.from] == cyclic[e.to] {
			bad = append(bad, e)
		}
	}
	sort.Slice(bad, func(i, j int) bool {
		if bad[i].from != bad[j].from {
			return bad[i].from < bad[j].from
		}
		return bad[i].to < bad[j].to
	})
	for _, e := range bad {
		if e.via != "" {
			pass.Reportf(e.pos,
				"%s is held while acquiring %s (via call to %s), closing a lock-order cycle; acquire these locks in one global order",
				e.from, e.to, e.via)
		} else {
			pass.Reportf(e.pos,
				"%s is held while acquiring %s, closing a lock-order cycle; acquire these locks in one global order",
				e.from, e.to)
		}
	}
	return nil
}

// cyclicNodes assigns every class node on a multi-node strongly
// connected component a nonzero component id (Tarjan, iterative over
// sorted nodes for determinism).
func cyclicNodes(edges map[[2]string]edge) map[string]int {
	succs := map[string][]string{}
	nodeSet := map[string]bool{}
	for k := range edges {
		succs[k[0]] = append(succs[k[0]], k[1])
		nodeSet[k[0]], nodeSet[k[1]] = true, true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		sort.Strings(succs[n])
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	comp := map[string]int{}
	next, compID := 1, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if index[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				compID++
				for _, m := range members {
					comp[m] = compID
				}
			}
		}
	}
	for _, n := range nodes {
		if index[n] == 0 {
			strongconnect(n)
		}
	}
	return comp
}
