// Control-flow graphs over go/ast function bodies.
//
// NewCFG builds a graph of basic blocks from a parsed (and, for the
// analyzers that use it, type-checked) function body, handling the full
// statement grammar: if/else chains, for and range loops, switch, type
// switch and select, labeled break/continue/goto, fallthrough, and the
// terminating builtins (panic, plus the well-known no-return exits such
// as os.Exit). The shapes deliberately mirror golang.org/x/tools/go/cfg
// — a CFG is a slice of Blocks, a Block is a Nodes list plus Succs —
// so a future port to the upstream package is a mechanical change of
// import paths, exactly like the rest of this lint framework.
//
// Deliberate simplifications, shared with the upstream package: defer
// statements appear as ordinary nodes in their block (analyzers that
// care about function exit collect them separately), expressions are
// not decomposed into sub-blocks (short-circuit && / || do not branch),
// and a call is assumed to return unless it is one of the recognized
// no-return functions.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A CFG is the control-flow graph of one function body. Blocks[0] is
// the entry block; blocks unreachable from it may still appear (dead
// code after return, bodies of labeled statements only reached by goto
// are reachable, etc.) — use Reachable to filter.
type CFG struct {
	Blocks []*Block
}

// A Block is one basic block: statements that execute sequentially,
// followed by a transfer of control to one of Succs.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Kind describes why the block exists, for debugging output.
	Kind string
	// Nodes are the block's statements (and range/switch/select anchors)
	// in execution order.
	Nodes []ast.Node
	// Succs are the possible successors. Empty for exit blocks: a
	// return, a terminating call (panic and friends), or falling off
	// the end of the function.
	Succs []*Block
}

// Returns reports whether the block is an exit ending in an explicit
// return statement.
func (b *Block) Returns() bool {
	if len(b.Succs) != 0 || len(b.Nodes) == 0 {
		return false
	}
	_, ok := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
	return ok
}

// Panics reports whether the block is an exit ending in a call to a
// terminating function (panic, os.Exit, log.Fatal, ...).
func (b *Block) Panics() bool {
	if len(b.Succs) != 0 || len(b.Nodes) == 0 {
		return false
	}
	es, ok := b.Nodes[len(b.Nodes)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && isTerminatingCall(call)
}

// Exits returns the blocks control leaves the function from: blocks
// with no successors.
func (g *CFG) Exits() []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if len(b.Succs) == 0 {
			out = append(out, b)
		}
	}
	return out
}

// String renders the graph for debugging and the cfg tests.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "block %d (%s): %d nodes ->", b.Index, b.Kind, len(b.Nodes))
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// isTerminatingCall recognizes calls that never return: the panic
// builtin and the conventional process-exit helpers. Matching is
// syntactic (by final selector name) on purpose — the CFG is built
// before (or without) type information, and a false "may return" edge
// only widens the graph, which every analyzer here treats
// conservatively.
func isTerminatingCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return false
		}
		switch base.Name + "." + fun.Sel.Name {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
	}
	return false
}

// NewCFG builds the control-flow graph of body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*labelInfo{}}
	b.current = b.newBlock("entry")
	b.stmt(body)
	return b.cfg
}

// labelInfo tracks the blocks a label's goto/break/continue resolve to.
type labelInfo struct {
	// target is the block the labeled statement begins at (goto L).
	target *Block
	// brk and cont are the break/continue targets while the labeled
	// loop/switch is being built (nil outside it).
	brk, cont *Block
	// used marks forward gotos so the target block is wired when the
	// labeled statement is eventually reached.
	pendingGoto []*Block
}

// cfgBuilder is the single-pass CFG constructor. current is the block
// under construction; nil means the point is unreachable (after a
// return) — statements still get blocks (so analyzers see their nodes)
// but no edge leads in.
type cfgBuilder struct {
	cfg     *CFG
	current *Block
	// breaks and continues are the enclosing unlabeled targets.
	breaks    []*Block
	continues []*Block
	labels    map[string]*labelInfo
	// curLabel is the label immediately preceding a for/range/switch/
	// select statement, so "break L"/"continue L" resolve to it.
	curLabel *labelInfo
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge wires from -> to (nil-safe on both ends).
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// startBlock begins a new block and makes it current, wiring an edge
// from the previous current block.
func (b *cfgBuilder) startBlock(kind string) *Block {
	blk := b.newBlock(kind)
	b.edge(b.current, blk)
	b.current = blk
	return blk
}

// add appends a node to the current block, materializing a block for
// statically unreachable code so its nodes still exist in the graph.
func (b *cfgBuilder) add(n ast.Node) {
	if b.current == nil {
		b.current = b.newBlock("unreachable")
	}
	b.current.Nodes = append(b.current.Nodes, n)
}

// stmt translates one statement into blocks and edges.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			b.stmt(inner)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.current
		join := b.newBlock("if.done")
		b.current = nil
		thenEntry := b.startBlock("if.then")
		b.edge(cond, thenEntry)
		b.stmt(s.Body)
		b.edge(b.current, join)
		if s.Else != nil {
			b.current = nil
			elseEntry := b.startBlock("if.else")
			b.edge(cond, elseEntry)
			b.stmt(s.Else)
			b.edge(b.current, join)
		} else {
			b.edge(cond, join)
		}
		b.current = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		label := b.takeLabel()
		head := b.startBlock("for.head")
		if s.Cond != nil {
			b.add(s.Cond)
		}
		done := b.newBlock("for.done")
		post := b.newBlock("for.post")
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head)
		if s.Cond != nil {
			b.edge(head, done)
		}
		b.pushLoop(label, done, post)
		b.current = nil
		bodyEntry := b.startBlock("for.body")
		b.edge(head, bodyEntry)
		b.stmt(s.Body)
		b.edge(b.current, post)
		b.popLoop(true)
		b.current = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.startBlock("range.head")
		b.add(s)
		done := b.newBlock("range.done")
		b.edge(head, done)
		b.pushLoop(label, done, head)
		b.current = nil
		bodyEntry := b.startBlock("range.body")
		b.edge(head, bodyEntry)
		b.stmt(s.Body)
		b.edge(b.current, head)
		b.popLoop(true)
		b.current = done

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.add(s)
		entry := b.current
		done := b.newBlock("select.done")
		b.pushLoop(label, done, nil)
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			b.current = nil
			caseBlk := b.startBlock("select.case")
			b.edge(entry, caseBlk)
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			for _, inner := range cc.Body {
				b.stmt(inner)
			}
			b.edge(b.current, done)
		}
		// A select with no cases blocks forever; one with cases always
		// takes some case, so no entry->done edge.
		if len(s.Body.List) == 0 {
			b.edge(entry, done)
		}
		b.popLoop(false)
		b.current = done

	case *ast.ReturnStmt:
		b.add(s)
		b.current = nil

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			b.edge(b.current, b.branchTarget(s, false))
		case token.CONTINUE:
			b.edge(b.current, b.branchTarget(s, true))
		case token.GOTO:
			li := b.label(s.Label.Name)
			if li.target != nil {
				b.edge(b.current, li.target)
			} else {
				li.pendingGoto = append(li.pendingGoto, b.current)
			}
		case token.FALLTHROUGH:
			// Handled by switchStmt clause wiring; nothing to do here.
		}
		if s.Tok != token.FALLTHROUGH {
			b.current = nil
		}

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		target := b.startBlock("label." + s.Label.Name)
		li.target = target
		for _, from := range li.pendingGoto {
			b.edge(from, target)
		}
		li.pendingGoto = nil
		b.curLabel = li
		b.stmt(s.Stmt)
		b.curLabel = nil

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminatingCall(call) {
			b.current = nil
		}

	default:
		// Assignments, declarations, defer, go, send, inc/dec, empty:
		// straight-line nodes.
		if s != nil {
			if _, ok := s.(*ast.EmptyStmt); !ok {
				b.add(s)
			}
		}
	}
}

// switchStmt handles expression and type switches, including
// fallthrough chains and the implicit no-default edge to done.
func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	var body *ast.BlockStmt
	label := (*labelInfo)(nil)
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		label = b.takeLabel()
		b.add(s)
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		label = b.takeLabel()
		b.add(s)
		body = s.Body
	}
	entry := b.current
	done := b.newBlock("switch.done")
	b.pushLoop(label, done, nil)
	hasDefault := false
	// Build each clause's entry block first so fallthrough can wire
	// clause i to clause i+1's body.
	entries := make([]*Block, len(body.List))
	for i := range body.List {
		entries[i] = b.newBlock("switch.case")
		b.edge(entry, entries[i])
	}
	for i, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.current = entries[i]
		fallsThrough := false
		for _, inner := range cc.Body {
			if br, ok := inner.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
			b.stmt(inner)
		}
		if fallsThrough && i+1 < len(entries) {
			b.edge(b.current, entries[i+1])
			b.current = nil
		}
		b.edge(b.current, done)
	}
	if !hasDefault {
		b.edge(entry, done)
	}
	b.popLoop(false)
	b.current = done
}

// takeLabel consumes the label attached to the statement being built,
// if any, so break L / continue L resolve to this construct.
func (b *cfgBuilder) takeLabel() *labelInfo {
	li := b.curLabel
	b.curLabel = nil
	return li
}

// pushLoop registers break/continue targets (cont nil for switch and
// select, which break but do not continue).
func (b *cfgBuilder) pushLoop(label *labelInfo, brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	if cont != nil {
		b.continues = append(b.continues, cont)
	}
	if label != nil {
		label.brk, label.cont = brk, cont
	}
}

func (b *cfgBuilder) popLoop(hadCont bool) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if hadCont {
		b.continues = b.continues[:len(b.continues)-1]
	}
}

// branchTarget resolves a break or continue statement's destination.
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, isContinue bool) *Block {
	if s.Label != nil {
		li := b.label(s.Label.Name)
		if isContinue {
			return li.cont
		}
		return li.brk
	}
	if isContinue {
		if n := len(b.continues); n > 0 {
			return b.continues[n-1]
		}
		return nil
	}
	if n := len(b.breaks); n > 0 {
		return b.breaks[n-1]
	}
	return nil
}

func (b *cfgBuilder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}
