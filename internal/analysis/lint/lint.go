// Package lint is the repo's in-tree static-analysis framework: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API built
// entirely on the standard library's go/ast and go/types.
//
// The container this reproduction builds in has no module proxy, so the
// x/tools analysis machinery — the idiomatic substrate for this kind of
// invariant checking — is out of reach. The shape of its API is not: an
// Analyzer is a named check with a Run function over a type-checked
// Pass, diagnostics carry positions, and a driver (cmd/smtlint, or the
// lintest harness) applies analyzers to loaded packages. Keeping the
// same shape means the suite ports to a stock multichecker mechanically
// the day golang.org/x/tools becomes available.
//
// # Suppressions
//
// A diagnostic is suppressed by a justified directive comment on the
// flagged line or the line directly above it:
//
//	//lint:<name> <justification>
//
// where <name> is the analyzer's name or one of its declared aliases
// (detrange, for example, also answers to the ISSUE-specified
// "deterministic"). The justification is mandatory: a bare directive
// suppresses nothing, so every silenced finding records *why* the
// invariant holds at that site. Suppressed diagnostics are still
// collected (Result.Suppressed) so tests can assert a directive really
// engaged rather than the analyzer having missed the site.
package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and is its primary
	// suppression directive.
	Name string
	// Doc is the one-paragraph description cmd/smtlint -list prints.
	Doc string
	// Aliases are additional //lint: directive names that suppress this
	// analyzer's diagnostics.
	Aliases []string
	// Run reports the analyzer's findings for one package via
	// pass.Reportf. Returning an error aborts the whole lint run: it
	// means the analyzer itself failed, not that the code is in
	// violation.
	Run func(pass *Pass) error
	// End, when non-nil, runs once per lint.Run invocation after Run has
	// seen every package. Inter-procedural analyzers (lockorder) use it
	// to report findings that only exist in the whole-program view they
	// accumulated in Pass.Suite. End diagnostics go through the same
	// suppression machinery as Run diagnostics.
	End func(pass *EndPass) error
}

// directives returns every //lint: name that silences this analyzer.
func (a *Analyzer) directives() []string {
	return append([]string{a.Name}, a.Aliases...)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token positions for every file of the load.
	Fset *token.FileSet
	// Files are the package's parsed non-test Go files.
	Files []*ast.File
	// Pkg is the type-checked package (Path is the import path the
	// invariant package lists key off).
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Suite is an analyzer-private slot shared by every pass of one
	// lint.Run invocation and by its End hook: analyzers that need a
	// whole-program view accumulate per-package facts here. The slot is
	// fresh for each Run, so analyzer values stay reusable and
	// concurrent runs never share state.
	Suite *any

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExprString renders an expression's source text for diagnostics.
func (p *Pass) ExprString(e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, p.Fset, e); err != nil {
		return "<expr>"
	}
	return b.String()
}

// An EndPass is the whole-program view an analyzer's End hook reports
// from: the suite state its Run passes accumulated, plus the shared
// FileSet (lint loaders parse every package of one run into a single
// FileSet, so positions from any pass resolve here).
type EndPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Suite    *any

	diags []Diagnostic
}

// Reportf records an End-stage diagnostic at pos.
func (p *EndPass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Result is the outcome of running a suite over loaded packages.
type Result struct {
	// Diagnostics are the surviving findings, sorted by position.
	Diagnostics []Diagnostic
	// Suppressed are findings silenced by a justified //lint: directive,
	// kept so tests can assert a directive engaged.
	Suppressed []Diagnostic
}

// directiveRe matches a //lint:<name> <justification> comment. The
// directive must open the comment (matching the //go: convention of no
// space after the slashes).
var directiveRe = regexp.MustCompile(`^//lint:([a-zA-Z0-9_-]+)(.*)$`)

// suppressions indexes justified directives by file and line: an entry
// at (file, L) silences matching diagnostics reported on L or L+1.
type suppressions map[string]map[int][]string

// suppressionsOf scans a package's comments for justified directives.
// Bare directives (no justification text) are ignored — and therefore
// suppress nothing — by design.
func suppressionsOf(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					continue
				}
				pos := fset.Position(c.Slash)
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					sup[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], m[1])
			}
		}
	}
	return sup
}

// matches reports whether a justified directive for one of names exists
// on the diagnostic's line or the line above.
func (s suppressions) matches(d Diagnostic, names []string) bool {
	byLine := s[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, have := range byLine[line] {
			for _, want := range names {
				if have == want {
					return true
				}
			}
		}
	}
	return false
}

// Run applies every analyzer to every package (then each analyzer's
// End hook, if any), splitting findings into surviving and suppressed
// sets.
func Run(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	res := &Result{}
	// allSup unions every package's justified directives (filenames are
	// unique across packages), so End-stage diagnostics — which may land
	// in any loaded package — suppress exactly like Run-stage ones.
	allSup := suppressions{}
	suites := make([]any, len(analyzers))
	for _, pkg := range pkgs {
		sup := suppressionsOf(pkg.Fset, pkg.Files)
		for file, byLine := range sup {
			allSup[file] = byLine
		}
		for ai, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Suite:     &suites[ai],
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			names := a.directives()
			for _, d := range pass.diags {
				if sup.matches(d, names) {
					res.Suppressed = append(res.Suppressed, d)
				} else {
					res.Diagnostics = append(res.Diagnostics, d)
				}
			}
		}
	}
	if len(pkgs) > 0 {
		for ai, a := range analyzers {
			if a.End == nil {
				continue
			}
			pass := &EndPass{Analyzer: a, Fset: pkgs[0].Fset, Suite: &suites[ai]}
			if err := a.End(pass); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s (end): %w", a.Name, err)
			}
			names := a.directives()
			for _, d := range pass.diags {
				if allSup.matches(d, names) {
					res.Suppressed = append(res.Suppressed, d)
				} else {
					res.Diagnostics = append(res.Diagnostics, d)
				}
			}
		}
	}
	for _, ds := range [][]Diagnostic{res.Diagnostics, res.Suppressed} {
		sort.Slice(ds, func(i, j int) bool {
			a, b := ds[i], ds[j]
			if a.Pos.Filename != b.Pos.Filename {
				return a.Pos.Filename < b.Pos.Filename
			}
			if a.Pos.Line != b.Pos.Line {
				return a.Pos.Line < b.Pos.Line
			}
			if a.Pos.Column != b.Pos.Column {
				return a.Pos.Column < b.Pos.Column
			}
			return a.Analyzer < b.Analyzer
		})
	}
	return res, nil
}

// PathIn reports whether pkgPath is one of paths — the helper invariant
// package lists use to scope themselves.
func PathIn(pkgPath string, paths []string) bool {
	for _, p := range paths {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// FuncObj resolves the called function or method object of a call
// expression, or nil when the callee is not a declared func (builtin,
// conversion, func-typed variable).
func FuncObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// PkgFunc reports whether call invokes the package-level function
// pkgPath.name (matching through the type-checker, not by source text,
// so aliased imports and shadowing cannot fool it).
func PkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := FuncObj(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
