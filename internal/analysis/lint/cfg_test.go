package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFG parses src as the body of a function and returns its graph.
func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	fd := f.Decls[len(f.Decls)-1].(*ast.FuncDecl)
	return NewCFG(fd.Body)
}

// exitKinds summarizes the exits of a graph for assertions.
func exitKinds(g *CFG) (returns, panics, falls int) {
	reach := g.Reachable()
	for _, b := range g.Exits() {
		if !reach[b.Index] {
			continue
		}
		switch {
		case b.Returns():
			returns++
		case b.Panics():
			panics++
		default:
			falls++
		}
	}
	return
}

func TestCFGStraightLine(t *testing.T) {
	g := buildCFG(t, "x := 1\n_ = x")
	if len(g.Exits()) != 1 {
		t.Fatalf("want 1 exit, got %d\n%s", len(g.Exits()), g)
	}
	r, p, fall := exitKinds(g)
	if r != 0 || p != 0 || fall != 1 {
		t.Fatalf("want fall-off exit, got returns=%d panics=%d falls=%d\n%s", r, p, fall, g)
	}
}

func TestCFGIfElse(t *testing.T) {
	g := buildCFG(t, `
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}
	_ = x`)
	// Entry, then, else, join: the condition block has two successors.
	cond := g.Blocks[0]
	if len(cond.Succs) != 2 {
		t.Fatalf("condition block wants 2 successors, got %d\n%s", len(cond.Succs), g)
	}
	if n := len(g.Exits()); n != 1 {
		t.Fatalf("want 1 exit, got %d\n%s", n, g)
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	g := buildCFG(t, `
	x := 1
	if x > 0 {
		return
	}
	_ = x`)
	r, _, fall := exitKinds(g)
	if r != 1 || fall != 1 {
		t.Fatalf("want one return exit and one fall-off exit, got returns=%d falls=%d\n%s", r, fall, g)
	}
}

func TestCFGEarlyReturnMakesDeadCode(t *testing.T) {
	g := buildCFG(t, "return\nx := 1\n_ = x")
	reach := g.Reachable()
	dead := 0
	for _, b := range g.Blocks {
		if !reach[b.Index] && len(b.Nodes) > 0 {
			dead++
		}
	}
	if dead == 0 {
		t.Fatalf("statements after return should live in an unreachable block\n%s", g)
	}
}

func TestCFGForLoop(t *testing.T) {
	g := buildCFG(t, `
	for i := 0; i < 10; i++ {
		if i == 5 {
			break
		}
		if i == 3 {
			continue
		}
	}`)
	// The loop must contain a back edge: some block's successor has a
	// smaller reverse-post-order position.
	order := g.ReversePostOrder()
	pos := map[*Block]int{}
	for i, b := range order {
		pos[b] = i
	}
	back := false
	for _, b := range order {
		for _, s := range b.Succs {
			if sp, ok := pos[s]; ok && sp <= pos[b] {
				back = true
			}
		}
	}
	if !back {
		t.Fatalf("loop graph has no back edge\n%s", g)
	}
	if n := len(g.Exits()); n != 1 {
		t.Fatalf("want 1 exit, got %d\n%s", n, g)
	}
}

func TestCFGInfiniteLoopHasNoReachableExit(t *testing.T) {
	g := buildCFG(t, "for {\n\tx := 1\n\t_ = x\n}")
	reach := g.Reachable()
	for _, b := range g.Exits() {
		if reach[b.Index] {
			t.Fatalf("infinite loop should have no reachable exit, block %d is one\n%s", b.Index, g)
		}
	}
}

func TestCFGRangeLoop(t *testing.T) {
	g := buildCFG(t, `
	xs := []int{1, 2}
	for _, x := range xs {
		_ = x
	}`)
	if n := len(g.Exits()); n != 1 {
		t.Fatalf("want 1 exit, got %d\n%s", n, g)
	}
	// The range anchor node must appear in some block so analyzers see it.
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("range statement anchor missing from graph\n%s", g)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildCFG(t, `
	x := 1
	switch x {
	case 1:
		x = 10
		fallthrough
	case 2:
		x = 20
	default:
		x = 30
	}
	_ = x`)
	// Find the block holding "x = 10"; its successor chain must reach the
	// case-2 body without passing through the switch entry.
	var caseOne *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == "10" {
					caseOne = b
				}
			}
		}
	}
	if caseOne == nil {
		t.Fatalf("case 1 body block not found\n%s", g)
	}
	throughTo20 := false
	for _, s := range caseOne.Succs {
		for _, n := range s.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == "20" {
					throughTo20 = true
				}
			}
		}
	}
	if !throughTo20 {
		t.Fatalf("fallthrough edge from case 1 to case 2 missing\n%s", g)
	}
}

func TestCFGSwitchWithoutDefaultReachesDone(t *testing.T) {
	g := buildCFG(t, `
	x := 1
	switch x {
	case 1:
		return
	}
	_ = x`)
	r, _, fall := exitKinds(g)
	if r != 1 || fall != 1 {
		t.Fatalf("no-default switch: want return exit and fall-off exit, got returns=%d falls=%d\n%s", r, fall, g)
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildCFG(t, `
	ch := make(chan int)
	select {
	case v := <-ch:
		_ = v
	case ch <- 1:
	}`)
	if n := len(g.Exits()); n != 1 {
		t.Fatalf("want 1 exit, got %d\n%s", n, g)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildCFG(t, `
outer:
	for {
		for {
			break outer
		}
	}
	x := 1
	_ = x`)
	// The labeled break must make the code after the loops reachable.
	reach := g.Reachable()
	reachedTail := false
	for _, b := range g.Blocks {
		if !reach[b.Index] {
			continue
		}
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
					reachedTail = true
				}
			}
		}
	}
	if !reachedTail {
		t.Fatalf("break outer should reach the statement after the loops\n%s", g)
	}
}

func TestCFGGoto(t *testing.T) {
	g := buildCFG(t, `
	x := 0
	goto done
done:
	x = 1
	_ = x`)
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if strings.HasPrefix(b.Kind, "label.") && !reach[b.Index] {
			t.Fatalf("goto target should be reachable\n%s", g)
		}
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	g := buildCFG(t, `
	x := 1
	if x > 0 {
		panic("boom")
	}
	_ = x`)
	_, p, fall := exitKinds(g)
	if p != 1 || fall != 1 {
		t.Fatalf("want one panic exit and one fall-off exit, got panics=%d falls=%d\n%s", p, fall, g)
	}
}

func TestCFGOSExitTerminates(t *testing.T) {
	g := buildCFG(t, `
	x := 1
	if x > 0 {
		os.Exit(1)
	}
	_ = x`)
	_, p, fall := exitKinds(g)
	if p != 1 || fall != 1 {
		t.Fatalf("want one terminating exit and one fall-off exit, got panics=%d falls=%d\n%s", p, fall, g)
	}
}

// assignedLattice is the classic must-assign problem: the set of
// variables assigned on every path. Join is set intersection, so a
// variable assigned on only one branch of an if is not must-assigned
// at the join — the property the tests below pin down.
type assignedLattice struct{}

func (assignedLattice) Entry() map[string]bool { return map[string]bool{} }

func (assignedLattice) Join(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (assignedLattice) Equal(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (assignedLattice) Transfer(b *Block, in map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range in {
		out[k] = true
	}
	for _, n := range b.Nodes {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			continue
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
	}
	return out
}

// mustAssignedAtExit solves the problem and returns the fact at the
// single reachable exit.
func mustAssignedAtExit(t *testing.T, g *CFG) map[string]bool {
	t.Helper()
	_, out := Forward[map[string]bool](g, assignedLattice{})
	reach := g.Reachable()
	for _, b := range g.Exits() {
		if reach[b.Index] {
			return out[b]
		}
	}
	t.Fatalf("no reachable exit\n%s", g)
	return nil
}

func TestForwardBranchJoinIntersects(t *testing.T) {
	g := buildCFG(t, `
	c := true
	if c {
		a := 1
		_ = a
	} else {
		b := 2
		_ = b
	}`)
	got := mustAssignedAtExit(t, g)
	if got["a"] || got["b"] {
		t.Fatalf("a and b are each assigned on only one branch; must-assigned at exit = %v", got)
	}
	if !got["c"] {
		t.Fatalf("c is assigned before the branch; must-assigned at exit = %v", got)
	}
}

func TestForwardBothBranchesAssign(t *testing.T) {
	g := buildCFG(t, `
	c := true
	if c {
		x := 1
		_ = x
	} else {
		x := 2
		_ = x
	}`)
	got := mustAssignedAtExit(t, g)
	if !got["x"] {
		t.Fatalf("x is assigned on both branches; must-assigned at exit = %v", got)
	}
}

func TestForwardLoopConverges(t *testing.T) {
	g := buildCFG(t, `
	n := 10
	for i := 0; i < n; i++ {
		v := i
		_ = v
	}
	_ = n`)
	got := mustAssignedAtExit(t, g)
	// v is only assigned inside the loop body, which may run zero times.
	if got["v"] {
		t.Fatalf("loop body may not run; must-assigned at exit = %v", got)
	}
	if !got["n"] {
		t.Fatalf("n is assigned before the loop; must-assigned at exit = %v", got)
	}
}

func TestDominators(t *testing.T) {
	g := buildCFG(t, `
	c := true
	if c {
		a := 1
		_ = a
	} else {
		b := 2
		_ = b
	}
	d := 3
	_ = d`)
	idom := g.Dominators()
	entry := g.Blocks[0]
	if idom[entry.Index] != entry {
		t.Fatalf("entry block must dominate itself")
	}
	// Find the then, else and join blocks by their assigned variables.
	byVar := map[string]*Block{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				if id, ok := as.Lhs[0].(*ast.Ident); ok {
					byVar[id.Name] = b
				}
			}
		}
	}
	then, els, join := byVar["a"], byVar["b"], byVar["d"]
	if then == nil || els == nil || join == nil {
		t.Fatalf("blocks not found: then=%v else=%v join=%v\n%s", then, els, join, g)
	}
	if !Dominates(idom, entry, join) {
		t.Fatalf("entry must dominate the join block")
	}
	if Dominates(idom, then, join) || Dominates(idom, els, join) {
		t.Fatalf("neither branch alone dominates the join block")
	}
	if idom[join.Index] != entry {
		t.Fatalf("join's immediate dominator should be the branch block, got %d\n%s", idom[join.Index].Index, g)
	}
}

func TestReversePostOrderStartsAtEntry(t *testing.T) {
	g := buildCFG(t, "x := 1\nif x > 0 {\n\tx = 2\n}\n_ = x")
	order := g.ReversePostOrder()
	if len(order) == 0 || order[0] != g.Blocks[0] {
		t.Fatalf("reverse post-order must start at the entry block")
	}
}
