package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the slice of `go list -json` output the loader consumes.
type listedPkg struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
}

// stdCache is the process-wide memo of standard-library export data.
// Std packages are immutable for the life of a process (one toolchain,
// one build cache), so once any load has listed a std package — and,
// because goList always passes -deps, its entire import closure — every
// later load can reuse the paths without shelling out to `go list`
// again. This is what turns a lintest-heavy test binary from one
// `go list` per test case into one per *distinct* std import set:
// ListExports short-circuits entirely when every requested pattern is a
// cached std package. Module packages are never cached: their export
// data depends on the module root (lintest scratch modules redefine
// repro/* paths), so they are re-listed per call.
var stdCache = struct {
	sync.Mutex
	// listed marks std import paths whose transitive closure is in paths.
	listed map[string]bool
	// paths maps every std import path seen so far to its export file.
	paths map[string]string
}{listed: map[string]bool{}, paths: map[string]string{}}

// cacheStd memoizes the std packages of one go list result.
func cacheStd(requested []string, pkgs []listedPkg) {
	stdCache.Lock()
	defer stdCache.Unlock()
	std := map[string]bool{}
	for _, p := range pkgs {
		if p.Standard && p.Export != "" {
			stdCache.paths[p.ImportPath] = p.Export
			std[p.ImportPath] = true
		}
	}
	// A requested std pattern now has its whole closure cached (-deps
	// lists it); only those patterns may skip go list next time.
	for _, r := range requested {
		if std[r] {
			stdCache.listed[r] = true
		}
	}
}

// stdCached returns a snapshot of every cached std export path when all
// of patterns are cached std packages, or nil when any needs a real
// `go list`. Returning the full snapshot (a superset of the requested
// closure) is deliberate: the importer looks paths up lazily and
// ignores entries it never asks for.
func stdCached(patterns []string) map[string]string {
	stdCache.Lock()
	defer stdCache.Unlock()
	for _, p := range patterns {
		if !stdCache.listed[p] {
			return nil
		}
	}
	out := make(map[string]string, len(stdCache.paths))
	for k, v := range stdCache.paths {
		out[k] = v
	}
	return out
}

// goList runs `go list -export -deps -json` for patterns in dir and
// decodes the package stream. -export makes the go tool compile (or
// reuse from the build cache) every listed package and report the path
// of its export data, which is what lets the loader type-check targets
// against the exact compiled form of their dependencies — std library
// included — with no module downloads and no source re-checking of the
// whole dependency graph. Std results feed stdCache as a side effect.
func goList(dir string, patterns ...string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Export,Dir,GoFiles,CgoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	cacheStd(patterns, pkgs)
	return pkgs, nil
}

// ListExports returns the import-path → export-data-file map for
// patterns (transitively), resolved module-aware from dir. lintest uses
// it to satisfy testdata packages' std library imports; when every
// pattern is an already-cached std package the call answers from
// stdCache without running `go list` at all.
func ListExports(dir string, patterns ...string) (map[string]string, error) {
	if cached := stdCached(patterns); cached != nil {
		return cached, nil
	}
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Importer returns a types.Importer resolving import paths through the
// compiler's export data files in exports.
func Importer(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for import %q", path)
		}
		return os.Open(file)
	})
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// CheckFiles parses and type-checks one directory's non-test Go files as
// the package pkgPath, resolving imports through exports. It is the
// loading half lintest shares with Load.
func CheckFiles(fset *token.FileSet, dir string, goFiles []string, pkgPath string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		ImportPath: pkgPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Load lists patterns module-aware from dir and type-checks every
// matched package (dependencies resolve from compiled export data, so
// each target checks independently and the whole load costs one build
// plus one source pass over the targets). Test files are not loaded:
// the invariants the suite guards are production-code contracts, and
// tests legitimately use wall clocks, panics and Background contexts.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := Importer(fset, exports)
	var pkgs []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo, which the loader does not support", p.ImportPath)
		}
		pkg, err := CheckFiles(fset, p.Dir, p.GoFiles, p.ImportPath, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
