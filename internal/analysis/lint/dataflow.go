// Forward dataflow over CFGs: a generic worklist solver plus the
// reachability and dominance helpers flow-sensitive analyzers share.
package lint

// A Lattice describes one forward dataflow problem over facts of type
// F. Facts must be treated as values: Transfer and Join return new
// facts (or provably unaliased ones), never mutate their inputs.
type Lattice[F any] interface {
	// Entry is the fact holding at function entry.
	Entry() F
	// Join combines the facts of two predecessors at a merge point.
	Join(a, b F) F
	// Equal reports whether two facts carry the same information; the
	// solver iterates until every block's input fact stops changing.
	Equal(a, b F) bool
	// Transfer computes the fact after executing block b with fact in.
	Transfer(b *Block, in F) F
}

// Forward solves a forward dataflow problem on g, returning the fact
// holding at the entry (in) and exit (out) of every reachable block.
// Unreachable blocks are absent from both maps — their code cannot
// execute, so no fact holds there. The worklist iterates in reverse
// post-order, which converges in one pass for acyclic graphs and keeps
// the iteration order deterministic for identical inputs.
func Forward[F any](g *CFG, l Lattice[F]) (in, out map[*Block]F) {
	if len(g.Blocks) == 0 {
		return map[*Block]F{}, map[*Block]F{}
	}
	order := g.ReversePostOrder()
	pos := make(map[*Block]int, len(order))
	for i, b := range order {
		pos[b] = i
	}
	in = make(map[*Block]F, len(order))
	out = make(map[*Block]F, len(order))

	entry := g.Blocks[0]
	in[entry] = l.Entry()
	out[entry] = l.Transfer(entry, in[entry])

	// Iterate to a fixed point. The work queue holds block indexes into
	// order (a deterministic total order); queued tracks membership.
	queue := make([]int, 0, len(order))
	queued := make([]bool, len(order))
	push := func(b *Block) {
		if i, ok := pos[b]; ok && !queued[i] {
			queued[i] = true
			queue = append(queue, i)
		}
	}
	for _, s := range entry.Succs {
		push(s)
	}
	for len(queue) > 0 {
		// Pop the earliest block in reverse post-order, so facts flow
		// forward before back edges re-queue loop heads.
		best := 0
		for i := 1; i < len(queue); i++ {
			if queue[i] < queue[best] {
				best = i
			}
		}
		bi := queue[best]
		queue[best] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		queued[bi] = false
		b := order[bi]

		// Join the facts of predecessors solved so far.
		var fact F
		have := false
		for _, p := range g.Blocks {
			for _, s := range p.Succs {
				if s == b {
					if po, ok := out[p]; ok {
						if !have {
							fact, have = po, true
						} else {
							fact = l.Join(fact, po)
						}
					}
				}
			}
		}
		if !have {
			continue // all predecessors still unsolved; a successor edge will re-queue
		}
		if prev, ok := in[b]; ok && l.Equal(prev, fact) {
			continue
		}
		in[b] = fact
		out[b] = l.Transfer(b, fact)
		for _, s := range b.Succs {
			push(s)
		}
	}
	return in, out
}

// ReversePostOrder returns the blocks reachable from the entry in
// reverse post-order of a depth-first traversal: every block appears
// before its successors except along back edges.
func (g *CFG) ReversePostOrder() []*Block {
	if len(g.Blocks) == 0 {
		return nil
	}
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			visit(s)
		}
		post = append(post, b)
	}
	visit(g.Blocks[0])
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Reachable reports which blocks are reachable from the entry, indexed
// by Block.Index.
func (g *CFG) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	for _, b := range g.ReversePostOrder() {
		seen[b.Index] = true
	}
	return seen
}

// Dominators computes the immediate dominator of every reachable block
// (Cooper–Harvey–Kennedy), indexed by Block.Index. The entry block's
// immediate dominator is itself; unreachable blocks map to nil. Block d
// dominates b iff d is on b's idom chain up to the entry.
func (g *CFG) Dominators() []*Block {
	idom := make([]*Block, len(g.Blocks))
	order := g.ReversePostOrder()
	if len(order) == 0 {
		return idom
	}
	rpo := make(map[*Block]int, len(order))
	for i, b := range order {
		rpo[b] = i
	}
	preds := make([][]*Block, len(g.Blocks))
	for _, p := range order {
		for _, s := range p.Succs {
			preds[s.Index] = append(preds[s.Index], p)
		}
	}
	entry := g.Blocks[0]
	idom[entry.Index] = entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for rpo[a] > rpo[b] {
				a = idom[a.Index]
			}
			for rpo[b] > rpo[a] {
				b = idom[b.Index]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order[1:] {
			var newIdom *Block
			for _, p := range preds[b.Index] {
				if idom[p.Index] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block d dominates block b under the idom
// tree returned by Dominators.
func Dominates(idom []*Block, d, b *Block) bool {
	if d == nil || b == nil {
		return false
	}
	for {
		if b == d {
			return true
		}
		next := idom[b.Index]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}
