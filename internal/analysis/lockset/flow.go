// The lock-state dataflow problem: which mutexes are held at each
// point of one function, solved over lint's CFG by the generic forward
// solver. lockbalance reports on the states directly; lockorder reads
// the held set at every call site to build its acquisition graph.
package lockset

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lint"
)

// A Hold is one lock key's state on the current path.
type Hold struct {
	// Maybe marks a lock held on some but not all paths reaching this
	// point (the join of a locked and an unlocked predecessor).
	Maybe bool
	// Pos is the earliest acquisition site establishing the hold.
	Pos token.Pos
}

// A Fact is the lock state at one program point: the held keys plus
// the keys a reached defer statement will release on function exit.
type Fact struct {
	Held     map[string]Hold
	Deferred map[string]bool
}

func cloneFact(f Fact) Fact {
	out := Fact{Held: make(map[string]Hold, len(f.Held)), Deferred: make(map[string]bool, len(f.Deferred))}
	for k, v := range f.Held {
		out.Held[k] = v
	}
	for k := range f.Deferred {
		out.Deferred[k] = true
	}
	return out
}

// Flow is the lattice. Meta accumulates one representative Op per key
// seen anywhere in the function (keys are constant per function, so
// collecting them during transfer is safe across solver iterations);
// Acquired records the keys the function Locks or RLocks somewhere,
// with a representative acquisition site.
type Flow struct {
	Info     *types.Info
	Meta     map[string]Op
	Acquired map[string]Op
}

// NewFlow builds the lattice for one function's body.
func NewFlow(info *types.Info) *Flow {
	return &Flow{Info: info, Meta: map[string]Op{}, Acquired: map[string]Op{}}
}

// Entry implements lint.Lattice: no locks held at function entry.
func (fl *Flow) Entry() Fact {
	return Fact{Held: map[string]Hold{}, Deferred: map[string]bool{}}
}

// Join implements lint.Lattice: a key held on only one side becomes
// Maybe; deferred releases survive a join only when registered on both
// sides (a defer on one path does not cover the other).
func (fl *Flow) Join(a, b Fact) Fact {
	out := Fact{Held: map[string]Hold{}, Deferred: map[string]bool{}}
	for k, ha := range a.Held {
		if hb, ok := b.Held[k]; ok {
			h := Hold{Maybe: ha.Maybe || hb.Maybe, Pos: ha.Pos}
			if hb.Pos < h.Pos {
				h.Pos = hb.Pos
			}
			out.Held[k] = h
		} else {
			out.Held[k] = Hold{Maybe: true, Pos: ha.Pos}
		}
	}
	for k, hb := range b.Held {
		if _, ok := a.Held[k]; !ok {
			out.Held[k] = Hold{Maybe: true, Pos: hb.Pos}
		}
	}
	for k := range a.Deferred {
		if b.Deferred[k] {
			out.Deferred[k] = true
		}
	}
	return out
}

// Equal implements lint.Lattice.
func (fl *Flow) Equal(a, b Fact) bool {
	if len(a.Held) != len(b.Held) || len(a.Deferred) != len(b.Deferred) {
		return false
	}
	for k, ha := range a.Held {
		hb, ok := b.Held[k]
		if !ok || ha != hb {
			return false
		}
	}
	for k := range a.Deferred {
		if !b.Deferred[k] {
			return false
		}
	}
	return true
}

// Transfer implements lint.Lattice.
func (fl *Flow) Transfer(b *lint.Block, in Fact) Fact {
	out := cloneFact(in)
	for _, n := range b.Nodes {
		fl.Apply(n, &out, nil)
	}
	return out
}

// Apply mutates fact with one node's lock operations, in source order.
// When visit is non-nil it is called for every recognized operation
// with the state the lock was in immediately before the operation —
// the hook the reporting sweep uses after the solve stabilizes.
func (fl *Flow) Apply(n ast.Node, fact *Fact, visit func(op Op, before Hold, held bool)) {
	if d, ok := n.(*ast.DeferStmt); ok {
		for _, op := range fl.deferredReleases(d) {
			key := op.Kind.Key(op.Path)
			fl.meta(key, op)
			fact.Deferred[key] = true
		}
		return
	}
	for _, call := range Calls(n) {
		op, ok := MutexOp(fl.Info, call)
		if !ok || op.Path == "" {
			continue
		}
		key := op.Kind.Key(op.Path)
		fl.meta(key, op)
		before, held := fact.Held[key]
		if visit != nil {
			visit(op, before, held)
		}
		if op.Kind.Acquires() {
			if !held {
				fact.Held[key] = Hold{Pos: call.Pos()}
			}
		} else {
			delete(fact.Held, key)
		}
	}
}

func (fl *Flow) meta(key string, op Op) {
	if _, ok := fl.Meta[key]; !ok {
		fl.Meta[key] = op
	}
	if op.Kind.Acquires() {
		if _, ok := fl.Acquired[key]; !ok {
			fl.Acquired[key] = op
		}
	}
}

// deferredReleases collects the release operations a defer statement
// registers: a directly deferred Unlock/RUnlock, or releases inside a
// deferred function literal.
func (fl *Flow) deferredReleases(d *ast.DeferStmt) []Op {
	var out []Op
	collect := func(call *ast.CallExpr) {
		if op, ok := MutexOp(fl.Info, call); ok && op.Path != "" && !op.Kind.Acquires() {
			out = append(out, op)
		}
	}
	collect(d.Call)
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		for _, call := range Calls(lit.Body) {
			collect(call)
		}
	}
	return out
}

// Calls returns the call expressions n itself executes, in source
// order. Nested function literals and go statements are skipped (their
// code does not run on the current path), and compound statements the
// CFG places in blocks as anchors (range, switch, select) contribute
// only their shallow operation — their bodies live in other blocks, so
// descending here would misattribute body calls to the anchor's block.
func Calls(n ast.Node) []*ast.CallExpr {
	switch n := n.(type) {
	case *ast.RangeStmt:
		return Calls(n.X)
	case *ast.SwitchStmt:
		if n.Tag == nil {
			return nil
		}
		return Calls(n.Tag)
	case *ast.TypeSwitchStmt:
		return Calls(n.Assign)
	case *ast.SelectStmt:
		return nil
	case nil:
		return nil
	}
	var out []*ast.CallExpr
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			out = append(out, m)
		}
		return true
	})
	return out
}
