// Package lockset is the shared vocabulary of the concurrency-contract
// analyzers (lockbalance, lockorder, gorolife): it recognizes calls to
// the sync package's mutex and WaitGroup methods through the type
// checker, and assigns each mutex two identities —
//
//   - a function-local path ("c.mu", "s.admitMu"): the root variable
//     plus the field chain, the unit lockbalance tracks along one
//     function's control-flow paths;
//   - a program-wide class ("repro/internal/simcache.Cache.mu"): the
//     declaring package, type and field, the node lockorder's
//     inter-procedural acquisition graph is built over. Every instance
//     of a type shares its fields' classes on purpose — lock ordering
//     is a contract between code paths, not between heap objects.
//
// Identification is semantic (types.Info), never textual: aliased
// imports, embedded fields and generic instantiations resolve to the
// same classes.
package lockset

import (
	"go/ast"
	"go/types"
)

// OpKind is one mutex operation.
type OpKind int

const (
	Lock OpKind = iota
	Unlock
	RLock
	RUnlock
)

// String renders the method name.
func (k OpKind) String() string {
	switch k {
	case Lock:
		return "Lock"
	case Unlock:
		return "Unlock"
	case RLock:
		return "RLock"
	case RUnlock:
		return "RUnlock"
	}
	return "?"
}

// Acquires reports whether the operation takes the mutex (Lock/RLock).
func (k OpKind) Acquires() bool { return k == Lock || k == RLock }

// Key returns the lock-state key the operation works on: the exclusive
// (Lock/Unlock) and shared (RLock/RUnlock) sides of one RWMutex are
// independent states.
func (k OpKind) Key(path string) string {
	if k == RLock || k == RUnlock {
		return "r:" + path
	}
	return "w:" + path
}

// An Op is one recognized mutex method call.
type Op struct {
	Kind OpKind
	Call *ast.CallExpr
	// Recv is the mutex-valued receiver expression.
	Recv ast.Expr
	// Path is the function-local identity ("c.mu"); empty when the
	// receiver is too dynamic to name (map/slice element, call result).
	Path string
	// Root is the object Path is rooted at (a parameter, receiver or
	// local/package variable), nil when Path is empty.
	Root types.Object
	// Class is the program-wide identity
	// ("repro/internal/simcache.Cache.mu" for fields,
	// "repro/internal/foo.globalMu" for package vars); empty for locks
	// that have no stable declaration site (locals, unnamed structs).
	Class string
}

// MutexOp recognizes call as a sync.Mutex / sync.RWMutex method call.
func MutexOp(info *types.Info, call *ast.CallExpr) (Op, bool) {
	recv, typeName, method, ok := syncMethod(info, call)
	if !ok || (typeName != "Mutex" && typeName != "RWMutex") {
		return Op{}, false
	}
	var kind OpKind
	switch method {
	case "Lock":
		kind = Lock
	case "Unlock":
		kind = Unlock
	case "RLock":
		kind = RLock
	case "RUnlock":
		kind = RUnlock
	default:
		return Op{}, false // TryLock and friends are not tracked
	}
	op := Op{Kind: kind, Call: call, Recv: recv}
	op.Root, op.Path = pathOf(info, recv)
	op.Class = classOf(info, recv)
	return op, true
}

// WaitGroupDone recognizes call as sync.WaitGroup.Done (the reap signal
// gorolife accepts), returning the WaitGroup receiver expression.
func WaitGroupDone(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	recv, typeName, method, ok := syncMethod(info, call)
	if !ok || typeName != "WaitGroup" || method != "Done" {
		return nil, false
	}
	return recv, true
}

// syncMethod matches a method call whose resolved object is declared on
// a sync-package type, returning the receiver expression, the type's
// name and the method name. Embedded receivers resolve too (the
// selection's object is still the sync method).
func syncMethod(info *types.Info, call *ast.CallExpr) (recv ast.Expr, typeName, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return nil, "", "", false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", "", false
	}
	named, isNamed := deref(selection.Recv()).(*types.Named)
	if !isNamed {
		// Embedded in a local struct type: recv type is the outer struct;
		// the method still belongs to sync, so name the type by the
		// method's own receiver.
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			return nil, "", "", false
		}
		named, isNamed = deref(sig.Recv().Type()).(*types.Named)
		if !isNamed {
			return nil, "", "", false
		}
	}
	// The selection may land on an embedded sync type; the method's own
	// receiver names the sync type either way.
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		if n, is := deref(sig.Recv().Type()).(*types.Named); is {
			named = n
		}
	}
	return sel.X, named.Obj().Name(), fn.Name(), true
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// pathOf names a receiver expression as a root object plus a field
// chain: "mu", "c.mu", "s.cache.mu". Dynamic receivers (indexing,
// calls, composite literals) have no stable per-function identity and
// return ("", nil).
func pathOf(info *types.Info, e ast.Expr) (types.Object, string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return nil, ""
		}
		return obj, e.Name
	case *ast.SelectorExpr:
		root, prefix := pathOf(info, e.X)
		if root == nil {
			return nil, ""
		}
		return root, prefix + "." + e.Sel.Name
	case *ast.StarExpr:
		return pathOf(info, e.X)
	}
	return nil, ""
}

// classOf names a receiver expression's program-wide lock class: the
// declaring package, type and field of the final selector, or the
// package and name of a package-level variable. Locks without a stable
// declaration site (locals, fields of unnamed structs, dynamic
// receivers) return "".
func classOf(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil {
			return ""
		}
		// Package-level mutex variable.
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return ""
	case *ast.SelectorExpr:
		// The field's class is its receiver's named type plus the field
		// name. Instantiated generics resolve to their origin type, so
		// Cache[A, B].mu and Cache[C, D].mu are one class.
		t := info.TypeOf(e.X)
		if t == nil {
			return ""
		}
		named, ok := deref(t).(*types.Named)
		if !ok {
			return ""
		}
		tn := named.Obj()
		if tn.Pkg() == nil {
			return ""
		}
		return tn.Pkg().Path() + "." + tn.Name() + "." + e.Sel.Name
	case *ast.StarExpr:
		return classOf(info, e.X)
	}
	return ""
}
