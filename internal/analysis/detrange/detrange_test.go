package detrange_test

import (
	"testing"

	"repro/internal/analysis/detrange"
	"repro/internal/analysis/lintest"
)

// TestTargetPackage runs detrange over a package inside its target set:
// raw ranges are flagged, the sorted/append-key/delete idioms pass, a
// justified directive suppresses, and a bare directive does not.
func TestTargetPackage(t *testing.T) {
	lintest.Run(t, detrange.Analyzer, "testdata/target", "repro/internal/report")
}

// TestOffTargetPackageIsExempt type-checks the same violation under an
// import path outside the target set and expects silence.
func TestOffTargetPackageIsExempt(t *testing.T) {
	lintest.Run(t, detrange.Analyzer, "testdata/offtarget", "repro/internal/analysis/offtarget")
}
