// Package offtarget holds the same raw map range as the target case
// but is type-checked OUTSIDE detrange's target set: the analyzer must
// stay silent, which is what scopes it to the determinism-critical
// packages instead of the whole tree.
package offtarget

func rawRange(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
