// Package target exercises detrange inside its target set: the test
// harness type-checks it as repro/internal/report.
package target

import "sort"

// rawRange is the violation: map iteration order reaches the output
// slice.
func rawRange(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "range over map m iterates in randomized order"
		out = append(out, v)
	}
	return out
}

// sortedKeys is the sanctioned shape: collect keys, sort, iterate the
// slice. The collection loop is the exempt append-key idiom.
func sortedKeys(m map[string]int) []int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// drain is the exempt clear idiom: deleting the range key from the
// ranged map is order-insensitive.
func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// justified carries a deterministic directive: an order-insensitive
// reduction over the values.
func justified(m map[string]int) int {
	best := 0
	//lint:deterministic max over values is order-insensitive
	for _, v := range m { // want-suppressed "range over map m"
		if v > best {
			best = v
		}
	}
	return best
}

// bare shows that a directive without a justification suppresses
// nothing: the finding must survive.
func bare(m map[string]int) int {
	n := 0
	//lint:deterministic
	for range m { // want "range over map m"
		n++
	}
	return n
}

// valueConsumed looks like key collection but appends the value, which
// is order-sensitive work: not exempt.
func valueConsumed(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "range over map m"
		out = append(out, v)
	}
	return out
}
