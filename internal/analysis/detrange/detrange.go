// Package detrange flags `range` statements over maps in the packages
// whose outputs must be byte-identical across runs, worker counts and
// schedulers. Go randomizes map iteration order on purpose, so a map
// range anywhere between a simulation result and serialized bytes is
// exactly the kind of silent nondeterminism the golden, Workers=1 vs
// GOMAXPROCS, and restart-replay tests exist to catch after the fact —
// this analyzer catches it at lint time instead.
//
// Two shapes are exempt because they are order-insensitive by
// construction:
//
//   - the collect-keys idiom, `for k := range m { keys = append(keys, k) }`,
//     whose single statement appends only the key (the caller sorts);
//   - the clear idiom, `for k := range m { delete(m, k) }`.
//
// Every other map range in a target package needs either sorted-key
// iteration or a justified //lint:detrange (alias //lint:deterministic)
// directive explaining why iteration order cannot reach any output.
package detrange

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lint"
)

// TargetPackages are the result-producing and serializing packages the
// determinism contract covers.
var TargetPackages = []string{
	"repro/internal/core",
	"repro/internal/pipeline",
	"repro/internal/scenario",
	"repro/internal/report",
	"repro/internal/sched",
	"repro/internal/metrics",
	"repro/internal/stats",
	"repro/internal/experiments",
	"repro/internal/workload",
	"repro/internal/simcache",
	"repro/internal/resultstore",
	"repro/internal/tracestore",
	"repro/cmd/smtsimd",
}

// Analyzer is the detrange check.
var Analyzer = &lint.Analyzer{
	Name:    "detrange",
	Aliases: []string{"deterministic"},
	Doc: "flag range-over-map in result-producing/serializing packages " +
		"(map iteration order is randomized; sort keys first or justify with //lint:deterministic)",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !lint.PathIn(pass.Pkg.Path(), TargetPackages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(rs) {
				return true
			}
			pass.Reportf(rs.For,
				"range over map %s iterates in randomized order; collect and sort the keys first, or justify with //lint:deterministic",
				pass.ExprString(rs.X))
			return true
		})
	}
	return nil
}

// orderInsensitive recognizes the two exempt single-statement bodies:
// appending the range key to a slice, and deleting the range key from
// the ranged map.
func orderInsensitive(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	// The value must be unused: a body consuming values is
	// order-sensitive work, not key collection.
	if rs.Value != nil {
		if v, ok := rs.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	switch stmt := rs.Body.List[0].(type) {
	case *ast.AssignStmt:
		// keys = append(keys, k)
		if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
			return false
		}
		call, ok := stmt.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
		return ok && arg.Name == key.Name
	case *ast.ExprStmt:
		// delete(m, k)
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "delete" {
			return false
		}
		arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
		return ok && arg.Name == key.Name
	}
	return false
}
