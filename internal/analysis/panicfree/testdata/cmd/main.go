// Command cmd shows the target scoping: command packages are
// user-facing mains with their own error conventions, so panic is not
// flagged outside repro/internal.
package main

func main() {
	panic("mains may panic")
}
