// Package libtest exercises panicfree in a library package: reachable
// panics and request-path Must* calls are flagged; the Must* wrapper
// pattern, package-level initializers, wrapper composition, and
// justified directives pass.
package libtest

import "errors"

var errMissing = errors.New("missing")

// Lookup is the error-returning API.
func Lookup(ok bool) (int, error) {
	if !ok {
		return 0, errMissing
	}
	return 1, nil
}

// MustLookup is the sanctioned wrapper shape: the panic lives inside a
// Must* function, and it is the CALLERS this analyzer polices.
func MustLookup(ok bool) int {
	v, err := Lookup(ok)
	if err != nil {
		panic(err)
	}
	return v
}

// MustTwice composes wrappers: Must* calling Must* is allowed.
func MustTwice(ok bool) int {
	return MustLookup(ok) + MustLookup(ok)
}

// table is a package-level initializer: a static-table failure here is
// loud and immediate at startup, which is the point of the exemption.
var table = MustLookup(true)

// libPanic is the violation: a reachable panic in library code.
func libPanic(ok bool) int {
	if !ok {
		panic("libtest: not ok") // want "panic in library package"
	}
	return 1
}

// mustCall is the other violation: a Must* call on a request path.
func mustCall() int {
	return MustLookup(true) // want "call to MustLookup in library package"
}

// justified is the allowlisted shape: an invariant guard with a
// recorded reason.
func justified(n int) int {
	if n < 0 {
		//lint:panicfree unreachable-invariant guard: n is a compiled-in table size
		panic("libtest: negative") // want-suppressed "panic in library package"
	}
	return n
}

// bare shows that a directive without a justification suppresses
// nothing: the finding must survive.
func bare() {
	//lint:panicfree
	panic("no reason given") // want "panic in library package"
}
