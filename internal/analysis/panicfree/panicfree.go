// Package panicfree continues the panic→error campaign of PRs 2–3: a
// library package reachable from the daemon must not take the process
// down, so panic and the panicking Must* wrappers are forbidden outside
// a small set of sanctioned shapes:
//
//   - panic inside a function itself named Must* — that IS the
//     documented wrapper pattern (MustLookup, MustByGroup, ...), whose
//     callers are the ones this analyzer polices;
//   - Must* calls from package-level variable initializers, which run
//     before main and fail a build-time-static table loudly at startup
//     rather than mid-request;
//   - Must* calls from inside another Must* function (the wrappers
//     compose);
//   - sites carrying a justified //lint:panicfree directive — the
//     documented static-call-site allowlist (hot-loop invariant guards
//     whose failure means simulator-internal corruption, and Must*
//     calls over compile-time-static tables covered by tests).
//
// Command packages (cmd/*, examples/*) are user-facing mains with their
// own error conventions and are not targets.
package panicfree

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/lint"
)

// TargetPrefix scopes the analyzer to library packages.
const TargetPrefix = "repro/internal/"

// Analyzer is the panicfree check.
var Analyzer = &lint.Analyzer{
	Name: "panicfree",
	Doc: "forbid panic and Must* calls in library packages outside the documented " +
		"allowlist (Must* wrappers, package-level initializers, justified //lint:panicfree sites)",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), TargetPrefix) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, _ := decl.(*ast.FuncDecl)
			inMust := fd != nil && strings.HasPrefix(fd.Name.Name, "Must")
			atPackageLevel := fd == nil
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
						if !inMust {
							pass.Reportf(call.Pos(),
								"panic in library package %s: return an error, or justify an unreachable-invariant guard with //lint:panicfree",
								pass.Pkg.Path())
						}
						return true
					}
				}
				fn := lint.FuncObj(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil || !strings.HasPrefix(fn.Name(), "Must") {
					return true
				}
				path := fn.Pkg().Path()
				if path != "repro" && !strings.HasPrefix(path, "repro/") {
					return true
				}
				if inMust || atPackageLevel {
					return true
				}
				pass.Reportf(call.Pos(),
					"call to %s in library package %s: use the error-returning variant, or justify a static call site with //lint:panicfree",
					fn.Name(), pass.Pkg.Path())
				return true
			})
		}
	}
	return nil
}
