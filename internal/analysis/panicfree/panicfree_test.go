package panicfree_test

import (
	"testing"

	"repro/internal/analysis/lintest"
	"repro/internal/analysis/panicfree"
)

// TestLibraryPackage runs panicfree over a library package: reachable
// panics and request-path Must* calls are flagged; Must* wrappers,
// package-level initializers, wrapper composition, and a justified
// directive pass, while a bare directive does not suppress.
func TestLibraryPackage(t *testing.T) {
	lintest.Run(t, panicfree.Analyzer, "testdata/lib", "repro/internal/libtest")
}

// TestCommandPackageIsExempt type-checks a panicking main outside
// repro/internal and expects silence.
func TestCommandPackageIsExempt(t *testing.T) {
	lintest.Run(t, panicfree.Analyzer, "testdata/cmd", "repro/cmd/tool")
}
