package gorolife_test

import (
	"testing"

	"repro/internal/analysis/gorolife"
	"repro/internal/analysis/lintest"
)

// TestGoroLife runs the analyzer over the seeded shapes: fire-and-
// forget goroutines (no signal, named function, per-iteration leak,
// partial-path signal, silent spinner) must be flagged, the justified
// pool worker must be suppressed, and every reaped pattern (WaitGroup,
// result send, close, ctx.Done, channel range, passed-in channel) must
// stay silent.
func TestGoroLife(t *testing.T) {
	lintest.Run(t, gorolife.Analyzer, "testdata/pkg", "repro/internal/gorotest")
}
