// Seeded goroutine-lifecycle shapes: each // want line is a
// fire-and-forget goroutine the analyzer must flag, everything else is
// a reaped pattern it must accept.
package gorotest

import (
	"context"
	"sync"
)

func process(x int) int { return x * 2 }

// Violation: nothing ever signals completion.
func fireAndForget() {
	go func() { // want "goroutine can exit without signaling completion"
		_ = process(1)
	}()
}

// Violation: a named function's contract cannot be checked at the site.
func namedFunction() {
	go leakyWorker() // want "go statement calls a named function"
}

func leakyWorker() { _ = process(2) }

// Violation: started in a loop, one leak per iteration.
func leakPerItem(xs []int) {
	for range xs {
		go func() { // want "goroutine can exit without signaling completion.*started inside a loop"
			_ = process(3)
		}()
	}
}

// Violation: signals on the happy path but not on the early return.
func signalsOnSomePathsOnly(ch chan int, fail bool) {
	go func() { // want "goroutine can exit without signaling completion"
		if fail {
			return
		}
		ch <- process(4)
	}()
}

// Violation: a silent infinite loop is unreapable.
func silentSpinner() {
	go func() { // want "never exits and never signals"
		for {
			_ = process(5)
		}
	}()
}

// Suppressed: the bounded-pool pattern justifies itself.
func pooled(p *pool) {
	//lint:gorolife worker accounting in p.workers bounds and reaps the pool
	go p.work() // want-suppressed "named function"
}

type pool struct {
	mu      sync.Mutex
	workers int
}

func (p *pool) work() {}

// --- Reaped patterns the analyzer must accept silently. ---

// The canonical WaitGroup pair, deferred so panics signal too.
func waited(wg *sync.WaitGroup, xs []int) {
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = process(x)
		}()
	}
	wg.Wait()
}

// A result send on every path out.
func resultChannel(fail bool) chan int {
	out := make(chan int, 1)
	go func() {
		if fail {
			out <- 0
			return
		}
		out <- process(6)
	}()
	return out
}

// Closing the channel signals completion to the ranging consumer.
func producer(xs []int) chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for _, x := range xs {
			out <- process(x)
		}
	}()
	return out
}

// The Done pattern: lifetime bounded by an external context.
func untilCancelled(ctx context.Context, tick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-tick:
				_ = process(v)
			}
		}
	}()
}

// Ranging over the input channel: the worker ends when the producer
// closes it.
func rangeWorker(in chan int) {
	go func() {
		for v := range in {
			_ = process(v)
		}
	}()
}

// A parameter-passed channel is external coordination too.
func parameterised(done chan struct{}) {
	go func(d chan struct{}) {
		_ = process(7)
		close(d)
	}(done)
}
