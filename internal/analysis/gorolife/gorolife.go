// Package gorolife requires every goroutine started in library code to
// be provably reaped: on every path out of the goroutine body, some
// signal must tie its lifetime to the rest of the program. A
// fire-and-forget goroutine outlives the operation that started it —
// under this repo's daemon that means work continuing after cancel,
// goroutines accumulating across requests, and shutdown that cannot
// drain; the leakcheck test layer catches the ones tests happen to
// trigger, this analyzer covers the rest statically.
//
// Accepted signals, checked on every reachable exit path of the
// goroutine's function literal (deferred signals cover panic exits
// too):
//
//   - sync.WaitGroup.Done on a WaitGroup declared outside the body;
//   - a send on, or close of, a channel declared outside the body;
//   - the Done pattern: a receive from an external channel — `<-done`,
//     `<-ctx.Done()`, or ranging over an input channel — which bounds
//     the goroutine's lifetime by external coordination.
//
// A goroutine whose body cannot exit (an intentional worker loop) is
// accepted when the loop itself signals — each iteration's send is the
// "still alive, here's a result" handshake — and flagged when nothing
// inside ever signals: a silent infinite loop is unreapable by
// construction.
//
// `go f(...)` on a named function is always flagged: the lifecycle
// contract lives in f's body, which may change far from this call
// site. Wrap the call in a literal that signals, or justify the site —
// the bounded-worker-pool pattern (accounting under a mutex, as in
// internal/experiments) is the canonical justified case.
//
// Reports note when the go statement sits inside a loop: each
// iteration then leaks its own goroutine, which is how counts grow
// with workload rather than staying O(1).
package gorolife

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lint"
	"repro/internal/analysis/lockset"
)

// Analyzer is the gorolife check.
var Analyzer = &lint.Analyzer{
	Name: "gorolife",
	Doc: "flag fire-and-forget goroutines: every go statement must signal completion " +
		"(WaitGroup.Done, channel send/close, or a Done-pattern receive) on all paths, or carry a justification",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		// Maintain the ancestor stack along the walk (ast.Inspect post-
		// visits nil once per node, balancing every push) so reports can
		// say "started inside a loop".
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if g, ok := n.(*ast.GoStmt); ok {
				checkGo(pass, g, inLoop(stack))
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

// inLoop reports whether the innermost enclosing construct of the
// stack top, up to the nearest function boundary, is a loop: a go
// statement there starts one goroutine per iteration.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

func checkGo(pass *lint.Pass, g *ast.GoStmt, inLoop bool) {
	loopNote := ""
	if inLoop {
		loopNote = "; started inside a loop, so each iteration leaks one"
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		pass.Reportf(g.Pos(),
			"go statement calls a named function, so its completion contract cannot be checked here%s; "+
				"wrap it in a literal that signals (WaitGroup.Done, channel send/close) or justify with //lint:gorolife",
			loopNote)
		return
	}

	sig := newSignals(pass.TypesInfo, lit)
	cfg := lint.NewCFG(lit.Body)
	_, out := lint.Forward[sigFact](cfg, sig)
	reach := cfg.Reachable()

	exits := 0
	for _, b := range cfg.Exits() {
		if !reach[b.Index] {
			continue
		}
		exits++
		fact := out[b]
		if !fact.sig && !fact.def {
			pass.Reportf(g.Pos(),
				"goroutine can exit without signaling completion (no WaitGroup.Done, channel operation or Done-pattern receive on this path)%s; "+
					"reap it or justify with //lint:gorolife",
				loopNote)
			return
		}
	}
	if exits == 0 && !sig.anywhere {
		pass.Reportf(g.Pos(),
			"goroutine never exits and never signals: a silent infinite loop cannot be reaped%s; "+
				"signal per iteration, select on a done channel, or justify with //lint:gorolife",
			loopNote)
	}
}

// sigFact is the must-signal state on one path: sig is a signal already
// executed, def a deferred signal registered (covers panic exits too).
type sigFact struct {
	sig, def bool
}

// signals is the lattice; anywhere records whether any signal exists in
// the body at all (the infinite-loop test).
type signals struct {
	info     *types.Info
	body     *ast.FuncLit
	anywhere bool
}

func newSignals(info *types.Info, lit *ast.FuncLit) *signals {
	s := &signals{info: info, body: lit}
	// One syntactic pre-pass for the "any signal at all" question, so it
	// does not depend on reachability.
	inspectOwn(lit.Body, func(n ast.Node) {
		if s.isSignal(n) {
			s.anywhere = true
		}
	})
	return s
}

func (s *signals) Entry() sigFact { return sigFact{} }
func (s *signals) Join(a, b sigFact) sigFact {
	return sigFact{sig: a.sig && b.sig, def: a.def && b.def}
}
func (s *signals) Equal(a, b sigFact) bool { return a == b }

// Transfer scans only each node's own operations. Compound statements
// placed in blocks as anchors (range, switch, select) contain their
// body statements syntactically, but those bodies live in other blocks
// — descending into them here would credit a signal to paths that skip
// it — so anchors contribute only their shallow operation.
func (s *signals) Transfer(b *lint.Block, in sigFact) sigFact {
	out := in
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if s.deferSignals(n) {
				out.def = true
			}
		case *ast.RangeStmt:
			// The anchor's own operation: ranging over an external channel
			// is the Done pattern (the loop ends when the producer closes).
			if t := s.info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && s.external(n.X) {
					out.sig = true
				}
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && s.scanExpr(n.Tag) {
				out.sig = true
			}
		case *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.ForStmt, *ast.IfStmt, *ast.BlockStmt, *ast.LabeledStmt:
			// Compound anchors with nothing shallow to scan: their pieces
			// (conditions, comm clauses, bodies) are separate block nodes.
		default:
			if s.scanExpr(n) {
				out.sig = true
			}
		}
	}
	return out
}

// scanExpr inspects one simple statement or expression for a signal.
func (s *signals) scanExpr(n ast.Node) bool {
	found := false
	inspectOwn(n, func(m ast.Node) {
		if s.isSignal(m) {
			found = true
		}
	})
	return found
}

// deferSignals reports whether a defer registers a completion signal:
// a directly deferred Done/close, or one inside a deferred literal.
func (s *signals) deferSignals(d *ast.DeferStmt) bool {
	if s.isSignal(d.Call) {
		return true
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		found := false
		inspectOwn(lit.Body, func(m ast.Node) {
			if s.isSignal(m) {
				found = true
			}
		})
		return found
	}
	return false
}

// isSignal recognizes one completion signal on an external object:
// wg.Done(), close(ch), ch <- v, or a Done-pattern receive <-ch.
func (s *signals) isSignal(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SendStmt:
		return s.external(n.Chan)
	case *ast.UnaryExpr:
		return n.Op == token.ARROW && s.external(n.X)
	case *ast.CallExpr:
		if recv, ok := lockset.WaitGroupDone(s.info, n); ok {
			return s.external(recv)
		}
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
			if b, isB := s.info.Uses[id].(*types.Builtin); isB && b.Name() == "close" {
				return s.external(n.Args[0])
			}
		}
	}
	return false
}

// external reports whether e is rooted at an object declared outside
// the goroutine body — a captured variable, a field of one, or a
// parameter of the literal itself (parameters are bound by the caller,
// so a channel passed in is outside coordination). For a call like
// ctx.Done(), the coordination object is the receiver.
func (s *signals) external(e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return s.external(sel.X)
		}
		return false
	}
	root, ok := rootOf(s.info, e)
	if !ok {
		return false
	}
	return root.Pos() < s.body.Body.Pos() || root.Pos() >= s.body.Body.End()
}

// rootOf resolves the base object of an ident / selector / deref chain.
func rootOf(info *types.Info, e ast.Expr) (types.Object, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj, obj != nil
	case *ast.SelectorExpr:
		return rootOf(info, e.X)
	case *ast.StarExpr:
		return rootOf(info, e.X)
	}
	return nil, false
}

// inspectOwn walks n without descending into nested function literals
// or go statements: their code is another goroutine's story.
func inspectOwn(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			if m != n {
				return false
			}
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}
