// Package lintest is the analysistest-style harness for the lint suite:
// it loads one testdata package, runs one analyzer over it, and checks
// the produced diagnostics against expectation comments in the source.
//
// Expectations ride the flagged line as comments:
//
//	for k := range m { // want "range over map"
//	//lint:deterministic builds a map
//	for k := range m { // want-suppressed "range over map"
//
// `// want "re"` demands an unsuppressed diagnostic on that line whose
// message matches the regexp; `// want-suppressed "re"` demands the
// diagnostic was produced AND silenced by a justified //lint: directive
// — which is how suppression handling itself stays regression-locked:
// an annotated site must keep passing precisely because its directive
// engaged, not because the analyzer went blind.
//
// Testdata packages live under testdata/<case>/ (ignored by the go
// tool) and are type-checked under a caller-chosen import path, so an
// analyzer scoped to, say, repro/internal/report can be exercised both
// inside and outside its target set.
package lintest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/analysis/lint"
)

// TB is the subset of testing.TB the harness needs. Taking the
// interface instead of *testing.T lets the harness itself be tested:
// the meta-test hands Run a recording fake and asserts that stale
// expectations and surprise diagnostics actually fail. Fatal callers
// must be able to return normally (a fake records instead of aborting),
// so Run guards every Fatal with an explicit return.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatal(args ...any)
}

// wantRe matches one quoted regexp in a want comment's payload.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one expected diagnostic: a regexp at a line, either
// surviving or suppressed.
type expectation struct {
	file       string
	line       int
	re         *regexp.Regexp
	suppressed bool
	matched    bool
}

// Run loads dir as a package named pkgPath, applies a, and compares
// diagnostics against the // want and // want-suppressed comments.
func Run(t TB, a *lint.Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg, err := loadDir(dir, pkgPath)
	if err != nil {
		t.Fatal(err)
		return
	}
	res, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
		return
	}
	wants, err := expectations(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatal(err)
		return
	}
	match := func(d lint.Diagnostic, suppressed bool) bool {
		for _, w := range wants {
			if !w.matched && w.suppressed == suppressed && w.file == d.Pos.Filename &&
				w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				return true
			}
		}
		return false
	}
	for _, d := range res.Diagnostics {
		if !match(d, false) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, d := range res.Suppressed {
		if !match(d, true) {
			t.Errorf("unexpected suppressed diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			kind := "diagnostic"
			if w.suppressed {
				kind = "suppressed diagnostic"
			}
			t.Errorf("%s:%d: expected %s matching %q, got none", w.file, w.line, kind, w.re)
		}
	}
}

// loadDir parses and type-checks every .go file in dir as pkgPath,
// resolving its (standard library) imports from compiled export data.
func loadDir(dir, pkgPath string) (*lint.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lintest: no .go files in %s", dir)
	}
	// Two passes: a throwaway parse discovers the imports, go list
	// resolves their export data, then CheckFiles does the real load.
	imports, err := importsOf(dir, goFiles)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		exports, err = lint.ListExports(".", imports...)
		if err != nil {
			return nil, err
		}
	}
	fset := token.NewFileSet()
	return lint.CheckFiles(fset, dir, goFiles, pkgPath, lint.Importer(fset, exports))
}

// importsOf collects the distinct import paths of the given files.
func importsOf(dir string, goFiles []string) ([]string, error) {
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var out []string
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			imp, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			if !seen[imp] {
				seen[imp] = true
				out = append(out, imp)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// expectations scans the files' comments for want / want-suppressed
// markers.
func expectations(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	re := regexp.MustCompile(`^//\s*(want|want-suppressed)\s+(.*)$`)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := re.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				quoted := wantRe.FindAllStringSubmatch(m[2], -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s:%d: %s comment without a quoted regexp", pos.Filename, pos.Line, m[1])
				}
				for _, q := range quoted {
					r, err := regexp.Compile(q[1])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %w", pos.Filename, pos.Line, err)
					}
					out = append(out, &expectation{
						file:       pos.Filename,
						line:       pos.Line,
						re:         r,
						suppressed: m[1] == "want-suppressed",
					})
				}
			}
		}
	}
	return out, nil
}
