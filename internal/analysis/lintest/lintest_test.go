package lintest

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"repro/internal/analysis/lint"
)

// fakeTB records the harness's verdicts so the meta-test can assert on
// them. Fatal records and returns — Run guards every Fatal call with an
// explicit return, so recording is enough to stop the harness.
type fakeTB struct {
	errs   []string
	fatals []string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.errs = append(f.errs, fmt.Sprintf(format, args...))
}
func (f *fakeTB) Fatal(args ...any) {
	f.fatals = append(f.fatals, fmt.Sprint(args...))
}

// reportFuncs flags every function declaration whose name matches one
// of names ("*" for all) — a controllable diagnostic source for
// exercising the harness itself.
func reportFuncs(names ...string) *lint.Analyzer {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	return &lint.Analyzer{
		Name: "metafixture",
		Doc:  "meta-test fixture: reports selected function declarations",
		Run: func(pass *lint.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if want["*"] || want[fd.Name.Name] {
						pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
}

// TestHarnessPassesWhenAligned is the positive control: diagnostics and
// expectations line up exactly, so the fake records nothing.
func TestHarnessPassesWhenAligned(t *testing.T) {
	ft := &fakeTB{}
	Run(ft, reportFuncs("Flagged"), "testdata/meta", "repro/internal/meta")
	if len(ft.errs) != 0 || len(ft.fatals) != 0 {
		t.Errorf("aligned run should be clean, got errs=%q fatals=%q", ft.errs, ft.fatals)
	}
}

// TestNeverFiringWantFails pins the harness's core guarantee: a // want
// comment that no diagnostic matches — an analyzer gone blind — fails
// the run rather than passing vacuously.
func TestNeverFiringWantFails(t *testing.T) {
	ft := &fakeTB{}
	Run(ft, reportFuncs(), "testdata/meta", "repro/internal/meta")
	if len(ft.errs) != 1 {
		t.Fatalf("want exactly one failure for the unmatched expectation, got %q", ft.errs)
	}
	if !strings.Contains(ft.errs[0], "expected diagnostic matching") ||
		!strings.Contains(ft.errs[0], "func Flagged") {
		t.Errorf("failure should name the unmatched expectation, got %q", ft.errs[0])
	}
}

// TestUnexpectedDiagnosticFails: a diagnostic with no matching want —
// a false positive the fixture did not sanction — must also fail.
func TestUnexpectedDiagnosticFails(t *testing.T) {
	ft := &fakeTB{}
	Run(ft, reportFuncs("*"), "testdata/meta", "repro/internal/meta")
	if len(ft.errs) != 1 {
		t.Fatalf("want exactly one failure for the surprise diagnostic, got %q", ft.errs)
	}
	if !strings.Contains(ft.errs[0], "unexpected diagnostic") ||
		!strings.Contains(ft.errs[0], "func Also") {
		t.Errorf("failure should name the surprise diagnostic, got %q", ft.errs[0])
	}
}

// TestBadWantRegexpIsFatal: a malformed expectation regexp must abort
// the fixture, not silently drop the expectation.
func TestBadWantRegexpIsFatal(t *testing.T) {
	ft := &fakeTB{}
	Run(ft, reportFuncs(), "testdata/badre", "repro/internal/badre")
	if len(ft.fatals) != 1 {
		t.Fatalf("want one fatal for the bad regexp, got fatals=%q errs=%q", ft.fatals, ft.errs)
	}
	if !strings.Contains(ft.fatals[0], "bad want regexp") {
		t.Errorf("fatal should identify the bad regexp, got %q", ft.fatals[0])
	}
}
