// Package meta is the lintest meta-test fixture. Its want comment is
// deliberately run against mismatched analyzers to prove the harness
// fails in both directions: an expectation nothing fires (the analyzer
// went blind) and a diagnostic nothing expected (the analyzer grew a
// false positive).
package meta

func Flagged() {} // want "func Flagged"

func Also() {}
