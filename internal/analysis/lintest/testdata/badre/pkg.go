// Package badre carries a want comment whose regexp does not compile;
// the harness must refuse the whole fixture rather than silently skip
// the expectation.
package badre

func F() {} // want "(unclosed"
