package floatfmt_test

import (
	"testing"

	"repro/internal/analysis/floatfmt"
	"repro/internal/analysis/lintest"
)

// TestOutputPackage runs floatfmt over a package inside its target
// set: %v/%g on floats (including named float types, star widths and
// explicit indexes) and the Sprint default are flagged; %f, explicit
// strconv, non-float operands, non-constant formats, and a justified
// directive pass.
func TestOutputPackage(t *testing.T) {
	lintest.Run(t, floatfmt.Analyzer, "testdata/out", "repro/internal/report")
}

// TestOffTargetPackageIsExempt type-checks the same calls outside the
// output-path set and expects silence.
func TestOffTargetPackageIsExempt(t *testing.T) {
	lintest.Run(t, floatfmt.Analyzer, "testdata/offtarget", "repro/internal/mem")
}
