// Package floatfmt guards the exact-float-round-trip contract of the
// output layer: golden byte-identity requires every float that reaches
// serialized output to go through strconv.FormatFloat (or the report
// helpers built on it — report.F, the Dataset cell renderers), never
// through fmt's reflective default formatting. %v and %g pick a
// representation for you; the repo's convention is that float rendering
// in output paths is always explicit, so a formatting change can never
// hide inside a verb default. The fmt.Sprint family applies its %v
// default to every operand and is flagged the same way.
//
// The analyzer flags statically float-typed operands (float32/float64,
// or named types with a float underlying) bound to %v/%g/%G verbs — or
// passed to the Sprint family — in the output and canonical-encoding
// packages.
package floatfmt

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis/lint"
)

// TargetPackages are the output, emitter, and canonical-encoding paths.
var TargetPackages = []string{
	"repro/internal/report",
	"repro/internal/scenario",
	"repro/internal/experiments",
	"repro/internal/core",
	"repro/cmd/smtsimd",
	"repro/cmd/experiments",
	"repro/cmd/smtload",
	"repro/cmd/smtsim",
}

// formatFns maps fmt's formatting functions to the index of their
// format-string argument.
var formatFns = map[string]int{
	"Sprintf": 0, "Printf": 0, "Errorf": 0,
	"Fprintf": 1, "Appendf": 1,
}

// printFns maps fmt's default-formatting functions to the index of
// their first operand.
var printFns = map[string]int{
	"Sprint": 0, "Sprintln": 0, "Print": 0, "Println": 0,
	"Fprint": 1, "Fprintln": 1, "Append": 1, "Appendln": 1,
}

// Analyzer is the floatfmt check.
var Analyzer = &lint.Analyzer{
	Name: "floatfmt",
	Doc: "flag %v/%g/fmt.Sprint on float operands in output paths " +
		"(golden byte-identity requires strconv.FormatFloat or the report helpers)",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !lint.PathIn(pass.Pkg.Path(), TargetPackages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.FuncObj(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
				return true
			}
			if idx, ok := formatFns[fn.Name()]; ok {
				checkFormat(pass, call, fn.Name(), idx)
			} else if idx, ok := printFns[fn.Name()]; ok {
				for _, arg := range call.Args[min(idx, len(call.Args)):] {
					if isFloat(pass.TypesInfo.TypeOf(arg)) {
						pass.Reportf(arg.Pos(),
							"fmt.%s formats float %s with the %%v default; use strconv.FormatFloat or the report helpers",
							fn.Name(), pass.ExprString(arg))
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkFormat maps verbs to operands for one Printf-style call and
// flags float operands bound to %v, %g or %G.
func checkFormat(pass *lint.Pass, call *ast.CallExpr, name string, fmtIdx int) {
	if len(call.Args) <= fmtIdx {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[fmtIdx]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format string: nothing to map
	}
	format := constant.StringVal(tv.Value)
	operands := call.Args[fmtIdx+1:]
	if call.Ellipsis.IsValid() {
		return // args... slice expansion: operands are not individually typed here
	}
	for _, bound := range verbOperands(format, len(operands)) {
		if bound.verb != 'v' && bound.verb != 'g' && bound.verb != 'G' {
			continue
		}
		arg := operands[bound.operand]
		if isFloat(pass.TypesInfo.TypeOf(arg)) {
			pass.Reportf(arg.Pos(),
				"fmt.%s formats float %s with %%%s; use strconv.FormatFloat or the report helpers",
				name, pass.ExprString(arg), string(bound.verb))
		}
	}
}

// verbBinding pairs one conversion verb with the operand index it
// consumes.
type verbBinding struct {
	verb    rune
	operand int
}

// verbOperands scans a Printf format string and returns the verb bound
// to each operand, implementing enough of fmt's syntax to be exact on
// this repo's format strings: flags, numeric width/precision, *
// arguments, %% literals, and [n] explicit indexes.
func verbOperands(format string, nargs int) []verbBinding {
	var out []verbBinding
	arg := 0
	take := func(verb rune) {
		if arg < nargs {
			out = append(out, verbBinding{verb, arg})
		}
		arg++
	}
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// flags
		for i < len(format) && strings.IndexByte("+-# 0", format[i]) >= 0 {
			i++
		}
		// width
		if i < len(format) && format[i] == '*' {
			take('*')
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				take('*')
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		// explicit argument index
		if i < len(format) && format[i] == '[' {
			j := i + 1
			n := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i < len(format) {
			take(rune(format[i]))
			i++
		}
	}
	return out
}

// isFloat reports whether t's core type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
