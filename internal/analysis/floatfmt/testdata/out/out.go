// Package out exercises floatfmt inside its target set: the test
// harness type-checks it as repro/internal/report.
package out

import (
	"fmt"
	"strconv"
)

// ipc is a named float type; the check looks through to the
// underlying kind.
type ipc float64

// render mixes flagged and sanctioned formatting in one output path.
func render(f float64, i int, s string) []string {
	return []string{
		fmt.Sprintf("%v", f), // want "formats float f with %v"
		fmt.Sprintf("%g", f), // want "formats float f with %g"
		fmt.Sprintf("%.3f", f),
		fmt.Sprintf("%v %d", s, i),
		fmt.Sprint(f), // want "formats float f with the %v default"
		strconv.FormatFloat(f, 'g', -1, 64),
		fmt.Sprintf("%*v", i, f),   // want "formats float f with %v"
		fmt.Sprintf("%[2]v", s, f), // want "formats float f with %v"
		fmt.Sprintf("%d %[1]d", i), // index rebinding on ints: fine
	}
}

// renderNamed checks that named float types are still floats.
func renderNamed(x ipc) string {
	return fmt.Sprintf("%v", x) // want "formats float x with %v"
}

// dyn has a non-constant format string: verbs cannot be mapped
// statically, so the call passes.
func dyn(format string, f float64) string {
	return fmt.Sprintf(format, f)
}

// justified carries a directive: a debug dump that never reaches
// golden output.
func justified(f float64) string {
	//lint:floatfmt debug-only dump, never reaches golden output
	return fmt.Sprintf("%v", f) // want-suppressed "formats float f with %v"
}
