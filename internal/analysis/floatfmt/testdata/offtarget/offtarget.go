// Package offtarget holds the same %v-on-float calls as the target
// case but is type-checked outside floatfmt's output-path set: the
// analyzer must stay silent.
package offtarget

import "fmt"

func render(f float64) string {
	return fmt.Sprintf("%v", f)
}
