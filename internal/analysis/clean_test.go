package analysis

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/lint"
)

// moduleRoot locates the repository root from the test's working
// directory via the go tool.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// TestLintClean is the repo-wide gate: the whole tree must produce
// zero unsuppressed diagnostics from the full analyzer suite. Every
// in-tree finding is either fixed or carries a justified //lint:
// directive, and this test keeps it that way.
func TestLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole tree")
	}
	pkgs, err := lint.Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.Run(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d)
	}
	if t.Failed() {
		t.Log("fix the findings above or add a justified //lint:<analyzer> directive (see internal/analysis/README.md)")
	}
}

// TestSeededViolationsAreCaught builds a throwaway module that commits
// the headline sins — a raw map range in a serializing package, a
// wall-clock read in a simulation package, an unbalanced mutex, a
// cyclic lock-acquisition order and a fire-and-forget goroutine — and
// checks the suite actually fires on each. TestLintClean alone would
// also pass if the analyzers went blind; this test pins their teeth.
func TestSeededViolationsAreCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a scratch module")
	}
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro\n\ngo 1.24\n")
	write("internal/report/bad.go", `package report

import "fmt"

// Emit leaks map iteration order straight into serialized output.
func Emit(rows map[string]float64) string {
	var out string
	for name, v := range rows {
		out += fmt.Sprintf("%s=%f\n", name, v)
	}
	return out
}
`)
	write("internal/core/clock.go", `package core

import "time"

// Stamp reads the wall clock inside the simulator.
func Stamp() int64 {
	return time.Now().UnixNano()
}
`)
	write("internal/simcache/bad.go", `package simcache

import "sync"

type store struct {
	mu   sync.Mutex
	rows map[string]int
}

type index struct {
	mu   sync.Mutex
	keys []string
}

// Leak holds the lock on the early return.
func (s *store) Leak(k string) int {
	s.mu.Lock()
	v, ok := s.rows[k]
	if !ok {
		return 0
	}
	s.mu.Unlock()
	return v
}

// AB and BA acquire the two locks in opposite orders.
func AB(s *store, ix *index) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix.mu.Lock()
	ix.keys = ix.keys[:0]
	ix.mu.Unlock()
}

func BA(s *store, ix *index) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	s.mu.Lock()
	s.rows = nil
	s.mu.Unlock()
}

// Spawn starts a goroutine nothing ever reaps.
func Spawn(s *store) {
	go func() {
		s.mu.Lock()
		s.rows = map[string]int{}
		s.mu.Unlock()
	}()
}
`)
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.Run(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, d := range res.Diagnostics {
		found[d.Analyzer] = true
	}
	for _, want := range []string{"detrange", "nowallclock", "lockbalance", "lockorder", "gorolife"} {
		if !found[want] {
			t.Errorf("seeded violation for %s not reported; diagnostics: %v", want, res.Diagnostics)
		}
	}
}
