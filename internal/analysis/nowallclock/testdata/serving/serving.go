// Package serving holds the same wall-clock reads as the sim case but
// is type-checked as a serving-layer package, which legitimately reads
// clocks (LRU recency, latency measurement) and is outside the target
// set: the analyzer must stay silent.
package serving

import "time"

func stamp() int64 {
	return time.Now().UnixNano()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
