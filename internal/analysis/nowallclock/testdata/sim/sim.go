// Package sim exercises nowallclock inside its target set: the test
// harness type-checks it as repro/internal/core.
package sim

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock: the canonical violation.
func stamp() int64 {
	t := time.Now() // want "time.Now in simulation package"
	return t.UnixNano()
}

// elapsed measures wall time, equally forbidden.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in simulation package"
}

// ticker smuggles a clock in through a constructor.
func ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want "time.NewTicker in simulation package"
}

// draw uses the global math/rand stream, which is unseeded and
// unreplayable.
func draw() int {
	return rand.Intn(6) // want "math/rand in simulation package"
}

// durations only touches time's types and constants, which carry no
// wall-clock state: allowed.
func durations() time.Duration {
	return 5 * time.Millisecond
}

// justified carries a directive: timing that feeds a diagnostic
// counter and can never reach a Result.
func justified() time.Time {
	//lint:nowallclock diagnostic-only timing that never reaches a Result
	return time.Now() // want-suppressed "time.Now in simulation package"
}
