package nowallclock_test

import (
	"testing"

	"repro/internal/analysis/lintest"
	"repro/internal/analysis/nowallclock"
)

// TestSimulationPackage runs nowallclock over a package inside its
// target set: clock reads and global math/rand are flagged, duration
// arithmetic passes, and a justified directive suppresses.
func TestSimulationPackage(t *testing.T) {
	lintest.Run(t, nowallclock.Analyzer, "testdata/sim", "repro/internal/core")
}

// TestServingPackageIsExempt type-checks the same clock reads under a
// serving-layer import path and expects silence.
func TestServingPackageIsExempt(t *testing.T) {
	lintest.Run(t, nowallclock.Analyzer, "testdata/serving", "repro/internal/simcache")
}
