// Package nowallclock forbids wall-clock reads and global math/rand use
// in the simulation packages, where internal/rng and the simulated cycle
// counter are the only sanctioned sources of nondeterminism. Every
// result must be a pure function of (workload, canonical config): one
// time.Now or rand.Intn in a simulation path silently breaks replay,
// fingerprint-addressed caching, and cross-machine determinism.
//
// The serving and storage layers (simcache, resultstore, tracestore,
// sched, the daemons) legitimately read clocks — LRU recency, latency
// measurement — and are simply not in the target set.
package nowallclock

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lint"
)

// TargetPackages are the simulation packages, where results must be
// pure functions of their inputs.
var TargetPackages = []string{
	"repro/internal/core",
	"repro/internal/pipeline",
	"repro/internal/mem",
	"repro/internal/trace",
	"repro/internal/isa",
	"repro/internal/policy",
	"repro/internal/regfile",
	"repro/internal/runahead",
	"repro/internal/rescontrol",
	"repro/internal/rng",
	"repro/internal/stats",
	"repro/internal/metrics",
	"repro/internal/workload",
	"repro/internal/scenario",
	"repro/internal/experiments",
	"repro/internal/report",
}

// clockFuncs are the forbidden package-time functions: wall-clock reads
// plus the timer constructors that smuggle one in.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// Analyzer is the nowallclock check.
var Analyzer = &lint.Analyzer{
	Name: "nowallclock",
	Doc: "forbid time.Now/Since/timers and global math/rand in simulation packages " +
		"(internal/rng and the cycle counter are the only sanctioned nondeterminism sources)",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !lint.PathIn(pass.Pkg.Path(), TargetPackages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[identOf(sel.X)].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if clockFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"time.%s in simulation package %s: results must be pure functions of (workload, config); derive timing from the cycle counter",
						sel.Sel.Name, pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(),
					"math/rand in simulation package %s: use internal/rng so every stream is seeded and replayable",
					pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

// identOf unwraps a selector receiver to its identifier, if any.
func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}
