// Seeded lock-balance shapes: each // want line is a violation the
// analyzer must flag, everything else is an idiomatic pattern it must
// stay silent on.
package locktest

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// Violation: the early return leaks the lock.
func (c *counter) leakOnEarlyReturn(fail bool) bool {
	c.mu.Lock() // want "c.mu.Lock\(\) is not released on every path"
	if fail {
		return false
	}
	c.mu.Unlock()
	return true
}

// Violation: falling off the end may leave the lock held.
func (c *counter) maybeLeak(cond bool) {
	c.mu.Lock() // want "released on some paths out of the function but not all"
	if cond {
		c.mu.Unlock()
	}
}

// Violation: sync.Mutex is not reentrant.
func (c *counter) doubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want "sync mutexes are not reentrant"
	c.mu.Unlock()
}

// Violation: unlock before any lock, in a function that locks later.
func (c *counter) unlockFirst() {
	c.mu.Unlock() // want "c.mu is not locked on this path"
	c.mu.Lock()
	c.mu.Unlock()
}

// Violation: a panic exit not covered by a deferred unlock.
func (c *counter) panicPath(v int) {
	c.mu.Lock() // want "not released on every path"
	if v < 0 {
		panic("negative")
	}
	c.n = v
	c.mu.Unlock()
}

// Violation inside a function literal: closures balance on their own.
var leaky = func(c *counter) {
	c.mu.Lock() // want "not released on every path"
}

// Suppressed: a locking accessor that hands ownership to its caller.
func (c *counter) lockAndGet() *int {
	//lint:lockbalance ownership transfers to the caller, released by putBack
	c.mu.Lock() // want-suppressed "not released on every path"
	return &c.n
}

func (c *counter) putBack() {
	//lint:lockbalance releases the lock lockAndGet handed to the caller
	c.mu.Unlock()
}

// --- Idiomatic shapes the analyzer must accept silently. ---

// The canonical defer covers every exit, panics included.
func (c *counter) deferred(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v < 0 {
		panic("negative")
	}
	c.n = v
}

// Explicit unlock on each path out.
func (c *counter) eachPath(cond bool) int {
	c.mu.Lock()
	if cond {
		n := c.n
		c.mu.Unlock()
		return n
	}
	c.mu.Unlock()
	return 0
}

// Unlock inside a deferred function literal.
func (c *counter) deferredClosure() {
	c.mu.Lock()
	defer func() {
		c.n = 0
		c.mu.Unlock()
	}()
	c.n++
}

// Conditional release then return, re-release on the main path — the
// shape of simcache's Abandon.
func (c *counter) abandonStyle(stop bool) {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}

// A defer registered after a lock-free early return.
func (c *counter) lateDefer(skip bool) {
	if skip {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Lock and unlock balanced inside a loop body.
func (c *counter) loop(xs []int) {
	for _, x := range xs {
		c.mu.Lock()
		c.n += x
		c.mu.Unlock()
	}
}

// A closure returned by a method balances independently of the method.
func (c *counter) spawn() func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// The read and write sides of an RWMutex are independent states.
func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) set(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = v
}

// Violation: the not-found return leaks the read lock.
func (t *table) leakRead(k string) (int, bool) {
	t.mu.RLock() // want "t.mu.RLock\(\) is not released on every path"
	v, ok := t.m[k]
	if !ok {
		return 0, false
	}
	t.mu.RUnlock()
	return v, true
}
