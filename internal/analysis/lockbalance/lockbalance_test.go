package lockbalance_test

import (
	"testing"

	"repro/internal/analysis/lintest"
	"repro/internal/analysis/lockbalance"
)

// TestLockBalance runs the analyzer over the seeded shapes: leaked
// locks (early return, maybe-paths, panic exits, closures, read side
// of an RWMutex), double-Lock, unlock-of-unlocked, a suppressed
// ownership handoff — and the idiomatic patterns (defer, per-path
// unlock, deferred closure, Abandon-style conditional release, loops)
// that must pass silently.
func TestLockBalance(t *testing.T) {
	lintest.Run(t, lockbalance.Analyzer, "testdata/pkg", "repro/internal/locktest")
}
