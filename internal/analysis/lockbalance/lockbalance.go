// Package lockbalance proves, per function, that every mutex acquired
// is released on every path out of the function — early returns and
// panic exits included — by solving the lock-state dataflow problem
// over the function's control-flow graph (internal/analysis/lint's CFG
// + forward solver). It is the flow-sensitive complement to -race: the
// race detector observes executions, this analyzer covers paths the
// tests never take.
//
// Three violation shapes are reported:
//
//   - a path out of the function (a return, a fall-off-the-end, or a
//     panic not covered by a deferred Unlock) on which the mutex is
//     still — or may still be — held;
//   - a second Lock of a mutex already held on the path (self-deadlock:
//     sync.Mutex is not reentrant);
//   - an Unlock of a mutex not locked on the path, in a function that
//     locks it elsewhere (a fatal "unlock of unlocked mutex" at
//     runtime). Functions that only ever unlock are out of scope: they
//     release a caller's lock by contract, which this per-function
//     analysis cannot see.
//
// Lock identity is the receiver's root variable plus field chain
// ("c.mu"), resolved through the type checker; receivers with no
// stable per-function name (map/slice elements, call results) are not
// tracked. Function literals are analyzed as functions of their own:
// a lock taken inside a closure must balance inside the closure.
// Deferred releases — `defer mu.Unlock()` directly or inside a
// deferred literal — cover every exit they are registered before,
// panics included.
//
// A function that intentionally returns holding a lock (a locking
// accessor handing ownership to its caller) carries a justified
// //lint:lockbalance directive.
package lockbalance

import (
	"go/ast"
	"sort"

	"repro/internal/analysis/lint"
	"repro/internal/analysis/lockset"
)

// Analyzer is the lockbalance check.
var Analyzer = &lint.Analyzer{
	Name: "lockbalance",
	Doc: "flag mutexes not released on every path out of a function " +
		"(early returns and panics included), double-Lock on a path, and Unlock of an unheld mutex",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc solves the lock-state flow problem for one function body
// and reports the three violation shapes. Nested function literals are
// skipped here (the walk in run visits them as their own functions).
func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	flow := lockset.NewFlow(pass.TypesInfo)
	g := lint.NewCFG(body)
	in, out := lint.Forward[lockset.Fact](g, flow)
	if len(flow.Meta) == 0 {
		return
	}

	// The unlock-of-unheld report is scoped to keys the function also
	// acquires somewhere (see package doc); flow.Acquired is that set.
	locksOf := flow.Acquired

	// Reporting sweep: re-apply each reachable block's transfer on its
	// stabilized input fact, visiting every operation with its before
	// state.
	for _, b := range g.Blocks {
		fact, ok := in[b]
		if !ok {
			continue // unreachable
		}
		fact = clone(fact)
		for _, n := range b.Nodes {
			flow.Apply(n, &fact, func(op lockset.Op, before lockset.Hold, held bool) {
				display := op.Path + "." + op.Kind.String()
				switch {
				case op.Kind.Acquires() && held && !before.Maybe:
					pass.Reportf(op.Call.Pos(),
						"%s() while %s is already held on this path (acquired at %s); sync mutexes are not reentrant",
						display, op.Path, pass.Fset.Position(before.Pos))
				case !op.Kind.Acquires() && !held && hasKey(locksOf, op.Kind.Key(op.Path)):
					if !fact.Deferred[op.Kind.Key(op.Path)] {
						pass.Reportf(op.Call.Pos(),
							"%s() but %s is not locked on this path (fatal \"unlock of unlocked mutex\" at runtime)",
							display, op.Path)
					}
				}
			})
		}
	}

	// Exit sweep: any key still (maybe) held at an exit block, without a
	// deferred release covering it, escapes the function locked. Report
	// once per key, at its acquisition site.
	type escape struct {
		key   string
		maybe bool
	}
	reported := map[string]bool{}
	var escapes []escape
	for _, b := range g.Exits() {
		fact, ok := out[b]
		if !ok {
			continue // unreachable exit (dead code after return)
		}
		for key, hold := range fact.Held {
			if fact.Deferred[key] || reported[key] {
				continue
			}
			reported[key] = true
			escapes = append(escapes, escape{key: key, maybe: hold.Maybe})
		}
	}
	sort.Slice(escapes, func(i, j int) bool { return escapes[i].key < escapes[j].key })
	for _, e := range escapes {
		// Anchor the report at the representative acquisition site; a key
		// held at exit was necessarily acquired, so the lookup succeeds.
		op, ok := flow.Acquired[e.key]
		if !ok {
			op = flow.Meta[e.key]
		}
		display := op.Path + "." + op.Kind.String()
		if e.maybe {
			pass.Reportf(op.Call.Pos(),
				"%s() is released on some paths out of the function but not all; add the missing release or a defer",
				display)
		} else {
			pass.Reportf(op.Call.Pos(),
				"%s() is not released on every path out of the function; pair it with an Unlock or defer on each exit",
				display)
		}
	}
}

func hasKey(m map[string]lockset.Op, key string) bool {
	_, ok := m[key]
	return ok
}

func clone(f lockset.Fact) lockset.Fact {
	out := lockset.Fact{Held: map[string]lockset.Hold{}, Deferred: map[string]bool{}}
	for k, v := range f.Held {
		out.Held[k] = v
	}
	for k := range f.Deferred {
		out.Deferred[k] = true
	}
	return out
}
