// Package analysis assembles the smtlint suite: the custom analyzers
// that mechanically enforce this repo's determinism, cancellation and
// output-stability contracts. See README.md in this directory for the
// invariant each analyzer guards, the packages it applies to, and how
// to suppress a finding with justification.
package analysis

import (
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/detrange"
	"repro/internal/analysis/floatfmt"
	"repro/internal/analysis/gorolife"
	"repro/internal/analysis/lint"
	"repro/internal/analysis/lockbalance"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/nowallclock"
	"repro/internal/analysis/panicfree"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		ctxflow.Analyzer,
		detrange.Analyzer,
		floatfmt.Analyzer,
		gorolife.Analyzer,
		lockbalance.Analyzer,
		lockorder.Analyzer,
		nowallclock.Analyzer,
		panicfree.Analyzer,
	}
}
