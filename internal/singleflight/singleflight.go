// Package singleflight provides duplicate-suppressed, memoizing call
// coordination: the first requester of a key computes its value, every
// other requester joins that computation's result. Unlike the classic
// singleflight, results are retained — the group doubles as a cache —
// which is exactly what the experiment harness needs (a simulation is
// deterministic, so its first result is its only result).
package singleflight

import "sync"

// Call is one key's in-flight or completed computation.
type Call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Fulfill publishes the result, waking all waiters. The creator of the
// call (the Entry caller that saw created=true) must call it exactly once.
func (c *Call[V]) Fulfill(v V, err error) {
	c.val, c.err = v, err
	close(c.done)
}

// Wait blocks until Fulfill and returns the published result.
func (c *Call[V]) Wait() (V, error) {
	<-c.done
	return c.val, c.err
}

// Group coordinates calls keyed by K. The zero value is ready to use.
type Group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*Call[V]
}

// Entry returns key's call, creating it if absent. created reports
// whether this caller registered the call and therefore owns computing
// and Fulfilling it; all other callers just Wait.
func (g *Group[K, V]) Entry(key K) (c *Call[V], created bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = map[K]*Call[V]{}
	}
	if c, ok := g.m[key]; ok {
		return c, false
	}
	c = &Call[V]{done: make(chan struct{})}
	g.m[key] = c
	return c, true
}

// Len returns the number of registered keys (in flight or completed).
func (g *Group[K, V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
