package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSingleComputationManyWaiters(t *testing.T) {
	var g Group[string, int]
	var computed atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, created := g.Entry("k")
			if created {
				computed.Add(1)
				c.Fulfill(42, nil)
			}
			v, err := c.Wait()
			if v != 42 || err != nil {
				t.Errorf("Wait = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestErrorsMemoized(t *testing.T) {
	var g Group[int, string]
	boom := errors.New("boom")
	c, created := g.Entry(7)
	if !created {
		t.Fatal("first Entry not created")
	}
	c.Fulfill("", boom)
	c2, created := g.Entry(7)
	if created {
		t.Fatal("second Entry re-created")
	}
	if _, err := c2.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
