package policy

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// memTrace builds a miss-heavy trace with dependent work (the STALL/FLUSH
// trigger pattern).
func memTrace(n int) *trace.Trace {
	insts := make([]isa.Inst, n)
	for i := range insts {
		if i%8 == 0 {
			insts[i] = isa.Inst{
				PC: 0x400000 + uint64(4*(i%256)), Op: isa.OpLoad,
				Dst: isa.IntReg(1 + (i/8)%8), Src1: isa.IntReg(28),
				Addr: 0x10_0000_0000 + uint64(i)*4096,
			}
		} else {
			insts[i] = isa.Inst{
				PC: 0x400000 + uint64(4*(i%256)), Op: isa.OpIntAlu,
				Dst: isa.IntReg(10 + i%10), Src1: isa.IntReg(1 + (i/8)%8),
				Src2: isa.IntReg(29),
			}
		}
	}
	return trace.FromInsts("mem", trace.ClassMEM, insts)
}

// ilpTrace builds an independent ALU trace.
func ilpTrace(n int) *trace.Trace {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{
			PC: 0x400000 + uint64(4*(i%256)), Op: isa.OpIntAlu,
			Dst: isa.IntReg(1 + i%20), Src1: isa.IntReg(28), Src2: isa.IntReg(29),
		}
	}
	return trace.FromInsts("ilp", trace.ClassILP, insts)
}

func runCore(t *testing.T, pol pipeline.Policy, traces []*trace.Trace, cycles int) *pipeline.Core {
	t.Helper()
	c, err := pipeline.New(pipeline.DefaultConfig(), traces, pol)
	if err != nil {
		t.Fatal(err)
	}
	c.WarmupICache()
	c.SetParanoid(true)
	for i := 0; i < cycles; i++ {
		c.Step()
	}
	return c
}

func TestNames(t *testing.T) {
	if (RoundRobin{}).Name() != "RR" || (Stall{}).Name() != "STALL" || NewFlush().Name() != "FLUSH" {
		t.Fatal("policy names wrong")
	}
}

func TestRoundRobinRotates(t *testing.T) {
	c, err := pipeline.New(pipeline.DefaultConfig(),
		[]*trace.Trace{ilpTrace(100), ilpTrace(100), ilpTrace(100)}, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	a := RoundRobin{}.FetchPriority(c, nil)
	c.Step()
	b := RoundRobin{}.FetchPriority(c, nil)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("priority lengths %d/%d", len(a), len(b))
	}
	if a[0] == b[0] {
		t.Fatal("round robin did not rotate")
	}
}

// TestRoundRobinLargeCycle is the regression test for the uint64→int
// truncation in FetchPriority: past 2^63 the old int(c.Cycle()) % n went
// negative, emitting out-of-range (negative) thread indices. The
// priority list must stay a permutation of the thread ids at any cycle
// count, and consecutive cycles must still rotate by one.
func TestRoundRobinLargeCycle(t *testing.T) {
	c, err := pipeline.New(pipeline.DefaultConfig(),
		[]*trace.Trace{ilpTrace(100), ilpTrace(100), ilpTrace(100)}, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cycle := range []uint64{1<<63 + 5, math.MaxUint64 - 1, math.MaxUint64} {
		c.SetCycle(cycle)
		order := RoundRobin{}.FetchPriority(c, nil)
		if len(order) != 3 {
			t.Fatalf("cycle %d: priority length %d, want 3", cycle, len(order))
		}
		seen := map[int]bool{}
		for _, tid := range order {
			if tid < 0 || tid >= 3 {
				t.Fatalf("cycle %d: out-of-range thread index %d in %v", cycle, tid, order)
			}
			seen[tid] = true
		}
		if len(seen) != 3 {
			t.Fatalf("cycle %d: priority %v is not a permutation", cycle, order)
		}
		if want := int(cycle % 3); order[0] != want {
			t.Errorf("cycle %d: rotation starts at %d, want %d", cycle, order[0], want)
		}
	}
}

func TestRoundRobinNoStarvation(t *testing.T) {
	c := runCore(t, RoundRobin{}, []*trace.Trace{ilpTrace(500), ilpTrace(500)}, 3000)
	if c.Committed(0) == 0 || c.Committed(1) == 0 {
		t.Fatal("starvation under round robin")
	}
}

func TestStallGatesMissingThread(t *testing.T) {
	// Under STALL, the MEM thread must stop fetching while its miss is
	// outstanding; the ILP partner must do better than under plain ICOUNT.
	traces := func() []*trace.Trace {
		return []*trace.Trace{ilpTrace(1000), memTrace(4000)}
	}
	icount := runCore(t, pipeline.ICount{}, traces(), 15000)
	stall := runCore(t, Stall{}, traces(), 15000)
	if stall.Committed(0) <= icount.Committed(0) {
		t.Fatalf("ILP partner under STALL (%d) not better than ICOUNT (%d)",
			stall.Committed(0), icount.Committed(0))
	}
}

func TestStallFiltersPriorityList(t *testing.T) {
	c, err := pipeline.New(pipeline.DefaultConfig(),
		[]*trace.Trace{memTrace(2000), ilpTrace(500)}, Stall{})
	if err != nil {
		t.Fatal(err)
	}
	c.WarmupICache()
	// Run until the MEM thread has a pending miss, then check the filter.
	for i := 0; i < 5000; i++ {
		c.Step()
		if c.PendingL2Miss(0) {
			order := (Stall{}).FetchPriority(c, nil)
			for _, tid := range order {
				if tid == 0 {
					t.Fatal("thread with pending miss still in fetch list")
				}
			}
			return
		}
	}
	t.Fatal("MEM thread never had a pending miss")
}

func TestFlushReleasesAndRestarts(t *testing.T) {
	// FLUSH must (a) run correctly under paranoid checks, (b) squash work
	// (visible as squashed instructions), and (c) beat ICOUNT for the ILP
	// partner.
	traces := func() []*trace.Trace {
		return []*trace.Trace{ilpTrace(1000), memTrace(4000)}
	}
	icount := runCore(t, pipeline.ICount{}, traces(), 15000)
	flush := runCore(t, NewFlush(), traces(), 15000)
	if flush.Stats(1).Squashed.Value() == 0 {
		t.Fatal("FLUSH squashed nothing on a missing thread")
	}
	if flush.Committed(0) <= icount.Committed(0) {
		t.Fatalf("ILP partner under FLUSH (%d) not better than ICOUNT (%d)",
			flush.Committed(0), icount.Committed(0))
	}
}

func TestFlushBeatsStallForPartner(t *testing.T) {
	// The paper's Figure 1 ordering (throughput): FLUSH > STALL for mixed
	// workloads, because held resources under STALL still choke partners.
	traces := func() []*trace.Trace {
		return []*trace.Trace{ilpTrace(1000), memTrace(4000)}
	}
	stall := runCore(t, Stall{}, traces(), 20000)
	flush := runCore(t, NewFlush(), traces(), 20000)
	st := stall.CommittedTotal()
	fl := flush.CommittedTotal()
	if float64(fl) < 0.9*float64(st) {
		t.Fatalf("FLUSH total (%d) far below STALL (%d)", fl, st)
	}
}

func TestFlushedThreadStillProgresses(t *testing.T) {
	c := runCore(t, NewFlush(), []*trace.Trace{memTrace(2000)}, 30000)
	if c.Committed(0) == 0 {
		t.Fatal("flushed thread starved")
	}
}
