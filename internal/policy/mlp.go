package policy

import (
	"repro/internal/pipeline"
)

// MLPAware is the memory-level-parallelism-aware fetch policy of Eyerman &
// Eeckhout (HPCA 2007), the related work the paper contrasts RaT against
// (§2): on a long-latency miss, a per-load MLP predictor decides how many
// *more* instructions the thread may fetch — just enough to expose the
// miss cluster the predictor has seen follow this load before — and then
// the thread stalls until the miss resolves.
//
// The predictor's reach is bounded by hardware (the long-latency shift
// register); the paper's criticism is exactly that bound: distant MLP
// beyond MaxSpan can never be exposed, whereas a runahead thread keeps
// going for the whole memory latency. This implementation preserves that
// limitation deliberately.
type MLPAware struct {
	// MinSpan and MaxSpan bound the predicted fetch-ahead distance in
	// instructions; MaxSpan models the shift-register length.
	MinSpan, MaxSpan uint64

	table map[uint64]uint64 // load PC -> predicted miss-cluster span

	// Per-thread gating state.
	active  [8]bool
	gateSeq [8]uint64 // fetch allowed while cursor <= gateSeq
	trigPC  [8]uint64
	trigSeq [8]uint64
}

// NewMLPAware returns the policy with a 256-instruction maximum span.
func NewMLPAware() *MLPAware {
	return &MLPAware{MinSpan: 32, MaxSpan: 256, table: map[uint64]uint64{}}
}

// Name implements pipeline.Policy.
func (*MLPAware) Name() string { return "MLP" }

// predict returns the fetch-ahead span for a trigger load.
func (m *MLPAware) predict(pc uint64) uint64 {
	span, ok := m.table[pc]
	if !ok || span < m.MinSpan {
		span = m.MinSpan
	}
	if span > m.MaxSpan {
		span = m.MaxSpan
	}
	return span
}

// FetchPriority implements pipeline.Policy: ICOUNT order, with threads
// past their MLP window gated while their miss is outstanding.
func (m *MLPAware) FetchPriority(c *pipeline.Core, buf []int) []int {
	ordered := c.ThreadsByICount(buf)
	kept := ordered[:0]
	for _, tid := range ordered {
		if m.active[tid&7] {
			if !c.PendingL2Miss(tid) {
				m.active[tid&7] = false // miss resolved; window closed
			} else if c.FetchCursor(tid) > m.gateSeq[tid&7] {
				continue // MLP window exhausted: stall until resolution
			}
		}
		kept = append(kept, tid)
	}
	return kept
}

// CanDispatch implements pipeline.Policy.
func (*MLPAware) CanDispatch(*pipeline.Core, int) bool { return true }

// OnL2Miss implements pipeline.Policy: open (or train) the MLP window.
func (m *MLPAware) OnL2Miss(c *pipeline.Core, ld *pipeline.DynInst) {
	tid := ld.Thread() & 7
	if !m.active[tid] {
		// New trigger: open a window of the predicted span.
		m.active[tid] = true
		m.trigPC[tid] = ld.PC()
		m.trigSeq[tid] = ld.Seq()
		m.gateSeq[tid] = ld.Seq() + m.predict(ld.PC())
		return
	}
	// A further miss inside the window: the cluster extends at least this
	// far — train the trigger's span (saturating at the hardware bound).
	if ld.Seq() > m.trigSeq[tid] {
		span := ld.Seq() - m.trigSeq[tid] + m.MinSpan
		if span > m.MaxSpan {
			span = m.MaxSpan
		}
		if span > m.table[m.trigPC[tid]] {
			m.table[m.trigPC[tid]] = span
		}
		if g := m.trigSeq[tid] + span; g > m.gateSeq[tid] {
			m.gateSeq[tid] = g
		}
	}
}

// Tick implements pipeline.Policy.
func (*MLPAware) Tick(*pipeline.Core) {}
