// Package policy implements the paper's static instruction-fetch policies:
// Round-Robin, STALL and FLUSH (ICOUNT itself lives in the pipeline
// package as the built-in baseline; STALL and FLUSH layer on top of
// ICOUNT priority exactly as in Tullsen & Brown, "Handling long-latency
// loads in a simultaneous multithreading processor", MICRO 2001).
package policy

import (
	"repro/internal/pipeline"
)

// RoundRobin rotates fetch priority across threads each cycle — the
// original SMT fetch scheme, provided as a comparator.
type RoundRobin struct{}

// Name implements pipeline.Policy.
func (RoundRobin) Name() string { return "RR" }

// FetchPriority implements pipeline.Policy with a cycle-rotating order.
func (RoundRobin) FetchPriority(c *pipeline.Core, buf []int) []int {
	n := c.NumThreads()
	// Reduce in uint64 before converting: int(c.Cycle()) % n truncates on
	// 32-bit platforms and goes negative past 2^63, yielding out-of-range
	// thread indices. The modulus always fits an int.
	start := int(c.Cycle() % uint64(n))
	for i := 0; i < n; i++ {
		buf = append(buf, (start+i)%n)
	}
	return buf
}

// CanDispatch implements pipeline.Policy: no caps.
func (RoundRobin) CanDispatch(*pipeline.Core, int) bool { return true }

// OnL2Miss implements pipeline.Policy: no reaction.
func (RoundRobin) OnL2Miss(*pipeline.Core, *pipeline.DynInst) {}

// Tick implements pipeline.Policy.
func (RoundRobin) Tick(*pipeline.Core) {}

// Stall is the STALL policy: ICOUNT fetch priority, but a thread with a
// pending L2 miss stops fetching until the miss resolves. Its already-
// allocated resources are held — the under-utilization the paper calls
// out.
type Stall struct{}

// Name implements pipeline.Policy.
func (Stall) Name() string { return "STALL" }

// FetchPriority implements pipeline.Policy: ICOUNT order minus threads
// with outstanding long-latency misses.
func (Stall) FetchPriority(c *pipeline.Core, buf []int) []int {
	ordered := c.ThreadsByICount(buf)
	kept := ordered[:0]
	for _, tid := range ordered {
		if !c.PendingL2Miss(tid) {
			kept = append(kept, tid)
		}
	}
	return kept
}

// CanDispatch implements pipeline.Policy: no caps.
func (Stall) CanDispatch(*pipeline.Core, int) bool { return true }

// OnL2Miss implements pipeline.Policy: gating is purely via FetchPriority.
func (Stall) OnL2Miss(*pipeline.Core, *pipeline.DynInst) {}

// Tick implements pipeline.Policy.
func (Stall) Tick(*pipeline.Core) {}

// Flush is the FLUSH policy: on detecting a long-latency load, all of the
// thread's younger instructions are flushed (releasing every resource they
// held) and fetch stays blocked until the miss returns, paying a re-start
// latency. FLUSH trades re-fetch/re-execution energy for resource
// availability — the trade the paper's ED² analysis quantifies.
type Flush struct {
	// RestartPenalty is the extra fetch-block after the miss returns,
	// modelling pipeline refill.
	RestartPenalty uint64
}

// NewFlush returns FLUSH with the default restart penalty.
func NewFlush() Flush { return Flush{RestartPenalty: 4} }

// Name implements pipeline.Policy.
func (Flush) Name() string { return "FLUSH" }

// FetchPriority implements pipeline.Policy: like STALL, threads with
// pending misses do not fetch (their window was just flushed anyway).
func (Flush) FetchPriority(c *pipeline.Core, buf []int) []int {
	return Stall{}.FetchPriority(c, buf)
}

// CanDispatch implements pipeline.Policy: no caps.
func (Flush) CanDispatch(*pipeline.Core, int) bool { return true }

// OnL2Miss implements pipeline.Policy: flush younger instructions and
// block fetch until the load's data returns.
func (f Flush) OnL2Miss(c *pipeline.Core, ld *pipeline.DynInst) {
	c.FlushAfter(ld)
	c.BlockFetchUntil(ld.Thread(), ld.DoneAt()+f.RestartPenalty)
}

// Tick implements pipeline.Policy.
func (Flush) Tick(*pipeline.Core) {}
