package policy

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/trace"
)

func TestMLPAwareName(t *testing.T) {
	if NewMLPAware().Name() != "MLP" {
		t.Fatal("name")
	}
}

func TestMLPAwareWindowOpensAndGates(t *testing.T) {
	m := NewMLPAware()
	c, err := pipeline.New(pipeline.DefaultConfig(),
		[]*trace.Trace{memTrace(3000)}, m)
	if err != nil {
		t.Fatal(err)
	}
	c.WarmupICache()
	c.SetParanoid(true)
	gated := false
	for i := 0; i < 20000; i++ {
		c.Step()
		if m.active[0] && c.PendingL2Miss(0) && c.FetchCursor(0) > m.gateSeq[0] {
			// The policy must be excluding this thread from fetch.
			order := m.FetchPriority(c, nil)
			for _, tid := range order {
				if tid == 0 {
					t.Fatal("thread past its MLP window still fetching")
				}
			}
			gated = true
		}
	}
	if !gated {
		t.Log("gate never observed (window may always cover the cluster); acceptable")
	}
	if c.Committed(0) == 0 {
		t.Fatal("starved under MLP-aware fetch")
	}
}

func TestMLPAwareTrainsPredictor(t *testing.T) {
	m := NewMLPAware()
	c, err := pipeline.New(pipeline.DefaultConfig(),
		[]*trace.Trace{memTrace(3000)}, m)
	if err != nil {
		t.Fatal(err)
	}
	c.WarmupICache()
	for i := 0; i < 30000; i++ {
		c.Step()
	}
	if len(m.table) == 0 {
		t.Fatal("MLP predictor never trained")
	}
	for pc, span := range m.table {
		if span > m.MaxSpan {
			t.Fatalf("PC %#x trained beyond the hardware bound: %d", pc, span)
		}
	}
}

func TestMLPAwareBetweenStallAndUnbounded(t *testing.T) {
	// On a miss-clustered trace, MLP-aware fetch must beat plain STALL
	// (it exposes the cluster) — the reason the related work exists.
	traces := func() []*trace.Trace { return []*trace.Trace{memTrace(4000)} }
	stall := runCore(t, Stall{}, traces(), 30000)
	mlp := runCore(t, NewMLPAware(), traces(), 30000)
	if mlp.Committed(0) <= stall.Committed(0) {
		t.Fatalf("MLP-aware (%d) did not beat STALL (%d)",
			mlp.Committed(0), stall.Committed(0))
	}
}
