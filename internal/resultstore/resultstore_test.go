package resultstore

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
)

// randResult builds a randomized Result population, including float bit
// patterns (NaN, infinities, subnormals) the codec must carry exactly.
func randResult(r *rand.Rand) *core.Result {
	weirdFloats := []float64{0, math.NaN(), math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64, -0.0}
	f := func() float64 {
		if r.Intn(4) == 0 {
			return weirdFloats[r.Intn(len(weirdFloats))]
		}
		return r.NormFloat64() * math.Pow(10, float64(r.Intn(20)-10))
	}
	names := []string{"art", "mcf", "swim", "", "a workload with spaces", "x\x00y\xffz"}
	res := &core.Result{
		Workload:       names[r.Intn(len(names))],
		Policy:         core.PolicyKind(names[r.Intn(len(names))]),
		Cycles:         r.Uint64(),
		ExecutedTotal:  r.Uint64(),
		CommittedTotal: r.Uint64(),
		Truncated:      r.Intn(2) == 0,
	}
	for i, n := 0, r.Intn(5); i < n; i++ {
		res.Threads = append(res.Threads, core.ThreadResult{
			Benchmark:        names[r.Intn(len(names))],
			Committed:        r.Uint64(),
			IPC:              f(),
			Executed:         r.Uint64(),
			L2MissLoads:      r.Uint64(),
			RunaheadEpisodes: r.Uint64(),
			PseudoRetired:    r.Uint64(),
			Folded:           r.Uint64(),
			PrefetchesIssued: r.Uint64(),
			RegsNormal:       f(),
			RegsRunahead:     f(),
			CyclesInRunahead: r.Uint64(),
		})
	}
	return res
}

// sameResult compares two Results bit-exactly (floats by bit pattern, so
// NaN == NaN for the purpose of round-tripping).
func sameResult(a, b *core.Result) bool {
	fb := math.Float64bits
	if a.Workload != b.Workload || a.Policy != b.Policy || a.Cycles != b.Cycles ||
		a.ExecutedTotal != b.ExecutedTotal || a.CommittedTotal != b.CommittedTotal ||
		a.Truncated != b.Truncated || len(a.Threads) != len(b.Threads) {
		return false
	}
	for i := range a.Threads {
		x, y := &a.Threads[i], &b.Threads[i]
		if x.Benchmark != y.Benchmark || x.Committed != y.Committed ||
			fb(x.IPC) != fb(y.IPC) || x.Executed != y.Executed ||
			x.L2MissLoads != y.L2MissLoads || x.RunaheadEpisodes != y.RunaheadEpisodes ||
			x.PseudoRetired != y.PseudoRetired || x.Folded != y.Folded ||
			x.PrefetchesIssued != y.PrefetchesIssued || fb(x.RegsNormal) != fb(y.RegsNormal) ||
			fb(x.RegsRunahead) != fb(y.RegsRunahead) || x.CyclesInRunahead != y.CyclesInRunahead {
			return false
		}
	}
	return true
}

// TestCodecRoundTrip is the codec property test: encode→decode is the
// identity for randomized Result populations.
func TestCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		res := randResult(r)
		cfg := core.DefaultConfig()
		cfg.Seed = r.Uint64()
		data := encodeEntry(schemaVersion, cfg.Fingerprint(), res.Workload, cfg.Canonical(), res)
		got, err := decodeEntry(data, cfg.Fingerprint(), res.Workload, cfg.Canonical())
		if err != nil {
			t.Fatalf("iteration %d: decode: %v", i, err)
		}
		if !sameResult(res, got) {
			t.Fatalf("iteration %d: round trip changed the result:\n in: %+v\nout: %+v", i, res, got)
		}
	}
}

// TestSchemaCoversResultFields pins the field counts of core.Result and
// core.ThreadResult: if a field is added, this test fails, forcing the
// codec to learn the field AND schemaVersion to be bumped (stale entries
// must become misses, not silently decode without the new field).
func TestSchemaCoversResultFields(t *testing.T) {
	if n := reflect.TypeOf(core.Result{}).NumField(); n != 7 {
		t.Errorf("core.Result has %d fields, codec encodes 7: update encodeEntry/decodeEntry and bump schemaVersion", n)
	}
	if n := reflect.TypeOf(core.ThreadResult{}).NumField(); n != 12 {
		t.Errorf("core.ThreadResult has %d fields, codec encodes 12: update encodeEntry/decodeEntry and bump schemaVersion", n)
	}
}

// storeWith opens a store in a temp dir and Puts one canonical entry,
// returning everything needed to corrupt and re-probe it.
func storeWith(t *testing.T) (*Store, core.Config, *core.Result, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	res := randResult(rand.New(rand.NewSource(7)))
	res.Workload = "art+mcf"
	if err := s.Put(res.Workload, cfg, res); err != nil {
		t.Fatal(err)
	}
	return s, cfg, res, filepath.Join(dir, fileName(res.Workload, cfg.Canonical()))
}

// reopen drops the in-process state, as a daemon restart would.
func reopen(t *testing.T, s *Store) *Store {
	t.Helper()
	ns, err := Open(s.dir, s.maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

func TestGetHitAfterReopen(t *testing.T) {
	s, cfg, res, _ := storeWith(t)
	s = reopen(t, s)
	got, ok := s.Get(res.Workload, cfg)
	if !ok {
		t.Fatal("stored entry did not survive reopen")
	}
	if !sameResult(res, got) {
		t.Fatalf("reopened entry differs:\n in: %+v\nout: %+v", res, got)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("stats = %+v, want 1 hit, 0 misses", st)
	}
}

// TestCorruptEntriesReadAsMiss is the corruption/compat suite: a
// truncated file, a flipped header byte, a stale schema version and a
// fingerprint (key) mismatch must each read as a clean miss — never an
// error, never a wrong Result — and recompute + rewrite must then work.
func TestCorruptEntriesReadAsMiss(t *testing.T) {
	for name, corrupt := range map[string]func(t *testing.T, path string, cfg core.Config, res *core.Result){
		"truncated file": func(t *testing.T, path string, _ core.Config, _ *core.Result) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"empty file": func(t *testing.T, path string, _ core.Config, _ *core.Result) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"flipped header byte": func(t *testing.T, path string, _ core.Config, _ *core.Result) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(magic)+3] ^= 0x40 // inside the fingerprint header field
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"flipped payload byte": func(t *testing.T, path string, _ core.Config, _ *core.Result) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-12] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"stale schema version": func(t *testing.T, path string, cfg core.Config, res *core.Result) {
			// A well-formed entry (valid checksum, right identity) written
			// by a previous schema: the version gate alone must miss it.
			data := encodeEntry(schemaVersion-1, cfg.Fingerprint(), res.Workload, cfg.Canonical(), res)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"fingerprint mismatch": func(t *testing.T, path string, cfg core.Config, res *core.Result) {
			// An entry for a DIFFERENT machine parked under this key's file
			// name (as a colliding or misplaced write would): the identity
			// check must refuse it rather than serve the other machine's
			// result.
			other := cfg
			other.Seed += 1
			data := encodeEntry(schemaVersion, other.Fingerprint(), res.Workload, other.Canonical(), res)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			s, cfg, res, path := storeWith(t)
			corrupt(t, path, cfg, res)
			s = reopen(t, s)
			if got, ok := s.Get(res.Workload, cfg); ok {
				t.Fatalf("corrupt entry served as a hit: %+v", got)
			}
			if st := s.Stats(); st.Misses != 1 || st.Hits != 0 {
				t.Errorf("stats = %+v, want 1 miss, 0 hits", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("unusable entry not deleted (err=%v)", err)
			}
			// Recompute + rewrite: the key is immediately writable and
			// readable again.
			if err := s.Put(res.Workload, cfg, res); err != nil {
				t.Fatalf("rewrite after miss: %v", err)
			}
			got, ok := s.Get(res.Workload, cfg)
			if !ok || !sameResult(res, got) {
				t.Fatalf("rewrite did not restore the entry (ok=%v)", ok)
			}
		})
	}
}

// TestDistinctKeysDistinctFiles: changing any part of the key changes the
// entry file, so results can never overwrite each other.
func TestDistinctKeysDistinctFiles(t *testing.T) {
	cfg := core.DefaultConfig()
	other := cfg
	other.Pipeline.IntRegs++
	names := map[string]bool{
		fileName("art+mcf", cfg.Canonical()):   true,
		fileName("art+mcf", other.Canonical()): true,
		fileName("art+gcc", cfg.Canonical()):   true,
	}
	if len(names) != 3 {
		t.Fatalf("key collisions across distinct keys: %v", names)
	}
}

// TestEvictionIsByteBoundedLRA: the GC deletes least-recently-accessed
// entries until the byte bound holds, and a Get refreshes recency.
func TestEvictionIsByteBoundedLRA(t *testing.T) {
	dir := t.TempDir()
	res := randResult(rand.New(rand.NewSource(9)))
	cfgN := func(i int) core.Config {
		cfg := core.DefaultConfig()
		cfg.Seed = uint64(100 + i)
		return cfg
	}
	probe, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Put("w", cfgN(0), res); err != nil {
		t.Fatal(err)
	}
	entrySize := probe.Stats().Bytes
	os.Remove(filepath.Join(dir, fileName("w", cfgN(0).Canonical())))

	// Bound: three entries fit, the fourth forces one eviction.
	s, err := Open(dir, 3*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put("w", cfgN(i), res); err != nil {
			t.Fatal(err)
		}
	}
	// Touch entry 0: it becomes most recently accessed, so entry 1 is now
	// the eviction victim.
	if _, ok := s.Get("w", cfgN(0)); !ok {
		t.Fatal("entry 0 missing before overflow")
	}
	if err := s.Put("w", cfgN(3), res); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("stats = %+v, want exactly 1 eviction", st)
	}
	if st.Bytes > 3*entrySize || st.Files != 3 {
		t.Fatalf("stats = %+v beyond bound %d", st, 3*entrySize)
	}
	if _, ok := s.Get("w", cfgN(1)); ok {
		t.Error("least-recently-accessed entry 1 survived the eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := s.Get("w", cfgN(i)); !ok {
			t.Errorf("entry %d was evicted, want entry 1", i)
		}
	}
}

// TestBoundEnforcedAtOpen: a store reopened with a smaller bound sheds
// oldest entries immediately.
func TestBoundEnforcedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := randResult(rand.New(rand.NewSource(11)))
	var size int64
	for i := 0; i < 4; i++ {
		cfg := core.DefaultConfig()
		cfg.Seed = uint64(i + 1)
		if err := s.Put("w", cfg, res); err != nil {
			t.Fatal(err)
		}
		size = s.Stats().Bytes / int64(i+1)
	}
	s2, err := Open(dir, 2*size)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Files != 2 || st.Evictions != 2 || st.Bytes > 2*size {
		t.Fatalf("stats after bounded reopen = %+v, want 2 files kept", st)
	}
}

// TestPutReplacesAtomically: overwriting a key keeps exactly one file's
// worth of accounting and temp files never accumulate.
func TestPutReplacesAtomically(t *testing.T) {
	s, cfg, res, _ := storeWith(t)
	first := s.Stats()
	res2 := randResult(rand.New(rand.NewSource(8)))
	res2.Workload = res.Workload
	if err := s.Put(res.Workload, cfg, res2); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Files != 1 {
		t.Errorf("files = %d after overwrite, want 1", st.Files)
	}
	if st.Bytes <= 0 || st.Bytes > first.Bytes+int64(len(res2.Threads)*200)+200 {
		t.Errorf("bytes accounting drifted: %d -> %d", first.Bytes, st.Bytes)
	}
	got, ok := s.Get(res.Workload, cfg)
	if !ok || !sameResult(res2, got) {
		t.Fatal("overwrite did not replace the stored result")
	}
	des, err := os.ReadDir(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if !bytes.HasSuffix([]byte(de.Name()), []byte(suffix)) {
			t.Errorf("stray non-entry file %q in store dir", de.Name())
		}
	}
}

// TestOpenSweepsStaleTempFiles: a writer killed between create and
// rename leaves a temp file; Open deletes it so kill/restart cycles
// cannot leak disk outside the byte bound.
func TestOpenSweepsStaleTempFiles(t *testing.T) {
	s, cfg, res, _ := storeWith(t)
	stale := filepath.Join(s.dir, tmpPrefix+"orphan")
	if err := os.WriteFile(stale, []byte("half-written entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s = reopen(t, s)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived reopen (err=%v)", err)
	}
	if _, ok := s.Get(res.Workload, cfg); !ok {
		t.Error("real entry lost while sweeping temp files")
	}
}

// TestExternalDeletionDropsAccounting: when a sharing process's GC
// deletes an entry, the next Get both misses and drops the stale
// accounting, so Bytes/Files cannot drift and evict cannot chase ghosts.
func TestExternalDeletionDropsAccounting(t *testing.T) {
	s, cfg, res, path := storeWith(t)
	if st := s.Stats(); st.Files != 1 {
		t.Fatalf("stats = %+v, want 1 file", st)
	}
	os.Remove(path) // the other process's eviction
	if _, ok := s.Get(res.Workload, cfg); ok {
		t.Fatal("deleted entry served as a hit")
	}
	if st := s.Stats(); st.Files != 0 || st.Bytes != 0 {
		t.Errorf("stats = %+v after external deletion, want empty accounting", st)
	}
}

// TestSharedDirAdoption: a Get can serve an entry written by another
// store instance (a second daemon sharing the directory) after open.
func TestSharedDirAdoption(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	res := randResult(rand.New(rand.NewSource(13)))
	if err := a.Put("w", cfg, res); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get("w", cfg)
	if !ok || !sameResult(res, got) {
		t.Fatal("store b did not serve store a's entry")
	}
	if st := b.Stats(); st.Files != 1 || st.Bytes == 0 {
		t.Errorf("adopted entry not accounted: %+v", st)
	}
}

// survivorFiles lists the store directory's entry files, sorted.
func survivorFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == suffix {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// TestEvictionVictimDeterministic locks the claim behind the
// //lint:deterministic directive on evict(): the victim is the entry
// with the unique minimum access seq, so two stores driven through an
// identical Put/Get history shed exactly the same entries, whatever
// order their accounting maps happen to iterate in.
func TestEvictionVictimDeterministic(t *testing.T) {
	res := randResult(rand.New(rand.NewSource(11)))
	cfgN := func(i int) core.Config {
		cfg := core.DefaultConfig()
		cfg.Seed = uint64(200 + i)
		return cfg
	}
	history := func(t *testing.T) []string {
		dir := t.TempDir()
		probe, err := Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := probe.Put("w", cfgN(0), res); err != nil {
			t.Fatal(err)
		}
		entrySize := probe.Stats().Bytes
		os.Remove(filepath.Join(dir, fileName("w", cfgN(0).Canonical())))

		s, err := Open(dir, 4*entrySize)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			if err := s.Put("w", cfgN(i), res); err != nil {
				t.Fatal(err)
			}
			// Interleaved rereads decouple recency from insertion order.
			if i%3 == 0 {
				s.Get("w", cfgN(i/2))
			}
		}
		if st := s.Stats(); st.Evictions == 0 {
			t.Fatalf("history produced no evictions: %+v", st)
		}
		return survivorFiles(t, dir)
	}
	a, b := history(t), history(t)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical histories left different survivors:\n a: %v\n b: %v", a, b)
	}
}
