// Package resultstore is the persistent on-disk tier beneath the
// experiment session's in-memory simulation cache: a content-addressed
// directory of encoded core.Result values, keyed by (workload,
// core.Config.Canonical()), that lets a restarted process — or a second
// process pointed at the same directory — serve previously simulated
// cells without re-simulating them. Every simulation here is a
// deterministic pure function of its key, so a stored result is exactly
// the result a recomputation would produce, and the store can never
// serve anything a fresh run would not.
//
// # Format
//
// Entries are single files named by the SHA-256 of the key, holding a
// versioned, self-describing record:
//
//	magic "SMRS" | schema version | fingerprint | workload | canonical
//	config | result payload | CRC-32
//
// The header repeats the full identity of the entry (the short
// core.Config.Fingerprint plus the collision-free canonical string and
// the workload name), and the trailer checksums everything before it.
// A reader that finds anything unexpected — wrong magic, a schema
// version it does not speak, a checksum mismatch from truncation or
// corruption, or a header identity that is not the key being asked for
// — treats the entry as a clean miss and deletes it: the caller
// recomputes and rewrites, and a damaged store degrades to recomputation,
// never to a wrong answer.
//
// # Writes and eviction
//
// Writes are atomic: an entry is encoded to a temp file in the store
// directory and renamed into place, so a crashed or killed writer can
// leave at most a stale temp file (swept at the next Open), never a
// half-written entry under a live name. Several processes may share one
// directory — renames are atomic per entry and deterministic keys make
// double-writes identical.
//
// The store is byte-bounded (MaxBytes; 0 = unbounded): when a write
// pushes the tracked footprint past the bound, least-recently-accessed
// entries are deleted until it fits. Access recency persists across
// restarts through file modification times (bumped on every hit).
// Eviction, like corruption, only ever costs recomputation.
package resultstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

const (
	// magic opens every entry file.
	magic = "SMRS"
	// schemaVersion names the encoding this package writes. Any change to
	// the payload layout (new core.Result fields, different field order)
	// must bump it; readers treat every other version as a miss.
	schemaVersion uint16 = 1
	// suffix names entry files; anything else in the directory is ignored.
	suffix = ".smtres"
	// tmpPrefix names in-progress writes; stale ones (a writer killed
	// between create and rename) are swept at Open.
	tmpPrefix = ".tmp-"
)

// Stats is a point-in-time snapshot of store effectiveness, shaped for
// the smtsimd /v1/metrics endpoint.
type Stats struct {
	// Hits counts Get calls served from disk; Misses counts Get calls
	// that found nothing usable (absent, stale-version, corrupt, or
	// mismatched entries all read as misses).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries deleted to respect MaxBytes.
	Evictions uint64 `json:"evictions"`
	// WriteErrors counts Put calls that failed to land an entry.
	WriteErrors uint64 `json:"writeErrors"`
	// Files and Bytes describe the tracked population.
	Files int   `json:"files"`
	Bytes int64 `json:"bytes"`
	// MaxBytes echoes the configured bound (0 = unbounded).
	MaxBytes int64 `json:"maxBytes"`
}

// fileEntry is the in-memory accounting for one entry file.
type fileEntry struct {
	size int64
	seq  uint64 // logical access clock; highest = most recently used
}

// Store is the on-disk tier. All methods are safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*fileEntry // file name -> accounting
	bytes   int64
	seq     uint64
	hits    uint64
	misses  uint64
	evicted uint64
	werrs   uint64
}

// Open opens (creating if needed) a store rooted at dir, bounded to
// maxBytes of entry files (0 = unbounded). Existing entries are adopted
// with their file modification times as access recency, and the bound is
// enforced immediately, so a shrunken bound takes effect at open.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, entries: map[string]*fileEntry{}}

	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	type adopted struct {
		name  string
		size  int64
		mtime time.Time
	}
	var found []adopted
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			// A writer died between create and rename. Temp files are
			// invisible to lookups and exempt from the byte bound, so
			// left alone they would leak disk across kill/restart cycles.
			os.Remove(filepath.Join(dir, de.Name()))
			continue
		}
		if !strings.HasSuffix(de.Name(), suffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with another process's eviction
		}
		found = append(found, adopted{de.Name(), info.Size(), info.ModTime()})
	}
	// Oldest first, so adopted entries get ascending sequence numbers and
	// eviction order matches on-disk recency.
	sort.Slice(found, func(i, j int) bool {
		if !found[i].mtime.Equal(found[j].mtime) {
			return found[i].mtime.Before(found[j].mtime)
		}
		return found[i].name < found[j].name
	})
	for _, f := range found {
		s.seq++
		s.entries[f.name] = &fileEntry{size: f.size, seq: s.seq}
		s.bytes += f.size
	}
	s.mu.Lock()
	s.evict()
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// fileName derives the entry file for a key: content addressing by the
// SHA-256 of the full identity, so distinct keys can never share a file.
func fileName(workload, canonical string) string {
	h := sha256.New()
	h.Write([]byte(workload))
	h.Write([]byte{0})
	h.Write([]byte(canonical))
	return hex.EncodeToString(h.Sum(nil)) + suffix
}

// Get probes the store for a previously stored result. Every failure
// mode — no entry, unreadable file, wrong magic or schema version,
// checksum mismatch, identity mismatch — is a miss (ok=false), and any
// entry that decoded wrong is deleted so the post-recompute rewrite
// starts clean. A hit returns a Result bit-identical to the one stored
// and marks the entry most recently accessed.
func (s *Store) Get(workload string, cfg core.Config) (*core.Result, bool) {
	canonical := cfg.Canonical()
	name := fileName(workload, canonical)
	path := filepath.Join(s.dir, name)

	// File I/O runs outside the lock: per-key dedup lives upstream (the
	// session's singleflight cache), so the mutex only needs to cover the
	// accounting — holding it across reads would serialize every worker's
	// probe and stall Stats behind disk.
	data, err := os.ReadFile(path)
	if err != nil {
		s.mu.Lock()
		s.misses++
		// The file is gone or unreadable (e.g. deleted by a sharing
		// process's GC): keeping its accounting would inflate Bytes and
		// make evict chase ghosts.
		s.forget(name)
		s.mu.Unlock()
		return nil, false
	}
	res, err := decodeEntry(data, cfg.Fingerprint(), workload, canonical)
	if err != nil {
		os.Remove(path)
		s.mu.Lock()
		s.misses++
		s.forget(name)
		s.mu.Unlock()
		return nil, false
	}
	// Persist recency for the next process; best-effort.
	now := time.Now()
	os.Chtimes(path, now, now)
	s.mu.Lock()
	s.hits++
	s.seq++
	if e, ok := s.entries[name]; ok {
		e.seq = s.seq
	} else {
		// Written by another process sharing the directory: adopt it,
		// then re-enforce the bound the adoption may have broken (a
		// hit-only process must still respect MaxBytes).
		s.entries[name] = &fileEntry{size: int64(len(data)), seq: s.seq}
		s.bytes += int64(len(data))
		s.evict()
	}
	s.mu.Unlock()
	return res, true
}

// Put stores a result, atomically replacing any previous entry for the
// key, then enforces the byte bound. Failures are counted and returned
// but leave the store consistent: callers for whom persistence is
// best-effort (the experiment session) may ignore the error.
func (s *Store) Put(workload string, cfg core.Config, r *core.Result) error {
	canonical := cfg.Canonical()
	name := fileName(workload, canonical)
	data := encodeEntry(schemaVersion, cfg.Fingerprint(), workload, canonical, r)

	// Like Get, the write itself runs outside the lock; only the
	// accounting (and eviction decisions) serialize.
	fail := func(err error) error {
		s.mu.Lock()
		s.werrs++
		s.mu.Unlock()
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fail(err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fail(err)
	}
	s.mu.Lock()
	s.forget(name) // replacing an entry drops its old accounting
	s.seq++
	s.entries[name] = &fileEntry{size: int64(len(data)), seq: s.seq}
	s.bytes += int64(len(data))
	s.evict()
	s.mu.Unlock()
	return nil
}

// forget drops an entry's accounting without touching the file or the
// eviction counter. Caller holds mu.
func (s *Store) forget(name string) {
	if e, ok := s.entries[name]; ok {
		s.bytes -= e.size
		delete(s.entries, name)
	}
}

// evict deletes least-recently-accessed entries until the byte bound
// holds. Caller holds mu.
func (s *Store) evict() {
	for s.maxBytes > 0 && s.bytes > s.maxBytes && len(s.entries) > 0 {
		victim, min := "", uint64(math.MaxUint64)
		//lint:deterministic victim selection minimizes seq, a per-store monotonic counter that is unique across entries, so iteration order cannot change which entry wins
		for name, e := range s.entries {
			if e.seq < min {
				victim, min = name, e.seq
			}
		}
		s.forget(victim)
		s.evicted++
		os.Remove(filepath.Join(s.dir, victim))
	}
}

// Stats returns a consistent snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:        s.hits,
		Misses:      s.misses,
		Evictions:   s.evicted,
		WriteErrors: s.werrs,
		Files:       len(s.entries),
		Bytes:       s.bytes,
		MaxBytes:    s.maxBytes,
	}
}

// ---- codec ----

// encodeEntry renders one entry file: header (magic, version, identity),
// payload (every core.Result field, floats as IEEE-754 bit patterns so
// decode round-trips exactly), CRC-32 trailer over everything before it.
// version is a parameter so compatibility tests can write stale entries;
// production callers pass schemaVersion.
func encodeEntry(version uint16, fingerprint, workload, canonical string, r *core.Result) []byte {
	var b []byte
	b = append(b, magic...)
	b = binary.LittleEndian.AppendUint16(b, version)
	b = appendString(b, fingerprint)
	b = appendString(b, workload)
	b = appendString(b, canonical)

	b = appendString(b, r.Workload)
	b = appendString(b, string(r.Policy))
	b = binary.LittleEndian.AppendUint64(b, r.Cycles)
	b = binary.LittleEndian.AppendUint64(b, r.ExecutedTotal)
	b = binary.LittleEndian.AppendUint64(b, r.CommittedTotal)
	b = appendBool(b, r.Truncated)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Threads)))
	for i := range r.Threads {
		t := &r.Threads[i]
		b = appendString(b, t.Benchmark)
		b = binary.LittleEndian.AppendUint64(b, t.Committed)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.IPC))
		b = binary.LittleEndian.AppendUint64(b, t.Executed)
		b = binary.LittleEndian.AppendUint64(b, t.L2MissLoads)
		b = binary.LittleEndian.AppendUint64(b, t.RunaheadEpisodes)
		b = binary.LittleEndian.AppendUint64(b, t.PseudoRetired)
		b = binary.LittleEndian.AppendUint64(b, t.Folded)
		b = binary.LittleEndian.AppendUint64(b, t.PrefetchesIssued)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.RegsNormal))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.RegsRunahead))
		b = binary.LittleEndian.AppendUint64(b, t.CyclesInRunahead)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// decodeEntry parses and verifies one entry file against the key the
// caller is looking up. Every defect returns an error — the store maps
// them all to a miss.
func decodeEntry(data []byte, fingerprint, workload, canonical string) (*core.Result, error) {
	if len(data) < len(magic)+2+4 {
		return nil, fmt.Errorf("resultstore: entry too short (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	d := &decoder{data: body}
	if string(d.bytes(len(magic))) != magic {
		return nil, fmt.Errorf("resultstore: bad magic")
	}
	if v := d.uint16(); v != schemaVersion {
		return nil, fmt.Errorf("resultstore: schema version %d, want %d", v, schemaVersion)
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("resultstore: checksum mismatch")
	}
	if got := d.string(); got != fingerprint {
		return nil, fmt.Errorf("resultstore: fingerprint %q, want %q", got, fingerprint)
	}
	if got := d.string(); got != workload {
		return nil, fmt.Errorf("resultstore: workload %q, want %q", got, workload)
	}
	if got := d.string(); got != canonical {
		return nil, fmt.Errorf("resultstore: canonical config mismatch")
	}

	r := &core.Result{
		Workload:       d.string(),
		Policy:         core.PolicyKind(d.string()),
		Cycles:         d.uint64(),
		ExecutedTotal:  d.uint64(),
		CommittedTotal: d.uint64(),
		Truncated:      d.bool(),
	}
	n := d.uint32()
	if d.err == nil && uint64(n)*89 > uint64(len(body)) { // 89 = minimum encoded thread size
		return nil, fmt.Errorf("resultstore: implausible thread count %d", n)
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		r.Threads = append(r.Threads, core.ThreadResult{
			Benchmark:        d.string(),
			Committed:        d.uint64(),
			IPC:              math.Float64frombits(d.uint64()),
			Executed:         d.uint64(),
			L2MissLoads:      d.uint64(),
			RunaheadEpisodes: d.uint64(),
			PseudoRetired:    d.uint64(),
			Folded:           d.uint64(),
			PrefetchesIssued: d.uint64(),
			RegsNormal:       math.Float64frombits(d.uint64()),
			RegsRunahead:     math.Float64frombits(d.uint64()),
			CyclesInRunahead: d.uint64(),
		})
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("resultstore: %d trailing bytes", len(body)-d.off)
	}
	return r, nil
}

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// appendBool appends a bool as one byte.
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// decoder is a bounds-checked cursor over an entry body: the first
// overrun latches err and every later read returns zero values, so
// decodeEntry can parse straight-line and check once.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || len(d.data)-d.off < n {
		if d.err == nil {
			d.err = fmt.Errorf("resultstore: truncated entry")
		}
		return nil
	}
	out := d.data[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) uint16() uint16 {
	b := d.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) uint32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) uint64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) bool() bool {
	b := d.bytes(1)
	return b != nil && b[0] != 0
}

func (d *decoder) string() string {
	n := d.uint32()
	if d.err == nil && uint64(n) > uint64(len(d.data)-d.off) {
		d.err = fmt.Errorf("resultstore: truncated entry")
		return ""
	}
	return string(d.bytes(int(n)))
}
