// Package metrics implements the paper's evaluation metrics (§5):
// IPC throughput (eq. 1), the fairness/performance balance (eq. 2, the
// harmonic mean of per-thread IPC speedups over single-threaded
// execution, from Luo et al.), and the Energy-Delay² efficiency proxy of
// §5.3 (executed instructions × CPI²).
package metrics

// Throughput is eq. 1: the average of per-thread multithreaded IPCs.
func Throughput(ipcMT []float64) float64 {
	if len(ipcMT) == 0 {
		return 0
	}
	var s float64
	for _, v := range ipcMT {
		s += v
	}
	return s / float64(len(ipcMT))
}

// Fairness is eq. 2: n / Σ(IPC_ST,i / IPC_MT,i) — the harmonic mean of
// each thread's multithreaded-over-singlethreaded speedup. It is 1.0 when
// every thread runs as fast as it would alone, and collapses toward 0
// when any thread is starved. It returns 0 on degenerate input (zero
// IPCs, mismatched lengths).
func Fairness(ipcST, ipcMT []float64) float64 {
	n := len(ipcMT)
	if n == 0 || len(ipcST) != n {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		if ipcMT[i] <= 0 || ipcST[i] <= 0 {
			return 0
		}
		sum += ipcST[i] / ipcMT[i]
	}
	return float64(n) / sum
}

// ED2 is the §5.3 efficiency proxy: executed instructions (every
// instruction that occupied a functional unit, including runahead and
// squashed work — the energy) times the square of the average CPI (the
// delay). The paper reports it normalized to ICOUNT; Normalize does that.
func ED2(executed uint64, cycles uint64, committed uint64) float64 {
	if committed == 0 || cycles == 0 {
		return 0
	}
	cpi := float64(cycles) / float64(committed)
	return float64(executed) * cpi * cpi
}

// Normalize returns v/base, or 0 when the base is degenerate.
func Normalize(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return v / base
}
