package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThroughput(t *testing.T) {
	if Throughput(nil) != 0 {
		t.Fatal("empty throughput")
	}
	if got := Throughput([]float64{1, 3}); got != 2 {
		t.Fatalf("throughput = %v", got)
	}
}

func TestFairnessPerfectSharing(t *testing.T) {
	// Every thread at single-thread speed: fairness exactly 1.
	st := []float64{2, 0.5}
	if got := Fairness(st, st); math.Abs(got-1) > 1e-12 {
		t.Fatalf("fairness = %v, want 1", got)
	}
}

func TestFairnessHalfSpeed(t *testing.T) {
	st := []float64{2, 1}
	mt := []float64{1, 0.5}
	if got := Fairness(st, mt); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("fairness = %v, want 0.5", got)
	}
}

func TestFairnessPunishesStarvation(t *testing.T) {
	st := []float64{2, 2}
	balanced := Fairness(st, []float64{1, 1})     // both at half speed
	starved := Fairness(st, []float64{1.9, 0.05}) // one starved
	if starved >= balanced {
		t.Fatalf("starved fairness %v >= balanced %v", starved, balanced)
	}
}

func TestFairnessDegenerate(t *testing.T) {
	if Fairness(nil, nil) != 0 {
		t.Fatal("empty fairness")
	}
	if Fairness([]float64{1}, []float64{1, 2}) != 0 {
		t.Fatal("mismatched lengths")
	}
	if Fairness([]float64{1, 0}, []float64{1, 1}) != 0 {
		t.Fatal("zero ST IPC")
	}
}

func TestFairnessBounds(t *testing.T) {
	// Property: with MT <= ST per thread (the physical case), fairness lies
	// in (0, 1]; and fairness never exceeds the max speedup.
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw)
		if n > 8 {
			n = 8
		}
		st := make([]float64, n)
		mt := make([]float64, n)
		for i := 0; i < n; i++ {
			st[i] = float64(raw[i]%1000) + 1
			mt[i] = st[i] / (1 + float64(raw[i]%7)) // slowdown 1..7x
		}
		got := Fairness(st, mt)
		return got > 0 && got <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestED2(t *testing.T) {
	// 1000 executed, CPI 2 -> 4000.
	if got := ED2(1000, 2000, 1000); got != 4000 {
		t.Fatalf("ED2 = %v", got)
	}
	if ED2(1000, 0, 10) != 0 || ED2(1000, 10, 0) != 0 {
		t.Fatal("degenerate ED2 not 0")
	}
}

func TestED2PenalizesExtraWork(t *testing.T) {
	// Same delay, more executed instructions -> worse (higher) ED2.
	lean := ED2(1000, 2000, 1000)
	wasteful := ED2(2000, 2000, 1000)
	if wasteful <= lean {
		t.Fatal("extra executed work did not raise ED2")
	}
}

func TestED2RewardsSpeed(t *testing.T) {
	// Same work, fewer cycles -> better (lower) ED2, quadratically.
	slow := ED2(1000, 4000, 1000)
	fast := ED2(1000, 2000, 1000)
	if math.Abs(slow/fast-4) > 1e-9 {
		t.Fatalf("CPI halving changed ED2 by %vx, want 4x", slow/fast)
	}
}

func TestNormalize(t *testing.T) {
	if Normalize(1, 0) != 0 {
		t.Fatal("divide by zero")
	}
	if Normalize(3, 4) != 0.75 {
		t.Fatal("normalize")
	}
}
