// Package pipeline implements the cycle-level SMT out-of-order core: an
// 8-wide, 10-stage machine with a shared 512-entry reorder buffer, shared
// issue queues and physical register files, per-thread rename maps, a
// shared perceptron branch predictor, and the Runahead Threads mechanism
// woven through its dispatch, issue and commit stages.
//
// One call to Step advances the machine one cycle. Stages run in reverse
// pipeline order (commit, issue, dispatch, fetch) so a resource freed in
// cycle N is usable in cycle N+1, not N — the usual discrete-timing
// discipline for synchronous pipeline models.
package pipeline

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/regfile"
	"repro/internal/runahead"
	"repro/internal/trace"
)

// Policy is the fetch/resource policy plugged into the core. The paper's
// static fetch policies (ICOUNT, STALL, FLUSH) and dynamic resource
// controllers (DCRA, Hill Climbing) all implement it; RaT itself is not a
// Policy but a core mechanism enabled through Config.Runahead, composed
// with the ICOUNT fetch policy exactly as in the paper.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// FetchPriority appends to buf the threads allowed to fetch this
	// cycle, highest priority first. Mechanically-blocked threads are
	// filtered afterwards by the core.
	FetchPriority(c *Core, buf []int) []int
	// CanDispatch gates per-thread dispatch (resource caps; DCRA and Hill
	// Climbing live here).
	CanDispatch(c *Core, tid int) bool
	// OnL2Miss fires when a demand load by a normal-mode thread is served
	// by main memory (the FLUSH trigger).
	OnL2Miss(c *Core, ld *DynInst)
	// Tick runs once per cycle after all stages (epoch bookkeeping).
	Tick(c *Core)
}

// wheelSize is the completion ring capacity; it must exceed the longest
// possible completion latency (memory: 3+20+400, plus slack).
const wheelSize = 1024

// issueQueue is one shared issue queue.
type issueQueue struct {
	kind    IQKind
	cap     int
	count   int
	entries []*DynInst // age (dispatch) order
}

// wheelRef is a validated reference to an in-flight instruction held by
// the completion wheel or the miss-detection list. Both structures can
// outlive the instruction (it may squash and be recycled first); the id
// snapshot detects reuse, so stale events are dropped instead of firing
// against an unrelated recycled instruction.
type wheelRef struct {
	di *DynInst
	id uint64
}

// live reports whether the reference still names the instruction it was
// taken on.
func (r wheelRef) live() bool { return r.di.id == r.id }

// Core is the SMT processor.
type Core struct {
	cfg     Config
	hier    *mem.Hierarchy
	intRF   *regfile.File
	fpRF    *regfile.File
	threads []*thread
	policy  Policy
	racache *runahead.Cache

	iqs    [4]*issueQueue // indexed by IQKind; IQNone unused
	fuBusy [4][]uint64    // per-class unit busy-until cycles

	wheel         [wheelSize][]wheelRef
	pendingDetect []wheelRef // L2 misses awaiting detection
	cycle         uint64
	nextID        uint64
	robCount      int

	// freeInsts is the DynInst recycling pool; see pool.go.
	freeInsts []*DynInst

	orderBuf []int
	// paranoid enables per-cycle invariant checking (tests).
	paranoid bool
}

// New builds a core running the given traces (one per hardware context)
// under the given policy. A nil policy selects plain ICOUNT.
func New(cfg Config, traces []*trace.Trace, pol Policy) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("pipeline: no threads")
	}
	if len(traces) > 8 {
		return nil, fmt.Errorf("pipeline: %d threads exceeds the 8-context limit", len(traces))
	}
	if pol == nil {
		pol = ICount{}
	}
	c := &Core{
		cfg:    cfg,
		hier:   mem.NewHierarchy(cfg.Mem),
		intRF:  regfile.New("int", cfg.IntRegs),
		fpRF:   regfile.New("fp", cfg.FPRegs),
		policy: pol,
	}
	c.iqs[IQInt] = &issueQueue{kind: IQInt, cap: cfg.IntIQ, entries: make([]*DynInst, 0, cfg.IntIQ)}
	c.iqs[IQFP] = &issueQueue{kind: IQFP, cap: cfg.FPIQ, entries: make([]*DynInst, 0, cfg.FPIQ)}
	c.iqs[IQLS] = &issueQueue{kind: IQLS, cap: cfg.LSIQ, entries: make([]*DynInst, 0, cfg.LSIQ)}
	c.fuBusy[IQInt] = make([]uint64, cfg.IntFU)
	c.fuBusy[IQFP] = make([]uint64, cfg.FPFU)
	c.fuBusy[IQLS] = make([]uint64, cfg.LSFU)
	c.orderBuf = make([]int, 0, len(traces))
	if cfg.Runahead.UseRunaheadCache {
		c.racache = runahead.NewCache(cfg.RunaheadCacheEntries)
	}
	preds := bpred.NewPerceptronShared(cfg.BranchPredRows, len(traces))
	for i, tr := range traces {
		c.threads = append(c.threads, &thread{
			id:  i,
			tr:  tr,
			bp:  preds[i],
			fq:  newInstRing(cfg.FetchQueue),
			rob: newInstRing(cfg.ROBSize),
		})
	}
	return c, nil
}

// SetParanoid toggles per-cycle invariant checking (slow; tests only).
func (c *Core) SetParanoid(on bool) { c.paranoid = on }

// WarmupICache installs every code line of every thread's trace into the
// instruction cache hierarchy, untimed. Measured intervals in the paper
// start from warm SimPoint checkpoints; without this, a short simulation
// spends its first thousands of cycles serializing on cold code misses
// that no figure is about. Data caches are deliberately left cold: data
// warmth is workload behaviour (the L2 miss rate defines the MEM class)
// and emerges from the measured run itself.
func (c *Core) WarmupICache() {
	for _, t := range c.threads {
		for i := 0; i < t.tr.Len(); i++ {
			c.hier.Prewarm(mem.KindIfetch, t.id, t.tr.At(uint64(i)).PC)
		}
	}
}

// WarmupCaches performs a full untimed warm pass: one trace iteration per
// thread installing both code and data lines (interleaved across threads
// so shared-cache capacity pressure at measurement start resembles steady
// state). This reproduces the paper's measurement discipline — SimPoint
// intervals start from checkpoints with warm caches, so no figure includes
// cold-start compulsory misses. Capacity behaviour is unaffected:
// footprints beyond the L2 still miss in steady state, which is exactly
// the MEM classification.
func (c *Core) WarmupCaches() {
	maxLen := 0
	for _, t := range c.threads {
		if t.tr.Len() > maxLen {
			maxLen = t.tr.Len()
		}
	}
	for i := 0; i < maxLen; i++ {
		for _, t := range c.threads {
			if i >= t.tr.Len() {
				continue
			}
			in := t.tr.At(uint64(i))
			c.hier.Prewarm(mem.KindIfetch, t.id, in.PC)
			if in.Op.IsMem() {
				kind := mem.KindLoad
				if in.Op.IsStore() {
					kind = mem.KindStore
				}
				c.hier.Prewarm(kind, t.id, t.tr.AddrAt(uint64(i)))
			}
		}
	}
}

// Step advances the machine by one cycle.
func (c *Core) Step() {
	now := c.cycle
	c.completeStage(now)
	c.detectMisses(now)
	c.commitStage(now)
	c.issueStage(now)
	c.dispatchStage(now)
	c.fetchStage(now)
	c.policy.Tick(c)
	c.sample(now)
	if c.paranoid {
		if err := c.CheckInvariants(); err != nil {
			//lint:panicfree paranoid-mode invariant check: per-cycle state corruption cannot be reported as a value up the hot Step path; halting beats a silently wrong simulation
			panic(fmt.Sprintf("cycle %d: %v", now, err))
		}
	}
	c.cycle++
}

// sample records the per-cycle statistics (Figure 5's register occupancy
// by mode).
func (c *Core) sample(uint64) {
	for _, t := range c.threads {
		regs := float64(c.intRF.OwnerCount(t.id) + c.fpRF.OwnerCount(t.id))
		if t.mode == ModeRunahead {
			t.stats.RegsRunahead.Observe(regs)
			t.stats.Runahead.CyclesInRunahead.Inc()
		} else {
			t.stats.RegsNormal.Observe(regs)
		}
	}
}

// --- Accessors (the policy/harness query API) -------------------------------

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// SetCycle forces the cycle counter. It exists so tests can probe
// cycle-dependent policy arithmetic at counts unreachable by stepping
// (e.g. round-robin rotation past 2^63); simulation code never calls it,
// and calling it on a machine with in-flight state would desynchronize
// every busy-until comparison.
func (c *Core) SetCycle(n uint64) { c.cycle = n }

// NumThreads returns the number of hardware contexts.
func (c *Core) NumThreads() int { return len(c.threads) }

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Hierarchy exposes the memory subsystem (statistics, probes).
func (c *Core) Hierarchy() *mem.Hierarchy { return c.hier }

// ICount returns thread tid's fetch-to-issue instruction count, the ICOUNT
// priority input.
func (c *Core) ICount(tid int) int { return c.threads[tid].icount }

// PendingL2Miss reports whether tid has a demand L2 miss outstanding.
func (c *Core) PendingL2Miss(tid int) bool {
	return c.threads[tid].pendingL2Miss(c.cycle)
}

// FetchCursor returns tid's next trace position to fetch. Policies that
// gate fetch by instruction distance (the MLP-aware fetch policy) consult
// it.
func (c *Core) FetchCursor(tid int) uint64 { return c.threads[tid].cursor }

// InRunahead reports whether tid is in runahead mode.
func (c *Core) InRunahead(tid int) bool {
	return c.threads[tid].mode == ModeRunahead
}

// ROBOccupancy returns the number of ROB entries held by tid.
func (c *Core) ROBOccupancy(tid int) int { return c.threads[tid].rob.len() }

// ROBUsed returns the total occupied ROB entries.
func (c *Core) ROBUsed() int { return c.robCount }

// IQHeld returns the issue-queue entries of the given kind held by tid.
func (c *Core) IQHeld(tid int, kind IQKind) int { return c.threads[tid].iqHeld[kind] }

// RegsHeld returns the physical registers (INT+FP) held by tid.
func (c *Core) RegsHeld(tid int) int {
	return c.intRF.OwnerCount(tid) + c.fpRF.OwnerCount(tid)
}

// IntRegsHeld returns only the integer registers held by tid.
func (c *Core) IntRegsHeld(tid int) int { return c.intRF.OwnerCount(tid) }

// FPRegsHeld returns only the FP registers held by tid.
func (c *Core) FPRegsHeld(tid int) int { return c.fpRF.OwnerCount(tid) }

// Committed returns tid's architecturally committed instruction count.
func (c *Core) Committed(tid int) uint64 {
	return c.threads[tid].stats.Committed.Value()
}

// CommittedTotal sums committed instructions over all threads.
func (c *Core) CommittedTotal() uint64 {
	var s uint64
	for _, t := range c.threads {
		s += t.stats.Committed.Value()
	}
	return s
}

// ExecutedTotal sums executed (energy-consuming) instructions over all
// threads, including runahead and squashed work — the ED² numerator.
func (c *Core) ExecutedTotal() uint64 {
	var s uint64
	for _, t := range c.threads {
		s += t.stats.Executed.Value()
	}
	return s
}

// Stats returns tid's statistics block.
func (c *Core) Stats(tid int) *ThreadStats { return &c.threads[tid].stats }

// BlockFetchUntil prevents tid from fetching before the given cycle
// (policy hook: FLUSH's restart delay, STALL variants).
func (c *Core) BlockFetchUntil(tid int, cycle uint64) {
	t := c.threads[tid]
	if cycle > t.fetchBlockedUntil {
		t.fetchBlockedUntil = cycle
	}
}

// ThreadsByICount appends all thread ids to buf ordered by ascending
// ICOUNT (ties by id), the standard ICOUNT priority.
func (c *Core) ThreadsByICount(buf []int) []int {
	for i := range c.threads {
		buf = append(buf, i)
	}
	// Insertion sort: n <= 8.
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0; j-- {
			a, b := buf[j-1], buf[j]
			if c.threads[a].icount > c.threads[b].icount ||
				(c.threads[a].icount == c.threads[b].icount && a > b) {
				buf[j-1], buf[j] = b, a
			} else {
				break
			}
		}
	}
	return buf
}

// fileFor returns the physical register file backing an architectural
// register, or nil for RegNone.
func (c *Core) fileFor(a isa.Reg) *regfile.File {
	switch {
	case a.IsInt():
		return c.intRF
	case a.IsFP():
		return c.fpRF
	}
	return nil
}

// --- ICOUNT -------------------------------------------------------------------

// ICount is the baseline ICOUNT fetch policy (Tullsen et al., ISCA 1996):
// threads with the fewest in-flight (fetch-to-issue) instructions fetch
// first. It imposes no dispatch caps and no miss reaction — it is both the
// paper's baseline and the fetch-priority layer under STALL, FLUSH and RaT.
type ICount struct{}

// Name implements Policy.
func (ICount) Name() string { return "ICOUNT" }

// FetchPriority implements Policy: ascending ICOUNT order.
func (ICount) FetchPriority(c *Core, buf []int) []int { return c.ThreadsByICount(buf) }

// CanDispatch implements Policy: no caps.
func (ICount) CanDispatch(*Core, int) bool { return true }

// OnL2Miss implements Policy: no reaction.
func (ICount) OnL2Miss(*Core, *DynInst) {}

// Tick implements Policy: nothing per cycle.
func (ICount) Tick(*Core) {}
