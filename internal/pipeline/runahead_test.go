package pipeline

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/runahead"
	"repro/internal/trace"
)

// TestConcurrentRunahead: two memory-bound threads must be able to run
// ahead simultaneously without corrupting each other's rename state.
func TestConcurrentRunahead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	c := mustNew(t, cfg, []*trace.Trace{
		missLoadTrace(3000, true),
		missLoadTrace(3000, true),
	}, nil)
	c.SetParanoid(true)
	both := false
	for i := 0; i < 30000; i++ {
		c.Step()
		if c.InRunahead(0) && c.InRunahead(1) {
			both = true
		}
	}
	if !both {
		t.Fatal("two miss-heavy threads never ran ahead concurrently")
	}
	if c.Committed(0) == 0 || c.Committed(1) == 0 {
		t.Fatal("starvation under concurrent runahead")
	}
	st0, st1 := c.Stats(0), c.Stats(1)
	if st0.Runahead.Episodes.Value() == 0 || st1.Runahead.Episodes.Value() == 0 {
		t.Fatal("one thread never entered runahead")
	}
}

// TestNoFetchDuringRunahead checks the Figure 4 resource-availability
// ablation: with FetchInRunahead off, a runahead thread must not fetch.
func TestNoFetchDuringRunahead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	cfg.Runahead.FetchInRunahead = false
	c := mustNew(t, cfg, []*trace.Trace{missLoadTrace(2000, true)}, nil)
	c.SetParanoid(true)
	prevFetched := uint64(0)
	for i := 0; i < 20000; i++ {
		wasRunahead := c.InRunahead(0)
		c.Step()
		fetched := c.Stats(0).Fetched.Value()
		if wasRunahead && fetched != prevFetched {
			t.Fatalf("cycle %d: runahead thread fetched %d instructions",
				i, fetched-prevFetched)
		}
		prevFetched = fetched
	}
	if c.Stats(0).Runahead.Episodes.Value() == 0 {
		t.Fatal("no episodes")
	}
	// Resources must still be released: pseudo-retires happen (the
	// already-fetched window drains through runahead mode).
	if c.Stats(0).Runahead.PseudoRetired.Value() == 0 {
		t.Fatal("no pseudo-retires in no-fetch runahead")
	}
}

// TestPipelineDeterminism: two identical machines stepped identically must
// agree on every observable counter.
func TestPipelineDeterminism(t *testing.T) {
	mk := func() *Core {
		cfg := DefaultConfig()
		cfg.Runahead = runahead.Default()
		art := trace.MustGenerate(trace.MustLookup("art"), trace.Options{Len: 3000, Seed: 1})
		gzip := trace.MustGenerate(trace.MustLookup("gzip"), trace.Options{Len: 3000, Seed: 2,
			DataBase: 0x8000_0000, CodeBase: 0x0200_0000})
		c, err := New(cfg, []*trace.Trace{art, gzip}, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.WarmupCaches()
		return c
	}
	a, b := mk(), mk()
	for i := 0; i < 20000; i++ {
		a.Step()
		b.Step()
	}
	for tid := 0; tid < 2; tid++ {
		sa, sb := a.Stats(tid), b.Stats(tid)
		if sa.Committed != sb.Committed || sa.Executed != sb.Executed ||
			sa.Runahead.Episodes != sb.Runahead.Episodes ||
			sa.BranchMispredicted != sb.BranchMispredicted {
			t.Fatalf("thread %d diverged between identical machines", tid)
		}
	}
}

// TestRunaheadExitRewindsExactly: after an episode the thread must
// re-execute from the trigger load — committed counts must never skip
// trace positions. With paranoid mode on, rename rollback errors would
// panic; here we additionally require commit monotonicity and eventual
// full-trace coverage.
func TestRunaheadExitRewindsExactly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	n := 1500
	c := mustNew(t, cfg, []*trace.Trace{missLoadTrace(n, true)}, nil)
	c.SetParanoid(true)
	for i := 0; i < 60000; i++ {
		c.Step()
		if c.Committed(0) >= uint64(2*n) {
			return // two full iterations committed: rewinds were exact
		}
	}
	t.Fatalf("only %d instructions committed; rewind may be losing progress", c.Committed(0))
}

// TestFoldedInstructionsConsumeNoFU: during runahead, folded (INV)
// instructions must not occupy functional units — executed count must
// grow much slower than pseudo-retired count on a poisoned chain.
func TestFoldedInstructionsConsumeNoFU(t *testing.T) {
	// Trace: a miss load followed by a long fully-dependent chain; in
	// runahead nearly everything folds.
	n := 2000
	insts := make([]isa.Inst, n)
	for i := range insts {
		if i%64 == 0 {
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpLoad,
				Dst: isa.IntReg(1), Src1: isa.IntReg(28),
				Addr: 0x50_0000_0000 + uint64(i)*4096}
		} else {
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpIntAlu,
				Dst: isa.IntReg(1), Src1: isa.IntReg(1), Src2: isa.IntReg(1)}
		}
	}
	tr := trace.FromInsts("chainload", trace.ClassMEM, insts)
	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	c := mustNew(t, cfg, []*trace.Trace{tr}, nil)
	run(t, c, 30000)
	st := c.Stats(0)
	if st.Runahead.Episodes.Value() == 0 {
		t.Fatal("no runahead")
	}
	if st.Runahead.Folded.Value() == 0 {
		t.Fatal("poisoned chain folded nothing")
	}
	// Folded instructions outnumber any executed runahead work on this
	// trace shape.
	if st.Runahead.Folded.Value() < st.Runahead.PseudoRetired.Value()/4 {
		t.Fatalf("folded=%d vs pseudo-retired=%d: poison did not propagate",
			st.Runahead.Folded.Value(), st.Runahead.PseudoRetired.Value())
	}
}

// TestExitPenaltyDelaysRefetch: a larger exit penalty must not break
// correctness and should not speed the thread up.
func TestExitPenaltyDelaysRefetch(t *testing.T) {
	mk := func(penalty uint64) uint64 {
		cfg := DefaultConfig()
		cfg.Runahead = runahead.Default()
		cfg.Runahead.ExitPenalty = penalty
		c := mustNew(t, cfg, []*trace.Trace{missLoadTrace(2000, true)}, nil)
		run(t, c, 20000)
		return c.Committed(0)
	}
	fast, slow := mk(0), mk(64)
	if slow > fast {
		t.Fatalf("larger exit penalty committed more (%d vs %d)", slow, fast)
	}
}

// TestMispredictRedirectCost: a larger redirect penalty must reduce
// throughput on a mispredict-heavy trace.
func TestMispredictRedirectCost(t *testing.T) {
	mk := func(redirect uint64) uint64 {
		cfg := DefaultConfig()
		cfg.MispredictRedirect = redirect
		n := 2000
		insts := make([]isa.Inst, n)
		for i := range insts {
			if i%5 == 4 {
				insts[i] = isa.Inst{PC: 0x1000 + uint64(16*(i%4)), Op: isa.OpBranch,
					Src1: isa.IntReg(28), Taken: (i/5)%2 == 0, Target: 0x3000}
			} else {
				insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpIntAlu,
					Dst: isa.IntReg(1 + i%20), Src1: isa.IntReg(28), Src2: isa.IntReg(29)}
			}
		}
		tr := trace.FromInsts("br", trace.ClassILP, insts)
		c := mustNew(t, cfg, []*trace.Trace{tr}, nil)
		run(t, c, 10000)
		return c.Committed(0)
	}
	fast, slow := mk(2), mk(40)
	if slow >= fast {
		t.Fatalf("larger redirect penalty committed more (%d vs %d)", slow, fast)
	}
}
