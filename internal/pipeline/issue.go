package pipeline

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// issueStage performs wakeup and select for each issue queue: instructions
// whose operands are ready issue oldest-first to a free functional unit,
// within the global issue width. In runahead mode, instructions whose
// operands are poisoned are folded here (never executed), releasing their
// queue slot without consuming issue bandwidth — the "light thread"
// behaviour of §3.2.
func (c *Core) issueStage(now uint64) {
	budget := c.cfg.Width
	for _, kind := range [...]IQKind{IQInt, IQLS, IQFP} {
		c.scanQueue(c.iqs[kind], now, &budget)
	}
}

// scanQueue walks one queue in age order, compacting out entries that have
// left (issued, folded, squashed) and issuing the ready ones.
func (c *Core) scanQueue(q *issueQueue, now uint64, budget *int) {
	units := c.fuBusy[q.kind]
	kept := q.entries[:0]
	for _, di := range q.entries {
		if di.squashed || di.issued || di.folded {
			continue // already gone; compact
		}
		t := c.threads[di.tid]

		// Runahead folding on poisoned operands.
		if t.mode == ModeRunahead && c.operandInvForIssue(di) {
			c.foldInQueue(t, di)
			continue
		}

		if !c.operandsReady(di) {
			kept = append(kept, di)
			continue
		}
		if *budget == 0 {
			kept = append(kept, di)
			continue
		}
		// Select a free functional unit of this class.
		unit := -1
		for u := range units {
			if units[u] <= now {
				unit = u
				break
			}
		}
		if unit < 0 {
			kept = append(kept, di)
			continue
		}
		if !c.execute(t, di, now) {
			// Structural retry (MSHRs exhausted): stays in the queue.
			kept = append(kept, di)
			continue
		}
		// Occupy the unit: pipelined ops for one cycle, FP divide for its
		// full latency (the unpipelined unit of Table 1's era).
		if di.tmpl.Op == isa.OpFpDiv {
			units[unit] = now + c.cfg.FPDivLat
		} else {
			units[unit] = now + 1
		}
		*budget = *budget - 1
		di.issued = true
		c.releaseRefs(di)
		q.count--
		t.iqHeld[q.kind]--
		t.icount--
		t.stats.Executed.Inc()
	}
	q.entries = kept
}

// operandsReady reports whether all renamed sources have produced.
func (c *Core) operandsReady(di *DynInst) bool {
	if di.src1 >= 0 && !c.fileFor(di.tmpl.Src1).Ready(di.src1) {
		return false
	}
	if di.src2 >= 0 && !c.fileFor(di.tmpl.Src2).Ready(di.src2) {
		return false
	}
	return true
}

// operandInvForIssue reports whether di must fold due to poisoned
// operands: for memory ops only the address source counts; for everything
// else, either source.
func (c *Core) operandInvForIssue(di *DynInst) bool {
	if c.regKnownInv(di.tmpl.Src1, di.src1) {
		return true
	}
	if di.tmpl.Op.IsMem() {
		return false
	}
	return c.regKnownInv(di.tmpl.Src2, di.src2)
}

// foldInQueue folds an instruction discovered invalid after dispatch: its
// destination is poisoned, its references release, and its queue slot
// frees — without occupying a functional unit.
func (c *Core) foldInQueue(t *thread, di *DynInst) {
	di.folded = true
	di.completed = true
	di.inv = true
	c.releaseRefs(di)
	if di.dst >= 0 {
		c.fileFor(di.tmpl.Dst).MarkReady(di.dst, true)
	}
	c.iqs[di.iq].count--
	t.iqHeld[di.iq]--
	t.icount--
	t.stats.Runahead.Folded.Inc()
	if di.tmpl.Op.IsLoad() {
		t.stats.Runahead.InvalidLoads.Inc()
	}
	// A poisoned branch cannot be validated; runahead proceeds down the
	// predicted path without penalty (§3.1 "follow the most likely path").
	if di == t.blockingBranch {
		t.blockingBranch = nil
	}
}

// releaseRefs drops di's source references once it has read (issued or
// folded) — idempotent via the refsReleased flag.
func (c *Core) releaseRefs(di *DynInst) {
	if di.refsReleased {
		return
	}
	di.refsReleased = true
	if di.src1 >= 0 {
		c.fileFor(di.tmpl.Src1).DecRef(di.src1)
	}
	if di.src2 >= 0 {
		c.fileFor(di.tmpl.Src2).DecRef(di.src2)
	}
}

// execute starts di's execution at cycle now, scheduling its completion.
// It returns false if a structural hazard (MSHR exhaustion) forces a
// retry next cycle.
func (c *Core) execute(t *thread, di *DynInst, now uint64) bool {
	op := di.tmpl.Op
	var done uint64
	switch {
	case op.IsLoad():
		ok, d := c.executeLoad(t, di, now)
		if !ok {
			return false
		}
		done = d
	case op.IsStore():
		done = now + 1 // address generation; data memory is touched at commit
		if t.mode == ModeRunahead {
			c.executeRunaheadStore(t, di, now)
		}
	case op == isa.OpIntMul:
		done = now + c.cfg.IntMulLat
	case op == isa.OpFpAlu:
		done = now + c.cfg.FPAluLat
	case op == isa.OpFpMul:
		done = now + c.cfg.FPMulLat
	case op == isa.OpFpDiv:
		done = now + c.cfg.FPDivLat
	default: // IntAlu, Branch, Nop, sync ops in normal mode
		done = now + 1
	}
	if done <= now {
		done = now + 1
	}
	c.schedule(di, now, done)
	return true
}

// executeLoad performs the data-cache access for a load. Normal mode uses
// a demand access and records long-latency misses (the STALL/FLUSH/RaT
// trigger). Runahead mode converts L2 misses into prefetches and poisons
// the destination instead of waiting (§3.2).
func (c *Core) executeLoad(t *thread, di *DynInst, now uint64) (ok bool, done uint64) {
	addr := di.addr
	if t.mode != ModeRunahead {
		res := c.hier.Access(mem.KindLoad, t.id, addr, now)
		if res.NoMSHR {
			return false, 0
		}
		if res.Level == mem.LevelMemory {
			di.isL2Miss = true
			di.doneAt = res.DoneAt // published early for the detection path
			di.missDetectAt = now + c.cfg.Mem.DL1.Latency + c.cfg.Mem.L2.Latency
			t.stats.L2MissLoads.Inc()
			c.pendingDetect = append(c.pendingDetect, wheelRef{di, di.id})
		}
		return true, res.DoneAt
	}

	// Runahead load.
	if c.racache != nil {
		line := addr &^ (c.cfg.Mem.DL1.LineBytes - 1)
		if found, invData := c.racache.LookupLoad(t.id, line); found {
			// Store-to-load communication through the runahead cache: the
			// load forwards without a memory access and inherits the
			// stored data's validity.
			di.inv = invData
			if invData {
				t.stats.Runahead.InvalidLoads.Inc()
			}
			return true, now + 1
		}
	}
	if !c.cfg.Runahead.Prefetch {
		// Figure 4 "no prefetching" ablation: no access below the L1; an
		// L1 miss is poisoned, and the load is recorded so it cannot
		// re-trigger runahead after recovery (the paper's period-matching
		// methodology).
		if c.hier.DL1().Lookup(addr) {
			return true, now + c.cfg.Mem.DL1.Latency
		}
		di.inv = true
		t.raSuppress.add(di.seq)
		t.stats.Runahead.InvalidLoads.Inc()
		return true, now + 1
	}
	res := c.hier.Access(mem.KindPrefetch, t.id, addr, now)
	if res.NoMSHR {
		// No MSHR for the prefetch: poison and move on; runahead never
		// waits on memory.
		di.inv = true
		t.stats.Runahead.InvalidLoads.Inc()
		return true, now + 1
	}
	if res.Level == mem.LevelMemory {
		// Long-latency: the access stays in flight as a prefetch; the
		// load's result is poisoned and the thread keeps running.
		di.inv = true
		t.stats.Runahead.PrefetchesIssued.Inc()
		t.stats.Runahead.InvalidLoads.Inc()
		return true, now + 1
	}
	return true, res.DoneAt
}

// executeRunaheadStore issues the prefetch side effects of a valid-address
// runahead store: the target line is prefetched (stores miss too), and
// with the runahead cache enabled, the store records its data validity for
// later loads.
func (c *Core) executeRunaheadStore(t *thread, di *DynInst, now uint64) {
	addr := di.addr
	if c.racache != nil {
		line := addr &^ (c.cfg.Mem.DL1.LineBytes - 1)
		invData := c.regKnownInv(di.tmpl.Src2, di.src2)
		c.racache.RecordStore(t.id, line, invData)
	}
	if c.cfg.Runahead.Prefetch {
		res := c.hier.Access(mem.KindPrefetch, t.id, addr, now)
		if !res.NoMSHR && res.Level == mem.LevelMemory {
			t.stats.Runahead.PrefetchesIssued.Inc()
		}
	}
}

// schedule registers di's completion at cycle done.
func (c *Core) schedule(di *DynInst, now, done uint64) {
	if done-now >= wheelSize {
		// Defensive: the wheel must never wrap past an in-flight event.
		//lint:panicfree unreachable-invariant guard: wheelSize exceeds the maximum latency any unit can report; wrapping would corrupt event ordering, so halting beats a silently wrong simulation
		panic(fmt.Sprintf("pipeline: completion %d cycles ahead exceeds wheel %d", done-now, wheelSize))
	}
	di.doneAt = done
	slot := done % wheelSize
	c.wheel[slot] = append(c.wheel[slot], wheelRef{di, di.id})
}

// detectMisses fires the L2-miss detections due this cycle: the paper's
// STALL/FLUSH reactions (and the runahead trigger gate) happen when the
// L2 reports the miss, roughly an L1+L2 latency after issue — not the
// instant the access leaves the core. Loads squashed or already resolved
// in the meantime detect nothing.
func (c *Core) detectMisses(now uint64) {
	if len(c.pendingDetect) == 0 {
		return
	}
	kept := c.pendingDetect[:0]
	for _, ref := range c.pendingDetect {
		di := ref.di
		if !ref.live() || di.squashed || now >= di.doneAt {
			continue
		}
		if now < di.missDetectAt {
			kept = append(kept, ref)
			continue
		}
		t := c.threads[di.tid]
		t.pendingMisses = append(t.pendingMisses, di.doneAt)
		c.policy.OnL2Miss(c, di)
	}
	c.pendingDetect = kept
}

// completeStage drains completions scheduled for this cycle: results
// become ready, dependents can wake next scan, and branches resolve.
func (c *Core) completeStage(now uint64) {
	slot := now % wheelSize
	for _, ref := range c.wheel[slot] {
		di := ref.di
		if !ref.live() || di.squashed || di.completed {
			continue
		}
		di.completed = true
		if di.dst >= 0 {
			c.fileFor(di.tmpl.Dst).MarkReady(di.dst, di.inv)
		}
		if di.tmpl.Op.IsBranch() {
			c.resolveBranch(di, now)
		}
	}
	c.wheel[slot] = c.wheel[slot][:0]
}

// resolveBranch trains the predictor and lifts the fetch block of a
// resolved misprediction, charging the redirect penalty.
func (c *Core) resolveBranch(di *DynInst, now uint64) {
	t := c.threads[di.tid]
	t.stats.BranchResolved.Inc()
	if !di.inv {
		t.bp.Update(di.tmpl.PC, di.tmpl.Taken)
	}
	if di.mispredicted {
		t.stats.BranchMispredicted.Inc()
		if t.blockingBranch == di {
			t.blockingBranch = nil
			t.haveFetchLine = false
			redirect := now + 1 + c.cfg.MispredictRedirect
			if redirect > t.fetchBlockedUntil {
				t.fetchBlockedUntil = redirect
			}
		}
	}
}
