package pipeline

import (
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/regfile"
	"repro/internal/runahead"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Mode is a thread's execution mode.
type Mode uint8

const (
	// ModeNormal is ordinary committed execution.
	ModeNormal Mode = iota
	// ModeRunahead is the speculative light mode of a Runahead Thread.
	ModeRunahead
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeRunahead {
		return "runahead"
	}
	return "normal"
}

// ThreadStats aggregates one hardware context's activity.
type ThreadStats struct {
	// Committed counts architecturally committed instructions (IPC's
	// numerator).
	Committed stats.Counter
	// Fetched counts instructions brought into the front end.
	Fetched stats.Counter
	// Executed counts instructions that occupied a functional unit,
	// including runahead and later-squashed work — the energy proxy the
	// paper's ED² metric (§5.3) is built on.
	Executed stats.Counter
	// Squashed counts instructions discarded by flushes and runahead exits.
	Squashed stats.Counter
	// BranchResolved / BranchMispredicted drive predictor accuracy stats.
	BranchResolved     stats.Counter
	BranchMispredicted stats.Counter
	// L2MissLoads counts demand loads served by main memory.
	L2MissLoads stats.Counter
	// Runahead groups the RaT counters.
	Runahead runahead.Stats
	// RegsNormal and RegsRunahead sample per-cycle allocated physical
	// registers (INT+FP) by mode — Figure 5's measurement.
	RegsNormal, RegsRunahead stats.RunningMean
}

// thread is one hardware context.
type thread struct {
	id int
	tr *trace.Trace
	bp *bpred.Perceptron

	// cursor is the next trace position to fetch (monotonic; the trace
	// wraps internally, modelling FAME re-execution).
	cursor uint64

	// fq is the front-end queue: fetched, not yet renamed.
	fq instRing
	// rob is the thread's program-order window of the shared ROB.
	rob instRing

	// writers is the rename table: the latest writer of each architectural
	// register. The physical mapping derives from the writer's state (see
	// mapGet), which makes rollback and the runahead checkpoint exact: a
	// retired writer reads as architectural state (or poison if it
	// pseudo-retired invalid), an in-flight writer reads as its physical
	// destination.
	writers [isa.NumArchRegs]*DynInst

	// icount tracks instructions between fetch and issue (the ICOUNT
	// priority input).
	icount int
	// iqHeld counts issue-queue entries currently held, per queue kind.
	iqHeld [4]int

	// Fetch gating.
	fetchBlockedUntil uint64
	blockingBranch    *DynInst // unresolved mispredicted branch stalls fetch
	lastFetchLine     uint64
	haveFetchLine     bool

	// Outstanding demand L2 misses (completion cycles); STALL and FLUSH
	// gate fetch while any is in the future.
	pendingMisses []uint64

	// Runahead state.
	mode      Mode
	raExitAt  uint64
	raLoadSeq uint64
	raEntered uint64 // cycle of entry, for period stats
	// raSuppress records (by thread-local seq) loads that were invalidated
	// during a no-prefetch runahead episode; they must not re-trigger
	// runahead after recovery (Figure 4 methodology).
	raSuppress seqSet
	// deferredFree holds pseudo-retired invalid instructions: the rename
	// table keeps resolving them to poison until the episode ends, so they
	// recycle at exitRunahead (after the checkpoint restore), not at retire.
	deferredFree []*DynInst

	stats ThreadStats
}

// mapGet resolves an architectural register to its current physical
// mapping: None for architectural (committed) state, Invalid for a
// poisoned value with no backing register, or the in-flight writer's
// destination.
func (t *thread) mapGet(a isa.Reg) regfile.PhysReg {
	if a == isa.RegNone {
		return regfile.None
	}
	w := t.writers[a]
	if w == nil {
		return regfile.None
	}
	if w.retired {
		if w.inv {
			return regfile.Invalid
		}
		return regfile.None
	}
	return w.dst
}

// resetWriters restores the rename table to the all-architectural
// checkpoint state (runahead exit).
func (t *thread) resetWriters() {
	for i := range t.writers {
		t.writers[i] = nil
	}
}

// liveWriters counts table entries naming in-flight instructions.
func (t *thread) liveWriters() int {
	n := 0
	for _, w := range t.writers {
		if w != nil && !w.retired && !w.squashed {
			n++
		}
	}
	return n
}

// pendingL2Miss reports whether the thread has a demand miss outstanding
// at cycle now, pruning resolved entries.
func (t *thread) pendingL2Miss(now uint64) bool {
	kept := t.pendingMisses[:0]
	for _, d := range t.pendingMisses {
		if d > now {
			kept = append(kept, d)
		}
	}
	t.pendingMisses = kept
	return len(kept) > 0
}
