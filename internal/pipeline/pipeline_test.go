package pipeline

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/runahead"
	"repro/internal/trace"
)

// aluTrace builds a trivial independent-ALU trace.
func aluTrace(n int) *trace.Trace {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{
			PC:   0x400000 + uint64(4*(i%256)),
			Op:   isa.OpIntAlu,
			Dst:  isa.IntReg(1 + i%20),
			Src1: isa.IntReg(28),
			Src2: isa.IntReg(29),
		}
	}
	return trace.FromInsts("alu", trace.ClassILP, insts)
}

// chainTrace builds a fully serial dependence chain.
func chainTrace(n int) *trace.Trace {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{
			PC:   0x400000 + uint64(4*(i%256)),
			Op:   isa.OpIntAlu,
			Dst:  isa.IntReg(1),
			Src1: isa.IntReg(1),
			Src2: isa.IntReg(1),
		}
	}
	return trace.FromInsts("chain", trace.ClassILP, insts)
}

// missLoadTrace interleaves loads that miss everywhere (distinct lines
// across a huge footprint) with dependent ALU work.
func missLoadTrace(n int, dependent bool) *trace.Trace {
	insts := make([]isa.Inst, n)
	for i := range insts {
		if i%8 == 0 {
			insts[i] = isa.Inst{
				PC:   0x400000 + uint64(4*(i%256)),
				Op:   isa.OpLoad,
				Dst:  isa.IntReg(1 + (i/8)%8),
				Src1: isa.IntReg(28),
				Addr: 0x10_0000_0000 + uint64(i)*4096, // all distinct lines
			}
		} else {
			src := isa.IntReg(28)
			if dependent {
				src = isa.IntReg(1 + (i/8)%8) // depends on the last load
			}
			insts[i] = isa.Inst{
				PC:   0x400000 + uint64(4*(i%256)),
				Op:   isa.OpIntAlu,
				Dst:  isa.IntReg(10 + i%10),
				Src1: src,
				Src2: isa.IntReg(29),
			}
		}
	}
	return trace.FromInsts("missload", trace.ClassMEM, insts)
}

func run(t *testing.T, c *Core, cycles int) {
	t.Helper()
	c.SetParanoid(true)
	for i := 0; i < cycles; i++ {
		c.Step()
	}
}

func mustNew(t *testing.T, cfg Config, traces []*trace.Trace, pol Policy) *Core {
	t.Helper()
	c, err := New(cfg, traces, pol)
	if err != nil {
		t.Fatal(err)
	}
	c.WarmupICache()
	return c
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(DefaultConfig(), nil, nil); err == nil {
		t.Fatal("no threads accepted")
	}
	bad := DefaultConfig()
	bad.Width = 0
	if _, err := New(bad, []*trace.Trace{aluTrace(10)}, nil); err == nil {
		t.Fatal("zero width accepted")
	}
	nine := make([]*trace.Trace, 9)
	for i := range nine {
		nine[i] = aluTrace(10)
	}
	if _, err := New(DefaultConfig(), nine, nil); err == nil {
		t.Fatal("9 threads accepted")
	}
}

func TestSingleThreadALUThroughput(t *testing.T) {
	// Independent single-cycle ALU ops: IPC should approach the INT FU
	// count (6) once warm, and must certainly exceed 3.
	c := mustNew(t, DefaultConfig(), []*trace.Trace{aluTrace(1000)}, nil)
	run(t, c, 3000)
	ipc := float64(c.Committed(0)) / 3000
	if ipc < 3.0 {
		t.Fatalf("independent-ALU IPC = %.2f, want > 3", ipc)
	}
	if ipc > 6.5 {
		t.Fatalf("IPC = %.2f exceeds INT FU bandwidth", ipc)
	}
}

func TestSerialChainIPCIsOne(t *testing.T) {
	// A fully serial chain can never exceed IPC 1 and should be close to it.
	c := mustNew(t, DefaultConfig(), []*trace.Trace{chainTrace(1000)}, nil)
	run(t, c, 4000)
	ipc := float64(c.Committed(0)) / 4000
	if ipc > 1.01 {
		t.Fatalf("serial chain IPC = %.2f > 1", ipc)
	}
	if ipc < 0.5 {
		t.Fatalf("serial chain IPC = %.2f unreasonably low", ipc)
	}
}

func TestCommitIsInProgramOrder(t *testing.T) {
	// With paranoid checks on, committed counts must be monotone and the
	// machine must drain without leaks; program order is enforced
	// structurally (per-thread ROB FIFO), so committing at all is the test.
	c := mustNew(t, DefaultConfig(), []*trace.Trace{missLoadTrace(256, true)}, nil)
	prev := uint64(0)
	c.SetParanoid(true)
	for i := 0; i < 5000; i++ {
		c.Step()
		got := c.Committed(0)
		if got < prev {
			t.Fatal("committed count went backwards")
		}
		prev = got
	}
	if prev == 0 {
		t.Fatal("nothing committed in 5000 cycles")
	}
}

func TestL2MissBlocksWithoutRunahead(t *testing.T) {
	// Without RaT, a miss-every-8-instructions trace with dependent ALU
	// work commits slowly: each miss costs ~423 cycles and the window
	// (512) covers only a few misses at a time.
	c := mustNew(t, DefaultConfig(), []*trace.Trace{missLoadTrace(2000, true)}, nil)
	run(t, c, 20000)
	ipc := float64(c.Committed(0)) / 20000
	if ipc > 1.0 {
		t.Fatalf("memory-bound IPC = %.2f, expected <1 under 400-cycle misses", ipc)
	}
	if c.Stats(0).L2MissLoads.Value() == 0 {
		t.Fatal("no L2 misses recorded")
	}
}

func TestRunaheadEntersAndExits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	c := mustNew(t, cfg, []*trace.Trace{missLoadTrace(2000, false)}, nil)
	run(t, c, 20000)
	st := c.Stats(0)
	if st.Runahead.Episodes.Value() == 0 {
		t.Fatal("no runahead episodes on a miss-heavy trace")
	}
	if st.Runahead.PseudoRetired.Value() == 0 {
		t.Fatal("no pseudo-retired instructions")
	}
	if st.Runahead.CyclesInRunahead.Value() == 0 {
		t.Fatal("no cycles in runahead")
	}
	if c.InRunahead(0) {
		// The thread may legitimately end mid-episode, but with 20000
		// cycles and ~423-cycle episodes it should usually be out; accept
		// either, just ensure mode flips happened.
		t.Log("thread still in runahead at end (acceptable)")
	}
	if st.Runahead.PrefetchesIssued.Value() == 0 {
		t.Fatal("runahead issued no prefetches on independent misses")
	}
}

func TestRunaheadImprovesDependentMissThroughput(t *testing.T) {
	// The headline mechanism. When miss-dependent work clogs the issue
	// queues (every real program), the baseline window covers only a few
	// concurrent misses; a runahead thread pseudo-retires the clog and
	// prefetches far ahead. Require a solid speedup.
	base := mustNew(t, DefaultConfig(), []*trace.Trace{missLoadTrace(4000, true)}, nil)
	run(t, base, 30000)

	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	rat := mustNew(t, cfg, []*trace.Trace{missLoadTrace(4000, true)}, nil)
	run(t, rat, 30000)

	b, r := base.Committed(0), rat.Committed(0)
	if float64(r) < 1.5*float64(b) {
		t.Fatalf("runahead speedup %.2fx (base %d, RaT %d), want >= 1.5x",
			float64(r)/float64(b), b, r)
	}
}

func TestRunaheadHarmlessOnIndependentMisses(t *testing.T) {
	// With fully independent misses, the 512-entry window already extracts
	// all the MLP; runahead must not catastrophically hurt (cf. Figure 4's
	// "overhead" result: small worst-case interference).
	base := mustNew(t, DefaultConfig(), []*trace.Trace{missLoadTrace(4000, false)}, nil)
	run(t, base, 30000)

	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	rat := mustNew(t, cfg, []*trace.Trace{missLoadTrace(4000, false)}, nil)
	run(t, rat, 30000)

	b, r := float64(base.Committed(0)), float64(rat.Committed(0))
	if r < 0.6*b {
		t.Fatalf("runahead lost %.0f%% on independent misses (base %v, RaT %v)",
			100*(1-r/b), b, r)
	}
}

func TestRunaheadNoPrefetchDoesNotPrefetch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	cfg.Runahead.Prefetch = false
	c := mustNew(t, cfg, []*trace.Trace{missLoadTrace(2000, false)}, nil)
	run(t, c, 20000)
	st := c.Stats(0)
	if st.Runahead.Episodes.Value() == 0 {
		t.Fatal("no episodes in no-prefetch mode")
	}
	if st.Runahead.PrefetchesIssued.Value() != 0 {
		t.Fatal("no-prefetch mode issued prefetches")
	}
	if c.Hierarchy().PrefetchIssue.Value() != 0 {
		t.Fatal("hierarchy saw prefetches in no-prefetch mode")
	}
}

func TestRunaheadSuppressionAfterNoPrefetch(t *testing.T) {
	// In no-prefetch mode, loads invalidated during an episode must not
	// re-trigger runahead after recovery: episode count should be well
	// below the L2-miss-load count.
	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	cfg.Runahead.Prefetch = false
	c := mustNew(t, cfg, []*trace.Trace{missLoadTrace(2000, false)}, nil)
	run(t, c, 30000)
	st := c.Stats(0)
	episodes := st.Runahead.Episodes.Value()
	misses := st.L2MissLoads.Value()
	if episodes == 0 || misses == 0 {
		t.Fatalf("degenerate run: episodes=%d misses=%d", episodes, misses)
	}
	if episodes > misses {
		t.Fatalf("more episodes (%d) than misses (%d)", episodes, misses)
	}
}

func TestTwoThreadsShareMachine(t *testing.T) {
	c := mustNew(t, DefaultConfig(), []*trace.Trace{aluTrace(1000), aluTrace(1000)}, nil)
	run(t, c, 3000)
	if c.Committed(0) == 0 || c.Committed(1) == 0 {
		t.Fatalf("starvation: committed %d / %d", c.Committed(0), c.Committed(1))
	}
	// Two identical threads under ICOUNT should commit within 20% of each
	// other.
	a, b := float64(c.Committed(0)), float64(c.Committed(1))
	if a/b > 1.2 || b/a > 1.2 {
		t.Fatalf("identical threads diverged: %v vs %v", a, b)
	}
}

func TestMemBoundThreadDegradesILPPartner(t *testing.T) {
	// The paper's motivating pathology: an ILP thread paired with a
	// MEM-bound thread under plain ICOUNT loses throughput versus running
	// alone, because the MEM thread clogs shared resources.
	alone := mustNew(t, DefaultConfig(), []*trace.Trace{aluTrace(1000)}, nil)
	run(t, alone, 10000)

	paired := mustNew(t, DefaultConfig(),
		[]*trace.Trace{aluTrace(1000), missLoadTrace(4000, true)}, nil)
	run(t, paired, 10000)

	soloIPC := float64(alone.Committed(0)) / 10000
	pairIPC := float64(paired.Committed(0)) / 10000
	if pairIPC >= soloIPC {
		t.Fatalf("ILP thread unaffected by MEM partner: solo %.2f, paired %.2f",
			soloIPC, pairIPC)
	}
}

func TestRunaheadProtectsILPPartner(t *testing.T) {
	// With RaT, the MEM thread pseudo-retires instead of clogging; the ILP
	// partner must do better than under plain ICOUNT.
	mk := func(ra bool) *Core {
		cfg := DefaultConfig()
		if ra {
			cfg.Runahead = runahead.Default()
		}
		return mustNew(t, cfg,
			[]*trace.Trace{aluTrace(1000), missLoadTrace(4000, true)}, nil)
	}
	base, rat := mk(false), mk(true)
	run(t, base, 15000)
	run(t, rat, 15000)
	if rat.Committed(0) <= base.Committed(0) {
		t.Fatalf("ILP partner: ICOUNT %d vs RaT %d, want RaT better",
			base.Committed(0), rat.Committed(0))
	}
}

func TestFlushAfterReleasesResources(t *testing.T) {
	c := mustNew(t, DefaultConfig(), []*trace.Trace{missLoadTrace(512, true)}, nil)
	c.SetParanoid(true)
	// Run until the thread has a pending L2 miss and a deep window.
	var ld *DynInst
	for i := 0; i < 5000 && ld == nil; i++ {
		c.Step()
		th := c.threads[0]
		if th.rob.len() > 50 {
			for j := 0; j < th.rob.len(); j++ {
				if di := th.rob.at(j); di.isL2Miss && !di.completed {
					ld = di
					break
				}
			}
		}
	}
	if ld == nil {
		t.Fatal("never found an in-flight L2 miss with a deep window")
	}
	before := c.ROBOccupancy(0)
	c.FlushAfter(ld)
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after flush: %v", err)
	}
	after := c.ROBOccupancy(0)
	if after >= before {
		t.Fatalf("flush freed nothing: %d -> %d", before, after)
	}
	// The machine must continue to run and commit.
	for i := 0; i < 10000; i++ {
		c.Step()
	}
	if c.Committed(0) == 0 {
		t.Fatal("no commits after flush")
	}
}

func TestFPInvalidationSkipsFPResources(t *testing.T) {
	// A runahead thread with FP arithmetic: with InvalidateFP, FP compute
	// must fold at decode (no FP executions during runahead).
	n := 2000
	insts := make([]isa.Inst, n)
	for i := range insts {
		switch i % 8 {
		case 0:
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpLoad,
				Dst: isa.IntReg(1), Src1: isa.IntReg(28),
				Addr: 0x20_0000_0000 + uint64(i)*4096}
		case 1, 2, 3:
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpFpAlu,
				Dst: isa.FPReg(1 + i%8), Src1: isa.FPReg(28), Src2: isa.FPReg(29)}
		default:
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpIntAlu,
				Dst: isa.IntReg(2 + i%8), Src1: isa.IntReg(28), Src2: isa.IntReg(29)}
		}
	}
	tr := trace.FromInsts("fpmix", trace.ClassMEM, insts)

	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	c := mustNew(t, cfg, []*trace.Trace{tr}, nil)
	run(t, c, 20000)
	st := c.Stats(0)
	if st.Runahead.Episodes.Value() == 0 {
		t.Fatal("no runahead")
	}
	if st.Runahead.Folded.Value() == 0 {
		t.Fatal("FP invalidation folded nothing")
	}
}

func TestSyncOpsIgnoredInRunahead(t *testing.T) {
	n := 1000
	insts := make([]isa.Inst, n)
	for i := range insts {
		switch i % 8 {
		case 0:
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpLoad,
				Dst: isa.IntReg(1), Src1: isa.IntReg(28),
				Addr: 0x30_0000_0000 + uint64(i)*4096}
		case 1:
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpAcquire, Src1: isa.IntReg(28)}
		case 2:
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpRelease, Src1: isa.IntReg(28)}
		default:
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpIntAlu,
				Dst: isa.IntReg(2 + i%8), Src1: isa.IntReg(28), Src2: isa.IntReg(29)}
		}
	}
	tr := trace.FromInsts("sync", trace.ClassMEM, insts)
	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	c := mustNew(t, cfg, []*trace.Trace{tr}, nil)
	run(t, c, 15000)
	if c.Stats(0).Runahead.Episodes.Value() == 0 {
		t.Fatal("no runahead on sync trace")
	}
	// Sync ops execute normally outside runahead and are ignored inside;
	// either way the machine must make progress and hold invariants.
	if c.Committed(0) == 0 {
		t.Fatal("no commits")
	}
}

func TestRegistersDrainAfterRun(t *testing.T) {
	// After enough cycles with fetch stopped (by exhausting trace supply we
	// cannot — traces loop — so instead check a bounded property): register
	// occupancy never exceeds file sizes and invariants hold under mixed
	// runahead workloads.
	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	c := mustNew(t, cfg, []*trace.Trace{
		missLoadTrace(2000, true),
		aluTrace(500),
	}, nil)
	c.SetParanoid(true)
	for i := 0; i < 10000; i++ {
		c.Step()
	}
	if c.RegsHeld(0)+c.RegsHeld(1) > cfg.IntRegs+cfg.FPRegs {
		t.Fatal("register occupancy exceeds file sizes")
	}
}

func TestSmallRegisterFileStillWorks(t *testing.T) {
	// Figure 6's extreme point: 64 INT + 64 FP registers with multiple
	// threads must run correctly (slower, never deadlocked).
	cfg := DefaultConfig()
	cfg.IntRegs, cfg.FPRegs = 64, 64
	cfg.Runahead = runahead.Default()
	c := mustNew(t, cfg, []*trace.Trace{
		missLoadTrace(1000, true),
		aluTrace(500),
		aluTrace(500),
		missLoadTrace(1000, false),
	}, nil)
	run(t, c, 15000)
	for tid := 0; tid < 4; tid++ {
		if c.Committed(tid) == 0 {
			t.Fatalf("thread %d starved with small register file", tid)
		}
	}
}

func TestGeneratedTracesIntegration(t *testing.T) {
	// End-to-end: real generated benchmarks, RaT on, paranoid checks.
	mcf := trace.MustGenerate(trace.MustLookup("mcf"), trace.Options{Len: 4000, Seed: 1})
	gzip := trace.MustGenerate(trace.MustLookup("gzip"), trace.Options{Len: 4000, Seed: 2,
		DataBase: 0x8000_0000, CodeBase: 0x0200_0000})
	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	c := mustNew(t, cfg, []*trace.Trace{mcf, gzip}, nil)
	run(t, c, 20000)
	if c.Committed(0) == 0 || c.Committed(1) == 0 {
		t.Fatalf("starvation: %d / %d", c.Committed(0), c.Committed(1))
	}
	if c.Stats(0).Runahead.Episodes.Value() == 0 {
		t.Fatal("mcf never entered runahead")
	}
}

func TestBranchMispredictionsResolve(t *testing.T) {
	// A trace with deliberately unpredictable branches must still make
	// progress, and mispredictions must be recorded.
	n := 2000
	insts := make([]isa.Inst, n)
	for i := range insts {
		if i%4 == 3 {
			taken := (i/4)%3 == 0 // period-3 pattern over one PC: hard
			insts[i] = isa.Inst{PC: 0x1000, Op: isa.OpBranch,
				Src1: isa.IntReg(28), Taken: taken, Target: 0x2000}
		} else {
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpIntAlu,
				Dst: isa.IntReg(1 + i%20), Src1: isa.IntReg(28), Src2: isa.IntReg(29)}
		}
	}
	tr := trace.FromInsts("branchy", trace.ClassILP, insts)
	c := mustNew(t, DefaultConfig(), []*trace.Trace{tr}, nil)
	run(t, c, 10000)
	st := c.Stats(0)
	if st.BranchResolved.Value() == 0 {
		t.Fatal("no branches resolved")
	}
	if st.BranchMispredicted.Value() == 0 {
		t.Fatal("adversarial pattern never mispredicted")
	}
	if c.Committed(0) == 0 {
		t.Fatal("no commits")
	}
}

func TestICountPolicyBasics(t *testing.T) {
	var p ICount
	if p.Name() != "ICOUNT" {
		t.Fatal("name")
	}
	c := mustNew(t, DefaultConfig(), []*trace.Trace{aluTrace(100), aluTrace(100)}, p)
	run(t, c, 100)
	buf := p.FetchPriority(c, nil)
	if len(buf) != 2 {
		t.Fatalf("priority list has %d entries", len(buf))
	}
	if !p.CanDispatch(c, 0) {
		t.Fatal("ICOUNT must not gate dispatch")
	}
}

func TestRunaheadCacheAblationRuns(t *testing.T) {
	// Store→load communication through the runahead cache; per the paper
	// the performance difference is tiny, but the mechanism must work.
	n := 2000
	insts := make([]isa.Inst, n)
	for i := range insts {
		switch i % 8 {
		case 0:
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpLoad,
				Dst: isa.IntReg(1), Src1: isa.IntReg(28),
				Addr: 0x40_0000_0000 + uint64(i)*4096}
		case 1:
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpStore,
				Src1: isa.IntReg(28), Src2: isa.IntReg(1), // stores the (possibly INV) load result
				Addr: 0x1000 + uint64(i%64)*8}
		case 2:
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpLoad,
				Dst: isa.IntReg(5), Src1: isa.IntReg(28),
				Addr: 0x1000 + uint64((i-1)%64)*8} // may forward from the store
		default:
			insts[i] = isa.Inst{PC: uint64(4 * (i % 256)), Op: isa.OpIntAlu,
				Dst: isa.IntReg(6 + i%8), Src1: isa.IntReg(28), Src2: isa.IntReg(29)}
		}
	}
	tr := trace.FromInsts("fwd", trace.ClassMEM, insts)
	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	cfg.Runahead.UseRunaheadCache = true
	c := mustNew(t, cfg, []*trace.Trace{tr}, nil)
	run(t, c, 15000)
	if c.Stats(0).Runahead.Episodes.Value() == 0 {
		t.Fatal("no runahead")
	}
	if c.racache == nil {
		t.Fatal("runahead cache not built")
	}
	if c.racache.Installs.Value() == 0 {
		t.Fatal("runahead cache recorded no stores")
	}
}

func BenchmarkCoreStepMEM2(b *testing.B) {
	art := trace.MustGenerate(trace.MustLookup("art"), trace.Options{Len: 20000, Seed: 1})
	mcf := trace.MustGenerate(trace.MustLookup("mcf"), trace.Options{Len: 20000, Seed: 2,
		DataBase: 0x8000_0000, CodeBase: 0x0200_0000})
	cfg := DefaultConfig()
	cfg.Runahead = runahead.Default()
	c, err := New(cfg, []*trace.Trace{art, mcf}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}
