package pipeline

import (
	"repro/internal/isa"
	"repro/internal/regfile"
)

// dispatchStage renames and dispatches up to Width instructions from the
// front-end queues into the shared ROB and issue queues. Threads are
// served in rotating order for fairness; per-thread order is program
// order. Dispatch stalls a thread when the shared ROB, its issue queue,
// or a physical register is unavailable, or when the policy's resource
// caps say so — these stalls are exactly the resource contention the
// paper studies.
func (c *Core) dispatchStage(now uint64) {
	n := len(c.threads)
	budget := c.cfg.Width
	for k := 0; k < n && budget > 0; k++ {
		t := c.threads[(int(now)+k)%n]
		for budget > 0 && t.fq.len() > 0 {
			di := t.fq.front()
			if di.fetchReadyAt > now {
				break
			}
			if c.robCount >= c.cfg.ROBSize {
				break
			}
			if !c.policy.CanDispatch(c, t.id) {
				break
			}
			if !c.tryDispatch(t, di, now) {
				break
			}
			t.fq.popFront()
			budget--
		}
	}
}

// tryDispatch renames di and inserts it into the ROB and its issue queue,
// or folds it (runahead mode). It returns false when a structural resource
// is missing, leaving no side effects.
func (c *Core) tryDispatch(t *thread, di *DynInst, now uint64) bool {
	op := di.tmpl.Op

	if t.mode == ModeRunahead {
		// §3.3 decode-time invalidation: FP arithmetic in a runahead thread
		// consumes no resources past decode. (FP loads/stores are not "FP"
		// here — their addresses come from the integer pipeline.)
		if c.cfg.Runahead.InvalidateFP && op.IsFP() {
			c.foldAtDispatch(t, di, true)
			return true
		}
		// §3.3 synchronization: acquire/release/block are ignored in
		// runahead mode (speculation must not touch cross-thread state).
		if op.IsSync() {
			c.foldAtDispatch(t, di, false)
			return true
		}
		// Operand already known-INV: fold now, consuming nothing.
		if c.dispatchOperandInv(t, di) {
			c.foldAtDispatch(t, di, true)
			return true
		}
	}

	kind := iqKindFor(op)
	q := c.iqs[kind]
	if q.count >= q.cap {
		return false
	}
	var file *regfile.File
	if di.tmpl.HasDst() {
		file = c.fileFor(di.tmpl.Dst)
		p, ok := file.Alloc(t.id)
		if !ok {
			return false
		}
		di.dst = p
	}

	// Rename sources and take references on in-flight producers.
	di.src1 = t.mapGet(di.tmpl.Src1)
	di.src2 = t.mapGet(di.tmpl.Src2)
	if di.src1 >= 0 {
		c.fileFor(di.tmpl.Src1).IncRef(di.src1)
	}
	if di.src2 >= 0 {
		c.fileFor(di.tmpl.Src2).IncRef(di.src2)
	}
	if di.tmpl.HasDst() {
		di.prevWriter = t.writers[di.tmpl.Dst]
		if di.prevWriter != nil {
			di.prevWriterID = di.prevWriter.id
		}
		t.writers[di.tmpl.Dst] = di
	}

	di.iq = kind
	di.dispatched = true
	q.entries = append(q.entries, di)
	q.count++
	t.iqHeld[kind]++
	t.rob.pushBack(di)
	c.robCount++
	return true
}

// dispatchOperandInv reports whether di's relevant source operands are
// already known-invalid. For memory operations only the address source
// matters (src1): a store whose *data* is INV still computes its address —
// and, with the runahead cache, records the invalid data for store-to-load
// communication.
func (c *Core) dispatchOperandInv(t *thread, di *DynInst) bool {
	op := di.tmpl.Op
	inv1 := c.regKnownInv(di.tmpl.Src1, t.mapGet(di.tmpl.Src1))
	if op.IsMem() {
		return inv1
	}
	return inv1 || c.regKnownInv(di.tmpl.Src2, t.mapGet(di.tmpl.Src2))
}

// regKnownInv reports whether a renamed operand is ready and INV.
func (c *Core) regKnownInv(a isa.Reg, p regfile.PhysReg) bool {
	if p == regfile.Invalid {
		return true
	}
	if p < 0 {
		return false
	}
	f := c.fileFor(a)
	return f.Ready(p) && f.Inv(p)
}

// foldAtDispatch retires di into the ROB as a folded instruction: no issue
// queue entry, no functional unit, no physical register. Its destination
// (if any) maps to the Invalid sentinel so consumers inherit the poison.
func (c *Core) foldAtDispatch(t *thread, di *DynInst, inv bool) {
	if di.tmpl.HasDst() {
		di.dst = regfile.Invalid
		di.prevWriter = t.writers[di.tmpl.Dst]
		if di.prevWriter != nil {
			di.prevWriterID = di.prevWriter.id
		}
		t.writers[di.tmpl.Dst] = di
	}
	di.folded = true
	di.completed = true
	di.inv = inv
	di.iq = IQNone
	di.dispatched = true
	di.refsReleased = true // no references were ever taken
	t.rob.pushBack(di)
	c.robCount++
	t.icount-- // leaves the fetch-to-issue population immediately
	t.stats.Runahead.Folded.Inc()
}
