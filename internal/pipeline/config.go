package pipeline

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/runahead"
)

// Config is the SMT core configuration. DefaultConfig reproduces Table 1
// of the paper.
type Config struct {
	// Width is the machine width: fetch, dispatch, issue and commit
	// bandwidth per cycle (8 in Table 1).
	Width int
	// FetchThreads is how many threads may fetch in one cycle (the 2 of
	// ICOUNT.2.8).
	FetchThreads int
	// FrontEndDepth is the fetch-to-dispatch latency in cycles; together
	// with the execution stages it models the 10-stage pipe.
	FrontEndDepth uint64
	// FetchQueue is the per-thread front-end buffer capacity.
	FetchQueue int
	// ROBSize is the shared reorder buffer capacity (512 in Table 1).
	ROBSize int
	// IntRegs and FPRegs size the shared physical register files
	// (320 / 320 in Table 1).
	IntRegs, FPRegs int
	// IntIQ, FPIQ, LSIQ size the shared issue queues (64 each in Table 1).
	IntIQ, FPIQ, LSIQ int
	// IntFU, FPFU, LSFU count the functional units (6 / 3 / 4 in Table 1).
	IntFU, FPFU, LSFU int

	// Execution latencies (cycles).
	IntMulLat, FPAluLat, FPMulLat, FPDivLat uint64

	// MispredictRedirect is the extra fetch-redirect cost after a resolved
	// branch misprediction, on top of waiting for resolution.
	MispredictRedirect uint64

	// BranchPredRows sizes the shared perceptron table.
	BranchPredRows int

	// Mem configures the memory hierarchy.
	Mem mem.Config

	// Runahead configures the RaT mechanism (zero value = disabled).
	Runahead runahead.Config

	// RunaheadCacheEntries sizes the optional runahead cache.
	RunaheadCacheEntries int
}

// DefaultConfig returns the Table 1 processor.
func DefaultConfig() Config {
	return Config{
		Width:                8,
		FetchThreads:         2,
		FrontEndDepth:        5,
		FetchQueue:           16,
		ROBSize:              512,
		IntRegs:              320,
		FPRegs:               320,
		IntIQ:                64,
		FPIQ:                 64,
		LSIQ:                 64,
		IntFU:                6,
		FPFU:                 3,
		LSFU:                 4,
		IntMulLat:            3,
		FPAluLat:             4,
		FPMulLat:             4,
		FPDivLat:             12,
		MispredictRedirect:   7,
		BranchPredRows:       4096,
		Mem:                  mem.DefaultConfig(),
		RunaheadCacheEntries: 512,
	}
}

// Validate rejects incoherent configurations.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0:
		return fmt.Errorf("pipeline: width %d", c.Width)
	case c.FetchThreads <= 0:
		return fmt.Errorf("pipeline: fetch threads %d", c.FetchThreads)
	case c.ROBSize <= 0:
		return fmt.Errorf("pipeline: ROB size %d", c.ROBSize)
	case c.IntRegs <= 0 || c.FPRegs <= 0:
		return fmt.Errorf("pipeline: register file sizes %d/%d", c.IntRegs, c.FPRegs)
	case c.IntIQ <= 0 || c.FPIQ <= 0 || c.LSIQ <= 0:
		return fmt.Errorf("pipeline: issue queue sizes %d/%d/%d", c.IntIQ, c.FPIQ, c.LSIQ)
	case c.IntFU <= 0 || c.FPFU <= 0 || c.LSFU <= 0:
		return fmt.Errorf("pipeline: functional unit counts %d/%d/%d", c.IntFU, c.FPFU, c.LSFU)
	case c.FetchQueue <= 0:
		return fmt.Errorf("pipeline: fetch queue %d", c.FetchQueue)
	case c.BranchPredRows <= 0:
		return fmt.Errorf("pipeline: predictor rows %d", c.BranchPredRows)
	}
	// Validate the memory hierarchy here too: scenario deltas can reshape
	// any cache, and mem's constructors panic on incoherent geometry, so
	// the error path must trigger first.
	for _, cc := range []mem.CacheConfig{c.Mem.IL1, c.Mem.DL1, c.Mem.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.Mem.MemLatency == 0 {
		return fmt.Errorf("mem: zero main-memory latency")
	}
	if c.Mem.MSHRs <= 0 {
		return fmt.Errorf("mem: %d MSHRs, need at least one", c.Mem.MSHRs)
	}
	if c.Runahead.Enabled && c.Runahead.UseRunaheadCache && c.RunaheadCacheEntries <= 0 {
		return fmt.Errorf("pipeline: runahead cache enabled with %d entries", c.RunaheadCacheEntries)
	}
	return nil
}
