package pipeline

import (
	"repro/internal/isa"
	"repro/internal/regfile"
)

// IQKind selects which issue queue an instruction waits in.
type IQKind uint8

const (
	// IQNone marks instructions that never enter an issue queue (folded
	// runahead instructions).
	IQNone IQKind = iota
	// IQInt is the integer queue (ALU, multiply, branches, sync ops).
	IQInt
	// IQFP is the floating-point queue.
	IQFP
	// IQLS is the load/store queue.
	IQLS
)

// iqKindFor maps an op class onto its issue queue.
func iqKindFor(op isa.Op) IQKind {
	switch {
	case op.IsMem():
		return IQLS
	case op.IsFP():
		return IQFP
	default:
		return IQInt
	}
}

// DynInst is one in-flight dynamic instruction. It is created at fetch and
// lives until commit, pseudo-retire, or squash.
type DynInst struct {
	// id is a globally unique, monotonically increasing identifier; age
	// comparisons (issue priority, squash ordering) use it.
	id uint64
	// tid is the hardware context executing the instruction.
	tid int
	// seq is the thread-local program-order position (monotonic across
	// trace re-executions, so it never wraps).
	seq uint64
	// tmpl aliases the trace template (immutable).
	tmpl *isa.Inst
	// addr is the resolved effective address for memory operations
	// (iteration-shifted by the trace; pure in seq, so re-execution after
	// a runahead exit or flush recomputes the identical address).
	addr uint64

	// Renamed operands; None means architectural (always ready) or absent,
	// Invalid means known-invalid without backing storage.
	dst, src1, src2 regfile.PhysReg
	// prevWriter is the instruction that previously wrote dst's
	// architectural register when this instruction renamed it (nil if the
	// value was architectural). Squash rollback restores it; reading a
	// retired prevWriter resolves to architectural state (or poison, if it
	// pseudo-retired invalid). Tracking the *writer* rather than its raw
	// register avoids the dangling-register rollback hazard when the
	// previous writer retires before the squash.
	prevWriter *DynInst
	// prevWriterID snapshots prevWriter's id at rename time. The free-list
	// pool may recycle a retired previous writer while this instruction is
	// still in flight; an id mismatch (or the pooled flag) at rollback
	// means the original retired, which reads as architectural state.
	prevWriterID uint64
	// iq is the queue the instruction was dispatched to (IQNone if folded).
	iq IQKind

	// fetchReadyAt is when the front-end pipe delivers it to rename.
	fetchReadyAt uint64
	// doneAt is the completion cycle once issued.
	doneAt uint64
	// missDetectAt is when the L2 reports this load's miss (issue + L1 +
	// L2 latency). Policies cannot react, and runahead cannot trigger,
	// before this cycle — the detection delay that lets a cluster of
	// already-issued loads keep its memory-level parallelism under FLUSH.
	missDetectAt uint64

	dispatched   bool
	issued       bool
	completed    bool
	folded       bool // runahead: never executed (INV operand / FP / sync)
	inv          bool // result is INV (runahead poison)
	squashed     bool
	refsReleased bool
	runahead     bool // dispatched while its thread was in runahead mode
	mispredicted bool // fetch-time direction guess disagreed with the trace
	isL2Miss     bool // demand load served by main memory
	retired      bool // left the ROB via commit or pseudo-retire
	pooled       bool // sitting in the core's free list (recycling guard)
}

// ID returns the global age identifier.
func (d *DynInst) ID() uint64 { return d.id }

// Thread returns the owning hardware context.
func (d *DynInst) Thread() int { return d.tid }

// Seq returns the thread-local program-order position.
func (d *DynInst) Seq() uint64 { return d.seq }

// Op returns the instruction's operation class.
func (d *DynInst) Op() isa.Op { return d.tmpl.Op }

// PC returns the instruction's address.
func (d *DynInst) PC() uint64 { return d.tmpl.PC }

// Inv reports whether the instruction's result is poisoned.
func (d *DynInst) Inv() bool { return d.inv }

// Runahead reports whether the instruction was dispatched in runahead mode.
func (d *DynInst) Runahead() bool { return d.runahead }

// DoneAt returns the instruction's completion cycle (valid once issued;
// for long-latency loads it is published as soon as the miss is detected,
// so OnL2Miss policies can read the resolution time).
func (d *DynInst) DoneAt() uint64 { return d.doneAt }
