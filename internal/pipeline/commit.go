package pipeline

import (
	"fmt"

	"repro/internal/mem"
)

// commitStage retires up to Width instructions across threads, rotating
// the starting thread for fairness. Per-thread retirement is in program
// order from the thread's ROB head. This stage owns the Runahead Threads
// mode transitions: a long-latency load blocking a thread's head enters
// runahead (§3.1); a runahead thread pseudo-retires instead of committing;
// and when the triggering miss resolves, the thread restores its
// checkpoint and resumes normal execution.
func (c *Core) commitStage(now uint64) {
	n := len(c.threads)
	budget := c.cfg.Width
	for k := 0; k < n && budget > 0; k++ {
		t := c.threads[(int(now)+k)%n]
		c.commitThread(t, now, &budget)
	}
}

// commitThread retires from one thread's head while budget lasts.
func (c *Core) commitThread(t *thread, now uint64, budget *int) {
	for *budget > 0 {
		if t.mode == ModeRunahead && now >= t.raExitAt {
			c.exitRunahead(t, now)
			// Fall through in normal mode next cycle (the pipe is empty).
			return
		}
		if t.rob.len() == 0 {
			return
		}
		head := t.rob.front()
		if t.mode == ModeNormal {
			if c.shouldEnterRunahead(t, head, now) {
				c.enterRunahead(t, head, now)
				continue // head is now poisoned-complete; pseudo-retire path
			}
			if !head.completed {
				return
			}
			if head.tmpl.Op.IsStore() {
				// Stores write memory at commit; an exhausted MSHR file
				// stalls commit for this thread until a slot frees.
				res := c.hier.Access(mem.KindStore, t.id, head.addr, now)
				if res.NoMSHR {
					return
				}
			}
			c.retire(t, head)
			t.stats.Committed.Inc()
		} else {
			if !head.completed {
				return
			}
			c.retire(t, head)
			t.stats.Runahead.PseudoRetired.Inc()
		}
		*budget = *budget - 1
	}
}

// retire removes the head instruction from the ROB, releases its
// destination register, and recycles the instruction. A retired valid
// writer reads as architectural state, so its rename-table entry (if
// still current) clears to nil — the identical resolution — letting the
// object return to the pool immediately. A pseudo-retired *invalid*
// writer must keep resolving to poison through the table (§3.3's "when a
// physical register is invalid it can be freed and used by the rest of
// the threads" falls out of that resolution in mapGet), so it defers to
// the episode-end reclamation in exitRunahead.
func (c *Core) retire(t *thread, head *DynInst) {
	head.retired = true
	if head.dst >= 0 {
		c.fileFor(head.tmpl.Dst).Release(head.dst)
	}
	t.rob.popFront()
	c.robCount--
	if head.inv {
		t.deferredFree = append(t.deferredFree, head)
		return
	}
	if head.tmpl.HasDst() && t.writers[head.tmpl.Dst] == head {
		t.writers[head.tmpl.Dst] = nil
	}
	c.freeInst(head)
}

// shouldEnterRunahead applies the §3.1 trigger: a demand load that missed
// the L2 reaches the thread's ROB head while the miss is still
// outstanding.
func (c *Core) shouldEnterRunahead(t *thread, head *DynInst, now uint64) bool {
	if !c.cfg.Runahead.Enabled {
		return false
	}
	if !head.tmpl.Op.IsLoad() || !head.issued || head.completed || !head.isL2Miss {
		return false
	}
	if now < head.missDetectAt {
		return false // the L2 has not reported the miss yet
	}
	if now >= head.doneAt {
		return false // resolves this cycle anyway
	}
	if t.raSuppress.has(head.seq) {
		// Figure 4 methodology: loads invalidated during a no-prefetch
		// episode must not re-trigger runahead after recovery.
		return false
	}
	return true
}

// enterRunahead checkpoints the thread and switches it to runahead mode.
// The checkpoint is implicit: the trigger load sits at the thread's ROB
// head, so everything older is committed and the per-thread architectural
// state is exactly the committed state — only the trace position needs
// recording. The trigger load's destination is poisoned and the load
// pseudo-retires immediately; its miss remains in flight as the episode's
// terminator.
func (c *Core) enterRunahead(t *thread, head *DynInst, now uint64) {
	t.mode = ModeRunahead
	t.raExitAt = head.doneAt
	t.raLoadSeq = head.seq
	t.raEntered = now
	t.stats.Runahead.Episodes.Inc()

	head.inv = true
	head.completed = true
	if head.dst >= 0 {
		c.fileFor(head.tmpl.Dst).MarkReady(head.dst, true)
	}
}

// exitRunahead ends the episode: every in-flight instruction of the thread
// is squashed, the rename map returns to the checkpoint (all-committed)
// state, and fetch restarts at the trigger load after the exit penalty.
// The re-executed load finds its line filled (or its MSHR about to fill).
func (c *Core) exitRunahead(t *thread, now uint64) {
	c.squashThread(t)
	if c.paranoid {
		if live := t.liveWriters(); live != 0 {
			//lint:panicfree paranoid-mode invariant: a live mapping here means rename-state corruption; continuing would silently produce wrong results, which is worse than halting
			panic(fmt.Sprintf("pipeline: thread %d exits runahead with %d live mappings", t.id, live))
		}
	}
	t.resetWriters() // checkpoint restore: all state architectural, poison gone
	for i, di := range t.deferredFree {
		c.freeInst(di)
		t.deferredFree[i] = nil
	}
	t.deferredFree = t.deferredFree[:0]
	if c.racache != nil {
		c.racache.FlushThread(t.id)
	}
	t.mode = ModeNormal
	t.cursor = t.raLoadSeq
	t.fetchBlockedUntil = now + c.cfg.Runahead.ExitPenalty
	t.blockingBranch = nil
	t.haveFetchLine = false
}

// squashThread discards every in-flight instruction of t: the whole ROB
// window (youngest first, unwinding the rename map) and the front-end
// queue.
func (c *Core) squashThread(t *thread) {
	for t.rob.len() > 0 {
		c.unwind(t, t.rob.popBack())
		c.robCount--
	}
	c.dropFrontEnd(t)
}

// FlushAfter implements the FLUSH policy's action (Tullsen & Brown): all
// instructions of the thread younger than the long-latency load are
// squashed, releasing their resources; fetch restarts behind the load.
// The caller (the policy) also blocks fetch until the miss resolves.
func (c *Core) FlushAfter(ld *DynInst) {
	t := c.threads[ld.tid]
	for t.rob.len() > 0 {
		di := t.rob.back()
		if di == ld || di.id <= ld.id {
			break
		}
		t.rob.popBack()
		c.robCount--
		c.unwind(t, di)
	}
	c.dropFrontEnd(t)
	t.cursor = ld.seq + 1
	t.blockingBranch = nil
	t.haveFetchLine = false
}

// dropFrontEnd discards the not-yet-renamed front-end queue. Front-end
// instructions were never renamed or scheduled, so nothing else can
// reference them and they recycle immediately. Callers that may leave a
// blockingBranch in the queue clear that pointer themselves.
func (c *Core) dropFrontEnd(t *thread) {
	for i := 0; i < t.fq.len(); i++ {
		di := t.fq.at(i)
		di.squashed = true
		t.icount--
		t.stats.Squashed.Inc()
		c.freeInst(di)
	}
	t.fq.clear()
}

// unwind squashes one renamed, in-flight instruction: references drop,
// the rename map rolls back (callers iterate youngest-first so the
// previous-mapping chain reconstructs exactly), the destination register
// releases, and any issue-queue slot frees.
func (c *Core) unwind(t *thread, di *DynInst) {
	di.squashed = true
	if !di.refsReleased {
		c.releaseRefs(di)
	}
	if di.tmpl.HasDst() {
		// Youngest-first iteration guarantees di is the current table
		// entry; restoring its predecessor reconstructs the pre-rename
		// state exactly (a retired predecessor reads as architectural).
		// A predecessor returned to the pool (or already recycled — the
		// id changed) had retired valid, which also reads as
		// architectural: restore nil, never a pooled object.
		w := di.prevWriter
		if w != nil && (w.pooled || w.id != di.prevWriterID) {
			w = nil
		}
		t.writers[di.tmpl.Dst] = w
	}
	if di.dst >= 0 {
		c.fileFor(di.tmpl.Dst).Release(di.dst)
	}
	if !di.issued && !di.folded {
		c.iqs[di.iq].count--
		t.iqHeld[di.iq]--
		t.icount--
	}
	if t.blockingBranch == di {
		t.blockingBranch = nil
	}
	t.stats.Squashed.Inc()
	// Any remaining references (lazily-compacted issue-queue entries this
	// cycle, wheel and detection events) are filtered by the squashed flag
	// or by id validation; the object itself can recycle now.
	c.freeInst(di)
}

// CheckInvariants validates cross-structure consistency; the paranoid mode
// runs it every cycle.
func (c *Core) CheckInvariants() error {
	if err := c.intRF.CheckInvariants(); err != nil {
		return err
	}
	if err := c.fpRF.CheckInvariants(); err != nil {
		return err
	}
	robTotal := 0
	for _, t := range c.threads {
		robTotal += t.rob.len()
		// icount must equal fq + unissued/unfolded queue entries.
		want := t.fq.len()
		for _, q := range c.iqs[1:] {
			for _, di := range q.entries {
				if di.tid == t.id && !di.issued && !di.folded && !di.squashed {
					want++
				}
			}
		}
		if t.icount != want {
			return fmt.Errorf("thread %d: icount %d, want %d", t.id, t.icount, want)
		}
	}
	if robTotal != c.robCount {
		return fmt.Errorf("robCount %d, threads hold %d", c.robCount, robTotal)
	}
	if c.robCount > c.cfg.ROBSize {
		return fmt.Errorf("ROB over capacity: %d > %d", c.robCount, c.cfg.ROBSize)
	}
	for _, q := range c.iqs[1:] {
		live := 0
		for _, di := range q.entries {
			if !di.issued && !di.folded && !di.squashed {
				live++
			}
		}
		if live > q.count {
			return fmt.Errorf("queue %d: %d live entries, count %d", q.kind, live, q.count)
		}
		if q.count > q.cap {
			return fmt.Errorf("queue %d over capacity: %d > %d", q.kind, q.count, q.cap)
		}
	}
	return nil
}
