package pipeline

import (
	"repro/internal/mem"
	"repro/internal/regfile"
)

// fetchStage runs the ICOUNT.2.8-style fetch: the policy orders threads,
// then up to Config.FetchThreads of them share Config.Width fetch slots.
// Per-thread fetch stops at a taken branch (fetch-group break), at an
// unresolved mispredicted branch, or at an instruction-cache miss.
func (c *Core) fetchStage(now uint64) {
	order := c.policy.FetchPriority(c, c.orderBuf[:0])
	c.orderBuf = order[:0]

	threadsUsed := 0
	slots := c.cfg.Width
	for _, tid := range order {
		if threadsUsed >= c.cfg.FetchThreads || slots == 0 {
			break
		}
		t := c.threads[tid]
		if !c.canFetch(t, now) {
			continue
		}
		n := c.fetchFrom(t, now, slots)
		if n > 0 {
			threadsUsed++
			slots -= n
		}
	}
}

// canFetch applies the mechanical fetch gates (distinct from policy
// priority): front-end stalls, unresolved mispredictions, queue space, and
// the Figure 4 "no fetch during runahead" ablation.
func (c *Core) canFetch(t *thread, now uint64) bool {
	if t.fetchBlockedUntil > now || t.blockingBranch != nil {
		return false
	}
	if t.fq.len() >= c.cfg.FetchQueue {
		return false
	}
	if t.mode == ModeRunahead && !c.cfg.Runahead.FetchInRunahead {
		return false
	}
	return true
}

// fetchFrom fetches up to `slots` instructions for thread t, returning the
// number fetched.
func (c *Core) fetchFrom(t *thread, now uint64, slots int) int {
	n := 0
	for n < slots && t.fq.len() < c.cfg.FetchQueue {
		tmpl := t.tr.At(t.cursor)
		line := tmpl.PC &^ (c.cfg.Mem.IL1.LineBytes - 1)
		if !t.haveFetchLine || line != t.lastFetchLine {
			res := c.hier.Access(mem.KindIfetch, t.id, tmpl.PC, now)
			if res.NoMSHR {
				t.fetchBlockedUntil = now + 1
				break
			}
			if res.Level != mem.LevelL1 {
				// Instruction miss: fetch resumes when the line arrives.
				t.fetchBlockedUntil = res.DoneAt
				break
			}
			t.lastFetchLine, t.haveFetchLine = line, true
		}

		di := c.allocInst()
		di.tid = t.id
		di.seq = t.cursor
		di.tmpl = tmpl
		di.dst = regfile.None
		di.src1 = regfile.None
		di.src2 = regfile.None
		di.fetchReadyAt = now + c.cfg.FrontEndDepth
		di.runahead = t.mode == ModeRunahead
		if tmpl.Op.IsMem() {
			di.addr = t.tr.AddrAt(t.cursor)
		}
		t.fq.pushBack(di)
		t.icount++
		t.cursor++
		t.stats.Fetched.Inc()
		n++

		if tmpl.Op.IsBranch() {
			pred := t.bp.Predict(tmpl.PC)
			if pred != tmpl.Taken {
				// Direction mispredict: in a trace-driven model the wrong
				// path cannot be fetched, so the thread stops fetching
				// until the branch resolves (the bandwidth loss and delay
				// are modelled; wrong-path resource pollution is not —
				// DESIGN.md §3 discusses the substitution).
				di.mispredicted = true
				t.blockingBranch = di
				break
			}
			if tmpl.Taken {
				// Correctly-predicted taken branch ends the fetch group.
				t.haveFetchLine = false
				break
			}
		}
	}
	return n
}
