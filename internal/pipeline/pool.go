package pipeline

// This file holds the allocation-free steady-state machinery of the hot
// loop: the per-core DynInst free list, the ring buffers backing the
// front-end and ROB windows, and the open-addressing sequence set that
// replaces the per-thread suppression map. All three reach a fixed
// footprint after warmup, after which Step performs no heap allocation.

// allocInst returns a zeroed DynInst from the core's free list (or the
// heap when the list is empty), stamped with a fresh global id. Because
// every reuse changes the id, stale references held by the completion
// wheel or the miss-detection list are recognized and dropped by id
// comparison instead of by lifetime bookkeeping.
func (c *Core) allocInst() *DynInst {
	var di *DynInst
	if n := len(c.freeInsts); n > 0 {
		di = c.freeInsts[n-1]
		c.freeInsts[n-1] = nil
		c.freeInsts = c.freeInsts[:n-1]
		*di = DynInst{}
	} else {
		di = &DynInst{}
	}
	di.id = c.nextID
	c.nextID++
	return di
}

// freeInst recycles an instruction that has left the machine (retired with
// no live rename-table reference, squashed, or dropped from the front
// end). The object's terminal flags are deliberately left set until
// reallocation: lazily-compacted structures (issue-queue entries) may
// still observe it this cycle and must keep seeing squashed/issued/folded.
//
// Freeing is only legal once the instruction can no longer be resolved
// through a thread's rename table; retire and exitRunahead enforce that.
func (c *Core) freeInst(di *DynInst) {
	if di.pooled {
		return
	}
	di.pooled = true
	c.freeInsts = append(c.freeInsts, di)
}

// instRing is a growable power-of-two ring buffer of instructions. The
// front-end queue and per-thread ROB windows use it so that steady-state
// push/pop cycles touch no allocator (a plain slice advanced with s[1:]
// leaks capacity and reallocates forever).
type instRing struct {
	buf  []*DynInst
	head int
	n    int
}

// newInstRing returns a ring with capacity for at least capHint entries.
func newInstRing(capHint int) instRing {
	cp := 8
	for cp < capHint {
		cp <<= 1
	}
	return instRing{buf: make([]*DynInst, cp)}
}

// len returns the number of buffered instructions.
func (r *instRing) len() int { return r.n }

// at returns the i-th instruction in queue order (0 = oldest).
func (r *instRing) at(i int) *DynInst {
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// front returns the oldest instruction.
func (r *instRing) front() *DynInst { return r.buf[r.head] }

// back returns the youngest instruction.
func (r *instRing) back() *DynInst { return r.at(r.n - 1) }

// pushBack appends an instruction, growing the ring if full.
func (r *instRing) pushBack(di *DynInst) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = di
	r.n++
}

// popFront removes and returns the oldest instruction.
func (r *instRing) popFront() *DynInst {
	di := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return di
}

// popBack removes and returns the youngest instruction.
func (r *instRing) popBack() *DynInst {
	i := (r.head + r.n - 1) & (len(r.buf) - 1)
	di := r.buf[i]
	r.buf[i] = nil
	r.n--
	return di
}

// clear drops every entry (the callers free the instructions themselves).
func (r *instRing) clear() {
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = nil
	}
	r.head, r.n = 0, 0
}

// grow doubles the ring, unrolling the wrapped region.
func (r *instRing) grow() {
	nb := make([]*DynInst, len(r.buf)*2)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

// seqSet is an insert-only open-addressing set of sequence numbers with
// linear probing. It replaces the per-thread map[uint64]bool suppression
// table: membership tests in the commit stage become a probe over a flat
// array, and runs that never insert (every configuration except the
// no-prefetch ablation) never allocate the backing storage at all.
type seqSet struct {
	// slots stores key+1 so the zero value means empty (seq 0 is legal).
	slots []uint64
	n     int
}

// add inserts k (idempotent). The table doubles at 50% load, so probes
// stay short and semantics match the map it replaced exactly.
func (s *seqSet) add(k uint64) {
	if s.slots == nil {
		s.slots = make([]uint64, 64)
	} else if 2*(s.n+1) > len(s.slots) {
		old := s.slots
		s.slots = make([]uint64, 2*len(old))
		s.n = 0
		for _, v := range old {
			if v != 0 {
				s.insert(v - 1)
			}
		}
	}
	s.insert(k)
}

// insert places k assuming free space exists.
func (s *seqSet) insert(k uint64) {
	mask := uint64(len(s.slots) - 1)
	i := hashSeq(k) & mask
	for {
		switch s.slots[i] {
		case 0:
			s.slots[i] = k + 1
			s.n++
			return
		case k + 1:
			return
		}
		i = (i + 1) & mask
	}
}

// has reports membership.
func (s *seqSet) has(k uint64) bool {
	if s.slots == nil {
		return false
	}
	mask := uint64(len(s.slots) - 1)
	i := hashSeq(k) & mask
	for {
		switch s.slots[i] {
		case 0:
			return false
		case k + 1:
			return true
		}
		i = (i + 1) & mask
	}
}

// hashSeq mixes a sequence number (sequences are near-consecutive, so
// identity hashing would cluster into one probe run).
func hashSeq(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}
