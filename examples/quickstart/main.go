// Quickstart: simulate one 2-thread workload (a memory-bound thread next
// to a compute-bound one) on the paper's Table 1 machine, first under the
// ICOUNT baseline and then with Runahead Threads, and print what changed.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	// A MIX workload straight out of Table 2: art (memory-bound, streaming)
	// next to gzip (compute-bound).
	w := workload.Workload{Group: "MIX2", Benchmarks: []string{"art", "gzip"}}

	cfg := core.DefaultConfig()
	cfg.TraceLen = 15_000

	for _, pol := range []core.PolicyKind{core.PolicyICount, core.PolicyRaT} {
		cfg.Policy = pol
		res, err := core.Run(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", pol)
		for _, t := range res.Threads {
			fmt.Printf("  %-6s IPC %.3f  (L2 misses/kinst %.1f, runahead episodes %d)\n",
				t.Benchmark, t.IPC,
				1000*float64(t.L2MissLoads)/float64(t.Committed),
				t.RunaheadEpisodes)
		}
		fmt.Printf("  throughput %.3f IPC\n\n", metrics.Throughput(res.IPCs()))
	}

	fmt.Println("Runahead Threads turn art's long-latency stalls into prefetching")
	fmt.Println("episodes: the blocked thread checkpoints, runs ahead speculatively,")
	fmt.Println("and returns to find its misses already in flight (paper §3).")
}
