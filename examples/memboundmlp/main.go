// Memory-level-parallelism anatomy: why runahead helps art much more than
// mcf.
//
// art streams through memory: its load addresses come from induction
// variables, so when art runs ahead past a miss, every future stream load
// still has a computable address and becomes a prefetch. mcf chases
// pointers: a load's address IS the previous load's result, so once the
// triggering miss poisons its destination, the dependent loads fold as
// invalid and nothing can be prefetched. The paper's §2 credits exactly
// this distinction — and it is why the MLP-aware-fetch related work (with
// its bounded lookahead) leaves distant MLP on the table.
//
// Run with:
//
//	go run ./examples/memboundmlp
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.TraceLen = 15_000

	fmt.Println("single-thread runahead anatomy (Table 1 machine):")
	fmt.Printf("\n%-8s %10s %10s %12s %14s %12s\n",
		"bench", "IPC(base)", "IPC(RaT)", "episodes", "prefetch/ep", "speedup")
	for _, bench := range []string{"art", "swim", "mcf", "parser"} {
		w := workload.Workload{Group: "ST", Benchmarks: []string{bench}}

		cfg.Policy = core.PolicyICount
		base, err := core.Run(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Policy = core.PolicyRaT
		rat, err := core.Run(cfg, w)
		if err != nil {
			log.Fatal(err)
		}

		t := rat.Threads[0]
		perEp := 0.0
		if t.RunaheadEpisodes > 0 {
			perEp = float64(t.PrefetchesIssued) / float64(t.RunaheadEpisodes)
		}
		fmt.Printf("%-8s %10.3f %10.3f %12d %14.1f %11.1f%%\n",
			bench, base.Threads[0].IPC, t.IPC, t.RunaheadEpisodes, perEp,
			100*(t.IPC/base.Threads[0].IPC-1))
	}

	fmt.Println("\nStreaming benchmarks (art, swim) issue many prefetches per episode;")
	fmt.Println("pointer chasers (mcf, parser) fold their dependent loads as INV and")
	fmt.Println("gain mainly from passing mispredicted miss-dependent branches.")
}
