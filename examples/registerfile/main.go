// Register-file sweep: reproduce Figure 6's experiment on one 4-thread
// memory-bound workload — shrink the physical register files from 320
// down to 64 entries and compare how FLUSH and Runahead Threads degrade.
//
// The paper's §6.2 point: a runahead thread holds registers only briefly
// (invalid instructions free theirs immediately; valid ones pseudo-retire
// fast), so an SMT with RaT tolerates much smaller register files — RaT
// at 128 registers beats FLUSH at 320.
//
// Run with:
//
//	go run ./examples/registerfile
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	w := workload.MustByGroup("MEM4")[0] // art+mcf+swim+twolf

	fmt.Printf("workload %s: throughput vs physical register file size\n\n", w.Name())
	fmt.Printf("%8s  %8s  %8s\n", "regs", "FLUSH", "RaT")

	type point struct{ flush, rat float64 }
	results := map[int]point{}
	for _, size := range []int{64, 128, 192, 256, 320} {
		var p point
		for _, pol := range []core.PolicyKind{core.PolicyFLUSH, core.PolicyRaT} {
			cfg := core.DefaultConfig()
			cfg.TraceLen = 10_000
			cfg.Policy = pol
			cfg.Pipeline.IntRegs = size
			cfg.Pipeline.FPRegs = size
			res, err := core.Run(cfg, w)
			if err != nil {
				log.Fatal(err)
			}
			t := metrics.Throughput(res.IPCs())
			if pol == core.PolicyFLUSH {
				p.flush = t
			} else {
				p.rat = t
			}
		}
		results[size] = p
		fmt.Printf("%8d  %8.3f  %8.3f\n", size, p.flush, p.rat)
	}

	small, full := results[128], results[320]
	fmt.Printf("\nRaT with 128 registers: %.3f IPC — FLUSH with 320: %.3f IPC\n",
		small.rat, full.flush)
	if small.rat > full.flush {
		fmt.Println("RaT with the register file reduced by 60 percent still beats")
		fmt.Println("full-size FLUSH, reproducing the paper's §6.2 headline.")
	}
}
