// Fetch-policy shootout: run one memory-bound workload (art+mcf, the
// paper's canonical MEM2 pair) under every evaluated policy and render
// Figure-1-style bars for throughput and fairness.
//
// This example shows the paper's central tension: STALL and FLUSH buy the
// fast thread's throughput by starving the memory-bound thread (fairness
// collapses), while Runahead Threads speed up the memory-bound thread
// itself.
//
// Run with:
//
//	go run ./examples/fetchpolicies
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	w := workload.MustByGroup("MEM2")[1] // art+mcf

	cfg := core.DefaultConfig()
	cfg.TraceLen = 12_000
	st := core.NewSTCache(cfg)

	type row struct {
		policy core.PolicyKind
		thru   float64
		fair   float64
	}
	var rows []row
	var maxThru, maxFair float64
	for _, pol := range core.Policies() {
		cfg.Policy = pol
		res, err := core.Run(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		stv, err := st.STVector(w)
		if err != nil {
			log.Fatal(err)
		}
		r := row{
			policy: pol,
			thru:   metrics.Throughput(res.IPCs()),
			fair:   metrics.Fairness(stv, res.IPCs()),
		}
		rows = append(rows, r)
		if r.thru > maxThru {
			maxThru = r.thru
		}
		if r.fair > maxFair {
			maxFair = r.fair
		}
	}

	fmt.Printf("workload %s on the Table 1 machine\n\n", w.Name())
	fmt.Println("throughput (avg IPC):")
	for _, r := range rows {
		fmt.Println("  " + report.Bar(string(r.policy), r.thru, maxThru, 32))
	}
	fmt.Println("\nfairness (harmonic mean of per-thread speedups):")
	for _, r := range rows {
		fmt.Println("  " + report.Bar(string(r.policy), r.fair, maxFair, 32))
	}
}
