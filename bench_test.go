// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per experiment, on a reduced suite sized for
// `go test -bench`. Each benchmark reports the headline quantity of its
// figure as custom metrics, so `go test -bench=. -benchmem` doubles as a
// results dashboard; cmd/experiments runs the same harness at full scale.
package repro_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/runahead"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// benchOptions returns harness options sized for benchmarking.
func benchOptions() experiments.Options {
	o := experiments.Quick()
	o.TraceLen = 6_000
	o.PerGroup = 2
	return o
}

// benchSession builds a session or fails the benchmark.
func benchSession(b *testing.B, o experiments.Options) *experiments.Session {
	b.Helper()
	s, err := experiments.NewSession(o)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable1_BaselineMachine measures the simulator itself: cycles
// per second stepping the Table 1 machine on a representative MEM2
// workload under the baseline policy.
func BenchmarkTable1_BaselineMachine(b *testing.B) {
	w := workload.MustByGroup("MEM2")[1]
	cfg := core.DefaultConfig()
	cfg.TraceLen = 6_000
	cfg.Policy = core.PolicyICount
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg, w); err != nil {
			b.Fatal(err)
		}
	}
}

// steadyStateCore builds a runahead-enabled core on a representative MEM2
// workload and steps it past its allocation transient (DynInst pool
// build-up, ring/wheel growth), so what follows measures the steady state.
func steadyStateCore(tb testing.TB) *pipeline.Core {
	tb.Helper()
	w := workload.MustByGroup("MEM2")[1]
	cfg := pipeline.DefaultConfig()
	cfg.Runahead = runahead.Default()
	c, err := pipeline.New(cfg, w.MustTraces(6_000, 1), nil)
	if err != nil {
		tb.Fatal(err)
	}
	c.WarmupCaches()
	for i := 0; i < 200_000; i++ {
		c.Step()
	}
	return c
}

// BenchmarkStepAllocs guards the zero-allocation property of the
// simulation hot loop: once warm, Core.Step must not touch the heap
// (allocs/op must report 0). The DynInst free list, the ring-buffered
// ROB/fetch queues, and the id-validated completion wheel are what this
// benchmark protects.
func BenchmarkStepAllocs(b *testing.B) {
	c := steadyStateCore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// TestStepZeroAllocSteadyState is the same guard in test form, so plain
// `go test` catches an allocation regression without running benchmarks.
func TestStepZeroAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is slow")
	}
	c := steadyStateCore(t)
	avg := testing.AllocsPerRun(50_000, func() { c.Step() })
	// A strict zero tolerates no background growth at all; allow a hair
	// of slack for one-off capacity doublings that survive warmup, while
	// still failing hard if Step ever allocates per cycle (or per fetched
	// instruction, which shows up as >1 per step).
	if avg > 0.001 {
		t.Fatalf("Core.Step allocates %.4f objects/cycle in steady state, want 0", avg)
	}
}

// BenchmarkTable2_WorkloadGeneration measures materializing the full
// Table 2 suite of synthetic traces.
func BenchmarkTable2_WorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, w := range workload.All() {
			w.MustTraces(2_000, uint64(i+1))
		}
	}
}

// BenchmarkFig1_FetchPolicies regenerates Figure 1 (ICOUNT, STALL, FLUSH,
// RaT) and reports the MEM2 throughput of RaT and FLUSH — the pair behind
// the paper's "+83%" headline.
func BenchmarkFig1_FetchPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b, benchOptions())
		f, err := s.Fig1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Throughput["MEM2"][core.PolicyRaT], "MEM2-RaT-IPC")
		b.ReportMetric(f.Throughput["MEM2"][core.PolicyFLUSH], "MEM2-FLUSH-IPC")
	}
}

// BenchmarkFig2_ResourcePolicies regenerates Figure 2 (ICOUNT, DCRA,
// HillClimbing, RaT) and reports RaT's MEM2 margin over DCRA.
func BenchmarkFig2_ResourcePolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b, benchOptions())
		f, err := s.Fig2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Throughput["MEM2"][core.PolicyRaT], "MEM2-RaT-IPC")
		b.ReportMetric(f.Throughput["MEM2"][core.PolicyDCRA], "MEM2-DCRA-IPC")
	}
}

// BenchmarkFig3_EnergyDelay regenerates Figure 3 and reports RaT's ED²
// normalized to ICOUNT (the paper: ~0.6 for 2-thread, ~0.78 for 4-thread).
func BenchmarkFig3_EnergyDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b, benchOptions())
		f, err := s.Fig3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.ED2["MEM2"][core.PolicyRaT], "MEM2-RaT-ED2")
		b.ReportMetric(f.ED2["MEM2"][core.PolicyFLUSH], "MEM2-FLUSH-ED2")
	}
}

// BenchmarkFig4_SourcesOfImprovement regenerates Figure 4's decomposition
// and reports the prefetching share for MEM2 plus the overhead bound.
func BenchmarkFig4_SourcesOfImprovement(b *testing.B) {
	opts := benchOptions()
	opts.Groups = []string{"MIX2", "MEM2"}
	for i := 0; i < b.N; i++ {
		s := benchSession(b, opts)
		f, err := s.Fig4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.Prefetching["MEM2"], "MEM2-prefetch-%")
		b.ReportMetric(100*f.Overhead["MIX2"], "MIX2-overhead-%")
	}
}

// BenchmarkFig5_RegisterOccupancy regenerates Figure 5 and reports the
// normal-mode versus runahead-mode register occupancy for MEM2.
func BenchmarkFig5_RegisterOccupancy(b *testing.B) {
	opts := benchOptions()
	opts.Groups = []string{"MEM2"}
	for i := 0; i < b.N; i++ {
		s := benchSession(b, opts)
		f, err := s.Fig5(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Normal["MEM2"], "regs-normal")
		b.ReportMetric(f.Runahead["MEM2"], "regs-runahead")
	}
}

// BenchmarkFig6_RegisterFileSweep regenerates Figure 6 and reports the
// §6.2 headline pair: RaT at 128 registers versus FLUSH at 320.
func BenchmarkFig6_RegisterFileSweep(b *testing.B) {
	opts := benchOptions()
	opts.Groups = []string{"MEM2", "MEM4"}
	opts.RegSizes = []int{64, 128, 320}
	for i := 0; i < b.N; i++ {
		s := benchSession(b, opts)
		f, err := s.Fig6(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Throughput["MEM4"][128][core.PolicyRaT], "MEM4-RaT@128")
		b.ReportMetric(f.Throughput["MEM4"][320][core.PolicyFLUSH], "MEM4-FLUSH@320")
	}
}

// BenchmarkAblation_RunaheadCache compares RaT with and without the
// runahead cache (the §3.3 decision: the cache buys little).
func BenchmarkAblation_RunaheadCache(b *testing.B) {
	w := workload.MustByGroup("MEM2")[1]
	cfg := core.DefaultConfig()
	cfg.TraceLen = 6_000
	for i := 0; i < b.N; i++ {
		cfg.Policy = core.PolicyRaT
		plain, err := core.Run(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Policy = core.PolicyRaTCache
		cached, err := core.Run(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metrics.Throughput(plain.IPCs()), "IPC-no-racache")
		b.ReportMetric(metrics.Throughput(cached.IPCs()), "IPC-racache")
	}
}

// BenchmarkAblation_FPInvalidation compares RaT with and without §3.3's
// decode-time FP invalidation on an FP-heavy memory-bound workload.
func BenchmarkAblation_FPInvalidation(b *testing.B) {
	w := workload.Workload{Group: "MEM2", Benchmarks: []string{"swim", "lucas"}}
	cfg := core.DefaultConfig()
	cfg.TraceLen = 6_000
	for i := 0; i < b.N; i++ {
		cfg.Policy = core.PolicyRaT
		on, err := core.Run(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Policy = core.PolicyRaTNoFPInv
		off, err := core.Run(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metrics.Throughput(on.IPCs()), "IPC-fpinv")
		b.ReportMetric(metrics.Throughput(off.IPCs()), "IPC-nofpinv")
	}
}

// robSweepBench runs the shipped rob-sweep example scenario on a fresh
// session with the given batch width. Fresh sessions each iteration keep
// the simulation cache from turning later iterations into pure hits; the
// benchmark therefore measures end-to-end sweep execution — trace
// service included.
func robSweepBench(b *testing.B, batchConfigs int) {
	sp, err := scenario.Load("examples/scenarios/rob-sweep.json")
	if err != nil {
		b.Fatal(err)
	}
	o := benchOptions()
	o.BatchConfigs = batchConfigs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := benchSession(b, o)
		rs, err := s.RunScenario(sp)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkRobSweep_Batched executes the rob-sweep example with the
// default batch width: the three ROB points of each workload advance
// over one shared trace in a single pass.
func BenchmarkRobSweep_Batched(b *testing.B) { robSweepBench(b, 0) }

// BenchmarkRobSweep_Unbatched is the same sweep with batching disabled
// (every cell a standalone scalar run) — the before side of the
// batched/unbatched comparison.
func BenchmarkRobSweep_Unbatched(b *testing.B) { robSweepBench(b, 1) }
